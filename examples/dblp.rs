//! The DBLP example (Example 1.2 / 5.2): a hierarchical redundancy fixed
//! by *moving an attribute* — `@year` moves from `inproceedings` to
//! `issue`.
//!
//! Run with: `cargo run --example dblp`

use xnf::core::lossless::{transform_document, verify_lossless};
use xnf::core::{anomalous_fds, is_xnf, normalize, NormalizeOptions, Step, XmlFdSet};

fn main() {
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT db (conf*)>
         <!ELEMENT conf (title, issue+)>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT issue (inproceedings+)>
         <!ELEMENT inproceedings (author+, title, booktitle)>
         <!ATTLIST inproceedings
             key CDATA #REQUIRED
             pages CDATA #REQUIRED
             year CDATA #REQUIRED>
         <!ELEMENT author (#PCDATA)>
         <!ELEMENT booktitle (#PCDATA)>",
    )
    .expect("the DBLP DTD parses");

    // (FD4): a conference is identified by its title. (FD5): all papers
    // in one issue share the year — the *relative* dependency that makes
    // year redundant.
    let sigma = XmlFdSet::parse(
        "db.conf.title.S -> db.conf
         db.conf.issue -> db.conf.issue.inproceedings.@year",
    )
    .expect("the FDs parse");

    assert!(!is_xnf(&dtd, &sigma).expect("XNF test runs"));
    println!("XNF violations:");
    for v in anomalous_fds(&dtd, &sigma).expect("XNF test runs") {
        println!("  {} (anomalous path {})", v.fd, v.path);
    }

    let result =
        normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalization succeeds");
    // The paper's fix is a single attribute move: year becomes an
    // attribute of issue.
    assert_eq!(result.steps.len(), 1);
    assert!(matches!(
        &result.steps[0],
        Step::MoveAttribute { new_attr, .. } if new_attr == "year"
    ));
    println!("\nstep: {:?}", result.steps[0]);
    println!(
        "\nrevised DTD (the paper's ATTLIST change):\n{}",
        result.dtd
    );
    assert!(is_xnf(&result.dtd, &result.sigma).expect("XNF test runs"));

    // Apply the fix to a document and confirm nothing is lost.
    let doc = xnf::xml::parse(
        r#"<db>
          <conf>
            <title>PODS</title>
            <issue>
              <inproceedings key="FanL01" pages="114-125" year="2001">
                <author>Wenfei Fan</author><author>Leonid Libkin</author>
                <title>On XML integrity constraints in the presence of DTDs</title>
                <booktitle>PODS 2001</booktitle>
              </inproceedings>
              <inproceedings key="BunemanDFHT01" pages="126-137" year="2001">
                <author>Peter Buneman</author>
                <title>Reasoning about keys for XML</title>
                <booktitle>DBPL 2001</booktitle>
              </inproceedings>
            </issue>
            <issue>
              <inproceedings key="ArenasL02" pages="85-96" year="2002">
                <author>Marcelo Arenas</author><author>Leonid Libkin</author>
                <title>A normal form for XML documents</title>
                <booktitle>PODS 2002</booktitle>
              </inproceedings>
            </issue>
          </conf>
        </db>"#,
    )
    .expect("the document parses");
    let paths = dtd.paths().expect("non-recursive");
    assert!(sigma.satisfied_by(&doc, &dtd, &paths).expect("resolves"));

    let transformed = transform_document(&dtd, &result, &doc).expect("transform succeeds");
    println!(
        "transformed document:\n{}",
        xnf::xml::to_string_pretty(&transformed)
    );
    let report = verify_lossless(&dtd, &result, &doc).expect("verification runs");
    assert!(report.ok(), "{report:?}");
    println!("losslessness verified (year stored once per issue, reconstructible per paper)");
}
