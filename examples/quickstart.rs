//! Quickstart: the paper's running example end to end (Example 1.1 /
//! 5.1 and Figure 1).
//!
//! 1. Parse the university DTD and the Figure 1(a) document.
//! 2. State the FDs (FD1)–(FD3) and check them on the document.
//! 3. Detect the XNF violation caused by (FD3).
//! 4. Run the Figure 4 decomposition algorithm.
//! 5. Rename the fresh elements to the paper's names (`info`, `number`)
//!    and print the revised DTD of Figure 1(b).
//! 6. Transform the document and verify losslessness.
//!
//! Run with: `cargo run --example quickstart`

use xnf::core::lossless::{transform_document, verify_lossless};
use xnf::core::normalize::rename_element;
use xnf::core::{anomalous_fds, is_xnf, normalize, NormalizeOptions, XmlFdSet};

fn main() {
    // -- 1. The schema and document of Figure 1(a). --------------------
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .expect("the university DTD parses");

    let doc = xnf::xml::parse(
        r#"<courses>
          <course cno="csc200">
            <title>Automata Theory</title>
            <taken_by>
              <student sno="st1"><name>Deere</name><grade>A+</grade></student>
              <student sno="st2"><name>Smith</name><grade>B-</grade></student>
            </taken_by>
          </course>
          <course cno="mat100">
            <title>Calculus I</title>
            <taken_by>
              <student sno="st1"><name>Deere</name><grade>A-</grade></student>
              <student sno="st3"><name>Smith</name><grade>B+</grade></student>
            </taken_by>
          </course>
        </courses>"#,
    )
    .expect("the Figure 1(a) document parses");
    assert!(xnf::xml::conforms(&doc, &dtd).is_ok());

    // -- 2. The FDs of Example 4.1. -------------------------------------
    let sigma = XmlFdSet::parse(
        "# (FD1) cno is a key of course
         courses.course.@cno -> courses.course
         # (FD2) no two students of one course share an sno
         courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
         # (FD3) sno determines the student name — the redundancy!
         courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S",
    )
    .expect("the FDs parse");

    let paths = dtd.paths().expect("the DTD is not recursive");
    assert!(sigma
        .satisfied_by(&doc, &dtd, &paths)
        .expect("paths resolve"));
    println!("document conforms to the DTD and satisfies (FD1)-(FD3)\n");

    // -- 3. The XNF violation of Example 5.1. ---------------------------
    assert!(!is_xnf(&dtd, &sigma).expect("XNF test runs"));
    for v in anomalous_fds(&dtd, &sigma).expect("XNF test runs") {
        println!("anomalous FD: {}", v.fd);
    }

    // -- 4. Normalize (Figure 4). ----------------------------------------
    let mut result =
        normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalization succeeds");
    println!("\nalgorithm steps:");
    for step in &result.steps {
        println!("  {step:?}");
    }

    // -- 5. Match the paper's names and print Figure 1(b)'s DTD. --------
    // The algorithm picks fresh names (`sno_ref`); the paper's figure
    // calls that element `number`.
    rename_element(&mut result.dtd, &mut result.sigma, "sno_ref", "number")
        .expect("rename succeeds");
    println!("\nrevised DTD (Figure 1(b)):\n{}", result.dtd);
    println!("revised FDs:\n{}", result.sigma);
    assert!(is_xnf(&result.dtd, &result.sigma).expect("XNF test runs"));

    // -- 6. Transform the document and verify losslessness. -------------
    // (Replay uses the *original* step names, so transform first, then
    // compare against the renamed DTD only structurally.)
    let mut pre_rename =
        normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalization succeeds");
    let transformed = transform_document(&dtd, &pre_rename, &doc).expect("transform succeeds");
    println!(
        "transformed document:\n{}",
        xnf::xml::to_string_pretty(&transformed)
    );
    let report = verify_lossless(&dtd, &pre_rename, &doc).expect("verification runs");
    assert!(report.ok(), "losslessness verified: {report:?}");
    println!("losslessness verified: conforms + satisfies Σ' + round-trips");

    // The renamed DTD is exactly the paper's revision.
    rename_element(
        &mut pre_rename.dtd,
        &mut pre_rename.sigma,
        "sno_ref",
        "number",
    )
    .expect("rename succeeds");
    let figure_1b = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*, info*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT grade (#PCDATA)>
         <!ELEMENT info (number*)>
         <!ATTLIST info name CDATA #REQUIRED>
         <!ELEMENT number EMPTY>
         <!ATTLIST number sno CDATA #REQUIRED>",
    )
    .expect("the Figure 1(b) DTD parses");
    // Same element types, contents and attributes (the paper presents
    // `name` as a #PCDATA child of info; the formal construction—and this
    // implementation—makes it an attribute, cf. Section 6).
    for e in figure_1b.elements() {
        let name = figure_1b.name(e);
        let ours = pre_rename
            .dtd
            .elem_id(name)
            .unwrap_or_else(|| panic!("missing element {name}"));
        assert_eq!(
            figure_1b.content(e),
            pre_rename.dtd.content(ours),
            "content of {name}"
        );
        assert_eq!(
            figure_1b.attrs(e).collect::<Vec<_>>(),
            pre_rename.dtd.attrs(ours).collect::<Vec<_>>(),
            "attributes of {name}"
        );
    }
    println!("revised DTD matches Figure 1(b) exactly (with name as an attribute of info)");
}
