//! Relational schemas as XML and BCNF ⇔ XNF (Example 5.3 and
//! Proposition 4).
//!
//! Codes the canonical non-BCNF schema `Takes(sno, name, cno, grade)`
//! (sno → name; {sno, cno} → grade) as a flat DTD, confirms the XNF test
//! agrees with the BCNF test, and contrasts the classical BCNF
//! decomposition with the XNF normalization of the coded schema.
//!
//! Run with: `cargo run --example relational_bcnf`

use xnf::core::encode::{relation_to_tree, relational_fds_to_xml, relational_to_dtd};
use xnf::core::{is_xnf, normalize, NormalizeOptions};
use xnf::relational::bcnf::{bcnf_decompose, is_bcnf};
use xnf::relational::fd::{Fd, FdSet, RelSchema};
use xnf::relational::{Relation, Value};

fn main() {
    let schema =
        RelSchema::new("Takes", ["sno", "name", "cno", "grade"]).expect("distinct attribute names");
    let sno = schema.set(["sno"]).expect("attrs");
    let name = schema.set(["name"]).expect("attrs");
    let sno_cno = schema.set(["sno", "cno"]).expect("attrs");
    let grade = schema.set(["grade"]).expect("attrs");
    let fds = FdSet::from_fds([Fd::new(sno, name), Fd::new(sno_cno, grade)]);

    // The classical verdict.
    let bcnf = is_bcnf(&fds, schema.all());
    println!("Takes(sno, name, cno, grade) with sno->name, (sno,cno)->grade");
    println!("BCNF: {bcnf}");
    assert!(!bcnf);

    // The XML coding of Example 5.3.
    let dtd = relational_to_dtd(&schema).expect("coding succeeds");
    let sigma = relational_fds_to_xml(&schema, &fds).expect("coding succeeds");
    println!("\ncoded DTD:\n{dtd}");
    println!("coded FDs Σ_F:\n{sigma}");
    let xnf = is_xnf(&dtd, &sigma).expect("XNF test runs");
    println!("XNF: {xnf}");
    assert_eq!(bcnf, xnf, "Proposition 4");

    // Classical BCNF decomposition…
    println!("\nBCNF decomposition:");
    for (attrs, _) in bcnf_decompose(&fds, schema.all()) {
        println!("  R{:?}", schema.names(attrs));
    }

    // …vs XNF normalization of the coding: the same split, expressed as a
    // new element type holding the (sno → name) association.
    let result =
        normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalization succeeds");
    println!("\nXNF normalization steps:");
    for s in &result.steps {
        println!("  {s:?}");
    }
    println!("\nrevised DTD:\n{}", result.dtd);
    assert!(is_xnf(&result.dtd, &result.sigma).expect("XNF test runs"));

    // A concrete instance keeps its information through the coding.
    let mut rel = Relation::new(["sno", "name", "cno", "grade"]).expect("columns");
    for (s, n, c, g) in [
        ("st1", "Deere", "csc200", "A+"),
        ("st1", "Deere", "mat100", "A-"),
        ("st2", "Smith", "csc200", "B-"),
        ("st3", "Smith", "mat100", "B+"),
    ] {
        rel.insert(vec![
            Value::str(s),
            Value::str(n),
            Value::str(c),
            Value::str(g),
        ])
        .expect("arity");
    }
    assert!(rel.satisfies_fd(&["sno"], &["name"]).expect("cols"));
    let tree = relation_to_tree(&schema, &rel).expect("no nulls");
    assert!(xnf::xml::conforms(&tree, &dtd).is_ok());
    let paths = dtd.paths().expect("non-recursive");
    assert!(sigma.satisfied_by(&tree, &dtd, &paths).expect("resolves"));
    println!(
        "instance coded as XML ({} rows -> {} G elements) conforms and satisfies Σ_F",
        rel.len(),
        tree.children(tree.root()).len()
    );

    // Proposition 4 on a small schema sweep: the two tests always agree.
    let g3 = RelSchema::new("G", ["A", "B", "C"]).expect("distinct names");
    let dtd3 = relational_to_dtd(&g3).expect("coding succeeds");
    let mut agreements = 0;
    for l in 0..3usize {
        for r in 0..3usize {
            if l == r {
                continue;
            }
            let fds = FdSet::from_fds([Fd::new(
                xnf::relational::AttrSet::singleton(l),
                xnf::relational::AttrSet::singleton(r),
            )]);
            let sigma = relational_fds_to_xml(&g3, &fds).expect("coding succeeds");
            assert_eq!(
                is_bcnf(&fds, g3.all()),
                is_xnf(&dtd3, &sigma).expect("XNF test runs"),
            );
            agreements += 1;
        }
    }
    println!("\nProposition 4 verified on {agreements} single-FD schemas over G(A,B,C)");
}
