//! The ebXML Business Process Specification Schema fragment of Figure 5:
//! content-model classification (Section 7) and tractable implication.
//!
//! The paper uses this schema as its "real-world DTDs are simple"
//! evidence. We parse the fragment, classify every content model, compute
//! the disjunctive complexity measure `N_D`, and run implication queries
//! with the chase.
//!
//! Run with: `cargo run --example ebxml`

use xnf::core::implication::{Chase, Implication};
use xnf::core::{XmlFd, XmlFdSet};
use xnf::dtd::classify::{classify_content, DtdClass, DtdShapes};

fn main() {
    // Figure 5, closed under the referenced element names (the paper
    // prints only the interesting declarations; the leaves are EMPTY /
    // #PCDATA here).
    let dtd = xnf::dtd::parse_dtd(
        r#"
        <!ELEMENT ProcessSpecification (Documentation*, SubstitutionSet*,
            (Include | BusinessDocument | ProcessSpecificationRef | Package |
             BinaryCollaboration | BusinessTransaction | MultiPartyCollaboration)*)>
        <!ATTLIST ProcessSpecification name CDATA #REQUIRED version CDATA #REQUIRED>
        <!ELEMENT Include (Documentation*)>
        <!ELEMENT BusinessDocument (ConditionExpression?, Documentation*)>
        <!ATTLIST BusinessDocument name CDATA #REQUIRED>
        <!ELEMENT SubstitutionSet (DocumentSubstitution | AttributeSubstitution | Documentation)*>
        <!ELEMENT BinaryCollaboration (Documentation*, InitiatingRole, RespondingRole,
            (Documentation2 | Start | Transition | Success | Failure |
             BusinessTransactionActivity | CollaborationActivity | Fork | Join)*)>
        <!ATTLIST BinaryCollaboration name CDATA #REQUIRED>
        <!ELEMENT Transition (ConditionExpression?, Documentation*)>
        <!ELEMENT ProcessSpecificationRef EMPTY>
        <!ELEMENT Package EMPTY>
        <!ELEMENT BusinessTransaction (Documentation*)>
        <!ELEMENT MultiPartyCollaboration (Documentation*)>
        <!ELEMENT Documentation (#PCDATA)>
        <!ELEMENT Documentation2 (#PCDATA)>
        <!ELEMENT ConditionExpression (#PCDATA)>
        <!ELEMENT DocumentSubstitution EMPTY>
        <!ELEMENT AttributeSubstitution EMPTY>
        <!ELEMENT InitiatingRole EMPTY>
        <!ATTLIST InitiatingRole name CDATA #REQUIRED nameID CDATA #REQUIRED>
        <!ELEMENT RespondingRole EMPTY>
        <!ATTLIST RespondingRole name CDATA #REQUIRED nameID CDATA #REQUIRED>
        <!ELEMENT Start EMPTY>
        <!ELEMENT Success EMPTY>
        <!ELEMENT Failure EMPTY>
        <!ELEMENT BusinessTransactionActivity EMPTY>
        <!ELEMENT CollaborationActivity EMPTY>
        <!ELEMENT Fork EMPTY>
        <!ELEMENT Join EMPTY>
        "#,
    )
    .expect("the ebXML fragment parses");

    println!("elements: {}, |D| = {}", dtd.num_elements(), dtd.size());

    // Per-element classification: every content model here is *simple* —
    // all disjunctions are of the (a | b | c)* shape, which permutes to
    // a*, b*, c* (Section 7's own example).
    println!("\nper-element content models:");
    for e in dtd.elements() {
        let kind = match classify_content(dtd.content(e)) {
            Some(sc) if sc.is_simple() => "simple",
            Some(_) => "disjunctive",
            None => "general",
        };
        println!("  {:32} {kind}", dtd.name(e));
    }

    let shapes = DtdShapes::analyze(&dtd);
    match shapes.class() {
        DtdClass::Simple => {
            println!("\nthe ebXML BPSS fragment is a SIMPLE DTD (as the paper states);");
            println!("FD implication over it is decidable in quadratic time (Theorem 3)");
        }
        DtdClass::Disjunctive { nd } => println!("\ndisjunctive with N_D = {nd}"),
        DtdClass::General => println!("\nnot disjunctive"),
    }
    assert_eq!(shapes.class(), &DtdClass::Simple);

    // Implication with the chase: business-rule style FDs.
    let paths = dtd.paths().expect("non-recursive");
    println!("\npaths(D): {} paths", paths.len());
    let sigma = XmlFdSet::parse(
        "ProcessSpecification.BinaryCollaboration.@name -> ProcessSpecification.BinaryCollaboration",
    )
    .expect("FDs parse");
    let resolved = sigma.resolve(&paths).expect("paths resolve");
    let chase = Chase::new(&dtd, &paths);

    let queries = [
        // A collaboration's name determines its initiating role's nameID
        // (the role child has multiplicity one).
        (
            "ProcessSpecification.BinaryCollaboration.@name -> \
          ProcessSpecification.BinaryCollaboration.InitiatingRole.@nameID",
            true,
        ),
        // …but not the nodes of its starred Documentation children.
        (
            "ProcessSpecification.BinaryCollaboration.@name -> \
          ProcessSpecification.BinaryCollaboration.Documentation",
            false,
        ),
        // The root determines its own attributes (trivially).
        (
            "ProcessSpecification -> ProcessSpecification.@version",
            true,
        ),
    ];
    println!();
    for (fd_text, expected) in queries {
        let fd: XmlFd = fd_text.parse().expect("FD parses");
        let implied = chase.implies(&resolved, &fd.resolve(&paths).expect("resolves"));
        println!(
            "{} {}",
            if implied {
                "implied    "
            } else {
                "not implied"
            },
            fd
        );
        assert_eq!(implied, expected);
    }
}
