//! Nested relations and NNF ⇔ XNF (Figure 3 and Proposition 5).
//!
//! Builds the Country/State/City nested relation of Figure 3, computes
//! its complete unnesting, checks PNF, codes the schema as a DTD with the
//! Σ_FD of Section 5, and demonstrates the NNF ⇔ XNF equivalence on both
//! a well-designed and a badly designed FD set.
//!
//! Run with: `cargo run --example nested_relations`

use xnf::core::encode::{nested_fds_to_xml, nested_instance_to_tree, nested_to_dtd};
use xnf::core::is_xnf;
use xnf::relational::fd::{Fd, FdSet};
use xnf::relational::nested::{is_nnf, is_pnf, unnest, NestedSchema, NestedTuple};

fn main() {
    // H₁ = Country (H₂)*, H₂ = State (H₃)*, H₃ = City.
    let schema = NestedSchema::new(
        "H1",
        ["Country"],
        [NestedSchema::new(
            "H2",
            ["State"],
            [NestedSchema::leaf("H3", ["City"])],
        )],
    );
    println!("nested schema: {schema}");

    // The instance of Figure 3(a).
    let instance = vec![NestedTuple::new(
        ["United States"],
        [vec![
            NestedTuple::new(
                ["Texas"],
                [vec![
                    NestedTuple::leaf(["Houston"]),
                    NestedTuple::leaf(["Dallas"]),
                ]],
            ),
            NestedTuple::new(
                ["Ohio"],
                [vec![
                    NestedTuple::leaf(["Columbus"]),
                    NestedTuple::leaf(["Cleveland"]),
                ]],
            ),
        ]],
    )];
    assert!(is_pnf(&instance), "Figure 3(a) is in partition normal form");

    // Figure 3(b): the complete unnesting.
    let flat_rel = unnest(&schema, &instance).expect("arities match");
    println!("\ncomplete unnesting (Figure 3(b)):\n{flat_rel}");
    assert_eq!(flat_rel.len(), 4);

    // "we have a valid FD State → Country, while State → City does not
    // hold" (Section 5).
    assert!(flat_rel
        .satisfies_fd(&["State"], &["Country"])
        .expect("columns exist"));
    assert!(!flat_rel
        .satisfies_fd(&["State"], &["City"])
        .expect("columns exist"));

    // The XML coding of Section 5.
    let dtd = nested_to_dtd(&schema).expect("coding succeeds");
    println!("coded DTD:\n{dtd}");
    let flat = schema.unnested_schema().expect("distinct attributes");

    // Case A: the natural design — State → Country follows the nesting.
    let good = FdSet::from_fds([Fd::new(
        flat.set(["State"]).expect("attr"),
        flat.set(["Country"]).expect("attr"),
    )]);
    let good_xml = nested_fds_to_xml(&schema, &flat, &good).expect("coding succeeds");
    println!("Σ_FD (incl. the three PNF FDs of Section 5):\n{good_xml}");
    let nnf = is_nnf(&schema, &flat, &good).expect("attrs exist");
    let xnf = is_xnf(&dtd, &good_xml).expect("XNF test runs");
    println!("State -> Country: NNF = {nnf}, XNF = {xnf}");
    assert!(nnf && xnf, "Proposition 5, positive direction");

    // Case B: a bad design — Country → City crosses the nesting.
    let bad = FdSet::from_fds([Fd::new(
        flat.set(["Country"]).expect("attr"),
        flat.set(["City"]).expect("attr"),
    )]);
    let bad_xml = nested_fds_to_xml(&schema, &flat, &bad).expect("coding succeeds");
    let nnf = is_nnf(&schema, &flat, &bad).expect("attrs exist");
    let xnf = is_xnf(&dtd, &bad_xml).expect("XNF test runs");
    println!("Country -> City:  NNF = {nnf}, XNF = {xnf}");
    assert!(!nnf && !xnf, "Proposition 5, negative direction");

    // The instance coding satisfies the PNF FDs.
    let tree = nested_instance_to_tree(&schema, &instance).expect("coding succeeds");
    assert!(xnf::xml::conforms(&tree, &dtd).is_ok());
    let paths = dtd.paths().expect("non-recursive");
    assert!(good_xml
        .satisfied_by(&tree, &dtd, &paths)
        .expect("resolves"));
    println!(
        "\ninstance coded as XML:\n{}",
        xnf::xml::to_string_pretty(&tree)
    );
    println!("NNF ⇔ XNF verified on both designs (Proposition 5)");
}
