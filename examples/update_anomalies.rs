//! The introduction's motivation, executable: redundancy caused by (FD3)
//! leads to update and deletion anomalies in the original design, and the
//! normalized design is immune.
//!
//! "updating the name of st1 for only one course results in an
//! inconsistent document, and removing the student from a course may
//! result in removing that student from the document altogether"
//! — Example 1.1.
//!
//! Run with: `cargo run --example update_anomalies`

use xnf::core::lossless::transform_document;
use xnf::core::{normalize, NormalizeOptions, XmlFd, XmlFdSet};
use xnf::xml::{nodes_at, values_at, XmlTree};

fn university() -> (xnf::dtd::Dtd, XmlTree, XmlFdSet) {
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .expect("DTD parses");
    let doc = xnf::xml::parse(
        r#"<courses>
          <course cno="csc200"><title>Automata Theory</title><taken_by>
            <student sno="st1"><name>Deere</name><grade>A+</grade></student>
            <student sno="st2"><name>Smith</name><grade>B-</grade></student>
          </taken_by></course>
          <course cno="mat100"><title>Calculus I</title><taken_by>
            <student sno="st1"><name>Deere</name><grade>A-</grade></student>
            <student sno="st3"><name>Smith</name><grade>B+</grade></student>
          </taken_by></course>
        </courses>"#,
    )
    .expect("document parses");
    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).expect("FDs parse");
    (dtd, doc, sigma)
}

/// Renames the *first* name-element of student `sno` — a partial update,
/// the classic anomaly trigger.
fn rename_first_occurrence(doc: &XmlTree, sno: &str, new_name: &str) -> XmlTree {
    let mut out = doc.clone();
    for student in nodes_at(doc, &"courses.course.taken_by.student".parse().unwrap()) {
        if doc.attr(student, "sno") == Some(sno) {
            let name_node = doc.children_labelled(student, "name")[0];
            // Rebuild: XmlTree is append-only, so copy with the change.
            out = copy_with_text(doc, name_node, new_name);
            break;
        }
    }
    out
}

fn copy_with_text(doc: &XmlTree, target: xnf::xml::NodeId, new_text: &str) -> XmlTree {
    fn go(
        src: &XmlTree,
        dst: &mut XmlTree,
        s: xnf::xml::NodeId,
        d: xnf::xml::NodeId,
        target: xnf::xml::NodeId,
        new_text: &str,
    ) {
        for (k, v) in src.attrs(s) {
            dst.set_attr(d, k, v);
        }
        if s == target {
            dst.set_text(d, new_text);
            return;
        }
        match src.content(s) {
            xnf::xml::NodeContent::Text(t) => dst.set_text(d, t.clone()),
            xnf::xml::NodeContent::Children(cs) => {
                for &c in cs {
                    let nd = dst.add_child(d, src.label(c));
                    go(src, dst, c, nd, target, new_text);
                }
            }
        }
    }
    let mut out = XmlTree::new(doc.label(doc.root()));
    let root = out.root();
    go(doc, &mut out, doc.root(), root, target, new_text);
    out
}

fn main() {
    let (dtd, doc, sigma) = university();
    let paths = dtd.paths().expect("non-recursive");
    assert!(sigma.satisfied_by(&doc, &dtd, &paths).unwrap());

    // -- Update anomaly in the original design. --------------------------
    println!("original design: st1's name is stored once per enrolment:");
    let names = values_at(
        &doc,
        &"courses.course.taken_by.student.name.S".parse().unwrap(),
    );
    println!("  stored names: {names:?}");

    let updated = rename_first_occurrence(&doc, "st1", "Deere-Smith");
    let fd3: XmlFd =
        "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"
            .parse()
            .unwrap();
    let consistent = fd3.satisfied_by(&updated, &dtd, &paths).unwrap();
    println!(
        "after renaming st1 in ONE course only: (FD3) satisfied = {consistent}  ← the update anomaly"
    );
    assert!(!consistent, "partial update must break (FD3)");

    // -- The normalized design is immune. --------------------------------
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalizes");
    let transformed = transform_document(&dtd, &result, &doc).expect("transforms");
    let info_names = values_at(&transformed, &"courses.info.@name".parse().unwrap());
    println!("\nnormalized design: each name is stored once, under info:");
    println!("  info names: {info_names:?}");
    assert_eq!(info_names.len(), 2, "Deere and Smith, once each");
    // An update is now a single in-place change — there is no second copy
    // to forget. (Structurally: st1's name occurs exactly once.)
    let occurrences = info_names.iter().filter(|n| *n == "Deere").count();
    assert_eq!(occurrences, 1);
    println!("renaming Deere touches exactly {occurrences} place — no anomaly possible");

    // -- Deletion anomaly. -------------------------------------------------
    // Original design: dropping st3's only enrolment removes the fact
    // that st3 is called Smith from the document altogether.
    println!("\ndeletion: removing st3's only enrolment…");
    let st3_first = nodes_at(&doc, &"courses.course.taken_by.student".parse().unwrap())
        .into_iter()
        .filter(|&v| doc.attr(v, "sno") == Some("st3"))
        .count();
    println!("  original: st3 appears in {st3_first} course(s) — deleting it loses st3->Smith");
    // Normalized design keeps the association in info/number even with no
    // enrolments (the number element survives under info).
    let numbers: Vec<_> = nodes_at(&transformed, &"courses.info".parse().unwrap())
        .into_iter()
        .flat_map(|i| transformed.children(i).to_vec())
        .filter(|&n| transformed.attr(n, "sno") == Some("st3"))
        .collect();
    println!(
        "  normalized: st3's number element exists independently of enrolments ({} found)",
        numbers.len()
    );
    assert_eq!(numbers.len(), 1);
    println!("\nthe introduction's anomalies reproduced and resolved, as published");
}
