//! Keys (the FD subclass of Section 4) and the MVD groundwork for the
//! paper's stated future direction (Section 8).
//!
//! 1. Discover the published keys of the university schema: `@cno` keys
//!    `course` absolutely; `@sno` keys `student` *relative to* its
//!    course; `{@cno, @sno}` keys `student` absolutely.
//! 2. FD checking on a *recursive* DTD via the bounded-paths window.
//! 3. The relational MVD layer: the course/teacher/book example, its
//!    dependency basis, and the 4NF decomposition — the shape an
//!    MVD-aware XNF would have to generalize.
//!
//! Run with: `cargo run --example keys_and_extensions`

use xnf::core::keys::{find_keys, is_key};
use xnf::core::XmlFdSet;
use xnf::relational::fd::FdSet;
use xnf::relational::mvd::{satisfies_mvd, third_nf_synthesis, DepSet, Mvd};
use xnf::relational::{AttrSet, Relation, Value};

fn main() {
    // -- 1. Key discovery on the paper's schema. -------------------------
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .expect("DTD parses");
    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).expect("FDs parse");

    println!("keys of courses.course:");
    for k in find_keys(&dtd, &sigma, &"courses.course".parse().unwrap(), 2).unwrap() {
        println!("  {k}");
    }
    println!("keys of courses.course.taken_by.student:");
    for k in find_keys(
        &dtd,
        &sigma,
        &"courses.course.taken_by.student".parse().unwrap(),
        2,
    )
    .unwrap()
    {
        println!("  {k}");
    }
    assert!(is_key(
        &dtd,
        &sigma,
        &["courses.course.@cno".parse().unwrap()],
        &"courses.course".parse().unwrap()
    )
    .unwrap());

    // -- 2. Recursive DTDs via the bounded window. -----------------------
    let parts = xnf::dtd::Dtd::builder("assembly")
        .elem("assembly", xnf::dtd::Regex::elem("part").star())
        .elem_attrs(
            "part",
            xnf::dtd::Regex::elem("part").star(),
            ["id", "supplier"],
        )
        .build()
        .expect("recursive DTD builds");
    assert!(parts.is_recursive());
    let doc = xnf::xml::parse(
        r#"<assembly>
          <part id="engine" supplier="acme">
            <part id="piston" supplier="acme"/>
            <part id="valve" supplier="bolt-co"/>
          </part>
        </assembly>"#,
    )
    .unwrap();
    let (paths, tuples) = xnf::core::tuples_d_recursive(&doc, &parts).unwrap();
    println!(
        "\nrecursive assembly: {} bounded paths, {} maximal tuples",
        paths.len(),
        tuples.len()
    );
    let fd: xnf::core::XmlFd = "assembly.part.part.@id -> assembly.part.part.@supplier"
        .parse()
        .unwrap();
    let holds = fd.resolve(&paths).unwrap().check_tuples(&tuples);
    println!("depth-2 @id -> @supplier holds: {holds}");
    assert!(holds);

    // -- 3. MVDs and 4NF (the Section 8 direction, relational side). -----
    let cols = [
        "course".to_string(),
        "teacher".to_string(),
        "book".to_string(),
    ];
    let mut ctb = Relation::new(cols.clone()).unwrap();
    for (c, t, b) in [
        ("db", "ann", "ullman"),
        ("db", "ann", "date"),
        ("db", "bob", "ullman"),
        ("db", "bob", "date"),
    ] {
        ctb.insert(vec![Value::str(c), Value::str(t), Value::str(b)])
            .unwrap();
    }
    let c_to_t = Mvd::new(AttrSet::singleton(0), AttrSet::singleton(1));
    assert!(satisfies_mvd(&ctb, &cols, c_to_t).unwrap());
    println!("\nCTB instance satisfies course ->> teacher");

    let deps = DepSet {
        fds: FdSet::new(),
        mvds: vec![c_to_t],
    };
    let all = AttrSet::full(3);
    let basis = deps.dependency_basis(AttrSet::singleton(0), all);
    println!("dependency basis of {{course}}: {} blocks", basis.len());
    assert!(!deps.is_4nf(all));
    let frags = deps.fourth_nf_decompose(all);
    println!("4NF decomposition:");
    for f in &frags {
        let names: Vec<&str> = f.iter().map(|i| cols[i].as_str()).collect();
        println!("  R({})", names.join(", "));
    }
    assert_eq!(frags.len(), 2);

    // 3NF synthesis for comparison (on an FD-only schema).
    let fds = FdSet::from_fds([
        xnf::relational::Fd::new(AttrSet::singleton(0), AttrSet::singleton(1)),
        xnf::relational::Fd::new(AttrSet::singleton(1), AttrSet::singleton(2)),
    ]);
    let frags = third_nf_synthesis(&fds, all);
    println!(
        "3NF synthesis of (course -> teacher -> book): {} fragments",
        frags.len()
    );
    assert_eq!(frags.len(), 2);
    println!("\ndone: keys, recursive documents, and the MVD/4NF baseline all verified");
}
