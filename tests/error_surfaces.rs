//! The error surfaces are part of the public API: every variant renders a
//! actionable message and the `source` chains are wired. These tests pin
//! the contract (not exact wording everywhere, but the load-bearing
//! parts a user would grep for).

use std::error::Error as _;
use xnf::core::CoreError;
use xnf::dtd::DtdError;
use xnf::xml::XmlError;

#[test]
fn dtd_errors_render_usefully() {
    let cases: Vec<(DtdError, &str)> = vec![
        (
            DtdError::UndeclaredElement {
                name: "ghost".into(),
                referenced_by: "r".into(),
            },
            "ghost",
        ),
        (
            DtdError::DuplicateElement("a".into()),
            "declared more than once",
        ),
        (
            DtdError::DuplicateAttribute {
                element: "e".into(),
                attribute: "x".into(),
            },
            "@x",
        ),
        (
            DtdError::RootReferenced {
                referenced_by: "a".into(),
            },
            "Definition 1",
        ),
        (DtdError::AttlistForUndeclared("g".into()), "ATTLIST"),
        (
            DtdError::Syntax {
                offset: 42,
                at: xnf::dtd::LineCol { line: 3, col: 7 },
                message: "expected `>`".into(),
            },
            "line 3, column 7",
        ),
        (
            DtdError::syntax(b"<!ELEMENT r\n(", 12, "expected `>`"),
            "line 2, column 1",
        ),
        (
            DtdError::RecursiveDtd {
                witness: "part".into(),
            },
            "paths(D) is infinite",
        ),
        (DtdError::NoSuchPath("a.b".into()), "a.b"),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
    }
}

#[test]
fn xml_errors_render_usefully() {
    let syn = XmlError::Syntax {
        offset: 7,
        message: "mismatched closing tag".into(),
    };
    assert!(syn.to_string().contains("byte 7"));
    let mixed = XmlError::MixedContent {
        offset: 3,
        element: "p".into(),
    };
    assert!(mixed.to_string().contains("mixed content"));
    assert!(mixed.to_string().contains("`p`"));
}

#[test]
fn core_errors_render_and_chain() {
    let wrapped = CoreError::Dtd(DtdError::NoSuchPath("x.y".into()));
    assert!(wrapped.to_string().contains("x.y"));
    assert!(wrapped.source().is_some(), "source chain preserved");
    assert!(CoreError::NotCompatible.to_string().contains("paths(T)"));
    assert!(CoreError::EmptyFd.to_string().contains("non-empty"));
    assert!(CoreError::RecursiveNormalization
        .to_string()
        .contains("non-recursive"));
    assert!(CoreError::TooManySteps.to_string().contains("step limit"));
    assert!(CoreError::UnrepresentableNull {
        path: "p.@l".into()
    }
    .to_string()
    .contains("footnote 1"));
    assert!(CoreError::BadFdPath("weird".into())
        .to_string()
        .contains("weird"));
    assert!(CoreError::InconsistentTuples("why".into())
        .to_string()
        .contains("why"));
    assert!(CoreError::NotCompatible.source().is_none());
}

#[test]
fn errors_propagate_end_to_end() {
    // A recursive DTD flows out of normalize as a typed error.
    let d = xnf::dtd::parse_dtd("<!ELEMENT r (r2)> <!ELEMENT r2 (r2*)>").unwrap();
    let err = xnf::core::normalize(
        &d,
        &xnf::core::XmlFdSet::new(),
        &xnf::core::NormalizeOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::RecursiveNormalization));

    // An unknown path in Σ flows out of the XNF test with its name.
    let d = xnf::dtd::parse_dtd("<!ELEMENT r EMPTY>").unwrap();
    let sigma = xnf::core::XmlFdSet::parse("r.ghost -> r").unwrap();
    let err = xnf::core::is_xnf(&d, &sigma).unwrap_err();
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn scale_smoke_full_pipeline() {
    // A medium-scale end-to-end guard (not a bench): 60 courses, 5
    // students each — satisfaction, normalization, document transform,
    // round trip.
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .unwrap();
    let sigma = xnf::core::XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).unwrap();
    let doc = xnf_gen::doc::university_document(60, 5, 40, 8);
    let paths = dtd.paths().unwrap();
    assert!(xnf::xml::conforms(&doc, &dtd).is_ok());
    assert!(sigma.satisfied_by(&doc, &dtd, &paths).unwrap());
    let result =
        xnf::core::normalize(&dtd, &sigma, &xnf::core::NormalizeOptions::default()).unwrap();
    let report = xnf::core::lossless::verify_lossless(&dtd, &result, &doc).unwrap();
    assert!(report.ok());
    // 60 courses × 5 students = 300 tuples.
    assert_eq!(xnf::core::tuples_d(&doc, &dtd, &paths).unwrap().len(), 300);
}
