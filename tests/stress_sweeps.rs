//! Dense seed-space enumeration sweeps, `#[ignore]`d by default.
//!
//! The property suites sample the generator seed space sparsely; these
//! sweeps enumerate it densely around the regions the checked-in
//! regression seeds came from. Run with:
//!
//! ```text
//! cargo test --release --test stress_sweeps -- --ignored --nocapture
//! ```
//!
//! The nightly CI job runs these with `XNF_SWEEP_SEED_BASE` set to the
//! run id, so every night covers a fresh seed window; each sweep logs its
//! base so a red night is reproducible locally with
//! `XNF_SWEEP_SEED_BASE=<base> cargo test --release --test stress_sweeps -- --ignored`.

use xnf::core::implication::{CounterexampleSearch, Implication};
use xnf::core::{is_xnf, normalize, NormalizeOptions};
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

/// Offset added to every sweep's seed range; defaults to 0 for local
/// determinism, set by nightly CI to rotate the window.
fn seed_base(sweep: &str) -> u64 {
    let base = std::env::var("XNF_SWEEP_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64);
    println!("{sweep}: XNF_SWEEP_SEED_BASE={base}");
    base
}

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

fn check_both_directions(dtd: &xnf::dtd::Dtd, seed: u64) -> Result<(), String> {
    let mut rng = xnf_gen::rng(seed ^ 0x5eed);
    let sigma = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let candidates = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    );
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let search = CounterexampleSearch::new(dtd, &paths);

    for fd in candidates.iter() {
        let r = fd.resolve(&paths).unwrap();
        if search.chase().implies(&resolved, &r) {
            for doc_seed in 0..6u64 {
                let mut doc_rng = xnf_gen::rng(seed.wrapping_mul(31).wrapping_add(doc_seed));
                let doc = random_document(
                    dtd,
                    &mut doc_rng,
                    &DocParams {
                        reps: (0, 2),
                        value_alphabet: 2,
                        max_nodes: 300,
                    },
                );
                if doc.num_nodes() >= 300 {
                    continue;
                }
                let Ok(tuples) = xnf::core::tuples_d(&doc, dtd, &paths) else {
                    continue;
                };
                if tuples.len() > 256 {
                    continue;
                }
                if resolved.iter().all(|s| s.check_tuples(&tuples)) && !r.check_tuples(&tuples) {
                    return Err(format!("SOUNDNESS BUG: seed {seed}, fd {fd}"));
                }
            }
        } else if search.find(&resolved, &r).is_none() {
            return Err(format!("COMPLETENESS GAP: seed {seed}, fd {fd}"));
        }
    }
    Ok(())
}

#[test]
#[ignore = "dense sweep; run explicitly"]
fn sweep_implication_disjunctive() {
    let base = seed_base("sweep_implication_disjunctive");
    let mut failures = Vec::new();
    for seed in base..base + 1500 {
        for elements in 3..8 {
            for disjunctions in 1..3 {
                let mut rng = xnf_gen::rng(seed);
                let dtd = disjunctive_dtd(&mut rng, &dtd_params(elements), disjunctions, 2);
                if let Err(e) = check_both_directions(&dtd, seed) {
                    failures.push(format!("({seed},{elements},{disjunctions}): {e}"));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
#[ignore = "dense sweep; run explicitly"]
fn sweep_implication_simple() {
    let base = seed_base("sweep_implication_simple");
    let mut failures = Vec::new();
    for seed in base..base + 1500 {
        for elements in 3..10 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            if let Err(e) = check_both_directions(&dtd, seed) {
                failures.push(format!("({seed},{elements}): {e}"));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
#[ignore = "dense sweep; run explicitly"]
fn sweep_normalization() {
    let base = seed_base("sweep_normalization");
    let mut failures = Vec::new();
    for seed in base..base + 4000 {
        for elements in 3..9 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            let sigma = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 3,
                    max_lhs: 2,
                },
            );
            let result = match normalize(&dtd, &sigma, &NormalizeOptions::default()) {
                Ok(r) => r,
                Err(xnf::core::CoreError::BadFdPath(_)) => continue,
                Err(other) => {
                    failures.push(format!("({seed},{elements}): error {other}"));
                    continue;
                }
            };
            if !is_xnf(&result.dtd, &result.sigma).unwrap() {
                failures.push(format!("({seed},{elements}): not XNF"));
            }
            if result.ap_trace.windows(2).any(|w| w[1] >= w[0]) {
                failures.push(format!(
                    "({seed},{elements}): AP not strictly decreasing {:?}",
                    result.ap_trace
                ));
            }
            if *result.ap_trace.last().unwrap() != 0 {
                failures.push(format!("({seed},{elements}): final AP != 0"));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
#[ignore = "dense sweep; run explicitly"]
fn sweep_oracle_fuzz() {
    // The full xnf-oracle battery — losslessness on generated documents,
    // FD-reorder invariance, element/attribute renaming — over a dense
    // seed window. Failures are pre-minimized, ready for
    // tests/oracle_corpus/.
    let base = seed_base("sweep_oracle_fuzz");
    let cfg = xnf_oracle::FuzzConfig::default();
    let failures: Vec<String> = xnf_oracle::fuzz_range(base, 5000, &cfg)
        .iter()
        .map(|f| {
            let min = xnf_oracle::minimize(f, &cfg);
            format!(
                "seed {}: {} — {}\n--- dtd ---\n{}\n--- fds ---\n{}",
                min.seed,
                min.kind.as_str(),
                min.detail.trim_end(),
                min.dtd_text,
                min.fds_text
            )
        })
        .collect();
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}
