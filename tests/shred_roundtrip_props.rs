//! The shredding round-trip property suite: document → rows → document
//! is the identity, *exactly* (ordered structural equality — the `pos`
//! column pins sibling order, so nothing weaker is accepted).
//!
//! Coverage per tier-1 `cargo test` run:
//!
//! * the three paper specs (`examples/specs/`), 100 generated
//!   Σ-satisfying documents each;
//! * all 8 minimized specs of `tests/oracle_corpus/`, 25 generated
//!   documents each;
//!
//! for ≥ 500 generated documents in total, plus pinned exact tests on the
//! Figure 1(a) and DBLP documents of the paper. A rotating-seed sweep
//! over freshly generated specs runs nightly (`--ignored`).

use std::path::PathBuf;
use xnf::core::{compile_schema, shred_document, unshred_document, XmlFdSet};
use xnf::dtd::Dtd;
use xnf::xml::{ordered_eq, XmlTree};
use xnf_gen::doc::DocParams;
use xnf_govern::Budget;

const UNLIMITED: &Budget = &Budget::unlimited();

const PAPER_SPECS: [&str; 3] = ["university", "dblp", "ebxml"];
const CORPUS: &[u64] = &[3449, 5195, 6742, 11775, 12710, 17154, 19327, 19683];

fn read_rel(rel: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

fn paper_spec(name: &str) -> (Dtd, XmlFdSet) {
    let dtd = xnf::dtd::parse_dtd(&read_rel(&format!("examples/specs/{name}.dtd"))).unwrap();
    let sigma = XmlFdSet::parse(&read_rel(&format!("examples/specs/{name}.fds"))).unwrap();
    (dtd, sigma)
}

fn corpus_spec(seed: u64) -> (Dtd, XmlFdSet) {
    let dtd =
        xnf::dtd::parse_dtd(&read_rel(&format!("tests/oracle_corpus/seed-{seed}.dtd"))).unwrap();
    let sigma =
        XmlFdSet::parse(&read_rel(&format!("tests/oracle_corpus/seed-{seed}.fds"))).unwrap();
    (dtd, sigma)
}

/// Shreds and rebuilds every document, asserting exact reconstruction;
/// returns how many documents were checked.
fn assert_round_trips(dtd: &Dtd, sigma: &XmlFdSet, docs: &[XmlTree], label: &str) -> usize {
    let schema = compile_schema(dtd, sigma, UNLIMITED)
        .unwrap_or_else(|e| panic!("{label}: compile_schema failed: {e}"));
    for (i, doc) in docs.iter().enumerate() {
        let rows = shred_document(&schema, doc, UNLIMITED)
            .unwrap_or_else(|e| panic!("{label} doc {i}: shred failed: {e}"));
        let rebuilt = unshred_document(&schema, &rows, UNLIMITED)
            .unwrap_or_else(|e| panic!("{label} doc {i}: unshred failed: {e}"));
        assert!(
            ordered_eq(doc, &rebuilt),
            "{label} doc {i}: round trip is not the identity\noriginal:\n{}\nrebuilt:\n{}",
            xnf::xml::to_string_pretty(doc),
            xnf::xml::to_string_pretty(&rebuilt),
        );
        // Row-count sanity: every tree node is stored exactly once, as a
        // row or as an inlined column value.
        let inlined: usize = rows
            .tables
            .iter()
            .enumerate()
            .map(|(ix, t)| {
                let per_row = (0..schema.design.tables[ix].columns.len())
                    .filter(|&c| {
                        schema.column_path(ix, c).is_some_and(|p| {
                            !p.last().is_elem() && p.len() > schema.table_path(ix).len() + 1
                        })
                    })
                    .count();
                t.rows.len() * per_row
            })
            .sum();
        assert_eq!(
            rows.row_count() + inlined,
            doc.num_nodes(),
            "{label} doc {i}: node/row accounting is off"
        );
    }
    docs.len()
}

fn generate(dtd: &Dtd, sigma: &XmlFdSet, seed: u64, count: usize) -> Vec<XmlTree> {
    let mut rng = xnf_gen::rng(seed);
    xnf_gen::doc::satisfying_documents(
        dtd,
        sigma,
        &mut rng,
        &DocParams {
            reps: (0, 3),
            value_alphabet: 3,
            max_nodes: 400,
        },
        count,
        4_000,
    )
}

#[test]
fn paper_specs_round_trip_generated_documents() {
    let mut total = 0;
    for name in PAPER_SPECS {
        let (dtd, sigma) = paper_spec(name);
        let docs = generate(&dtd, &sigma, 0xD0C5 ^ name.len() as u64, 100);
        assert!(
            docs.len() >= 100,
            "{name}: generation shortfall ({} docs) weakens the suite",
            docs.len()
        );
        total += assert_round_trips(&dtd, &sigma, &docs, name);
    }
    assert!(total >= 300, "paper sweep checked only {total} documents");
}

#[test]
fn oracle_corpus_specs_round_trip_generated_documents() {
    let mut total = 0;
    for &seed in CORPUS {
        let (dtd, sigma) = corpus_spec(seed);
        let docs = generate(&dtd, &sigma, seed, 25);
        assert!(
            !docs.is_empty(),
            "corpus seed {seed}: no documents generated"
        );
        total += assert_round_trips(&dtd, &sigma, &docs, &format!("corpus seed {seed}"));
    }
    assert!(total >= 150, "corpus sweep checked only {total} documents");
}

/// Pinned exact test on the paper's Figure 1(a): known table layout,
/// known row values, byte-stable across runs.
#[test]
fn figure_1a_shreds_to_the_pinned_rows() {
    let (dtd, sigma) = paper_spec("university");
    let doc = xnf::xml::parse(
        r#"<courses>
          <course cno="csc200">
            <title>Automata Theory</title>
            <taken_by>
              <student sno="st1"><name>Deere</name><grade>A+</grade></student>
              <student sno="st2"><name>Smith</name><grade>B-</grade></student>
            </taken_by>
          </course>
          <course cno="mat100">
            <title>Calculus I</title>
            <taken_by>
              <student sno="st1"><name>Deere</name><grade>A-</grade></student>
              <student sno="st3"><name>Smith</name><grade>B+</grade></student>
            </taken_by>
          </course>
        </courses>"#,
    )
    .unwrap();
    let schema = compile_schema(&dtd, &sigma, UNLIMITED).unwrap();
    let names: Vec<&str> = schema
        .design
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(names, ["courses", "course", "taken_by", "student"]);
    let rows = shred_document(&schema, &doc, UNLIMITED).unwrap();
    assert_eq!(rows.rows_for("courses").unwrap().rows.len(), 1);
    assert_eq!(rows.rows_for("course").unwrap().rows.len(), 2);
    assert_eq!(rows.rows_for("taken_by").unwrap().rows.len(), 2);
    assert_eq!(rows.rows_for("student").unwrap().rows.len(), 4);
    // The four student rows carry (sno, name, grade) with name and grade
    // inlined from their singleton text children.
    let student = &schema.design.tables[3];
    let sno = student.column_index("sno").unwrap();
    let name = student.column_index("name").unwrap();
    let grade = student.column_index("grade").unwrap();
    let cells: Vec<(String, String, String)> = rows
        .rows_for("student")
        .unwrap()
        .rows
        .iter()
        .map(|r| {
            (
                r[sno].to_string(),
                r[name].to_string(),
                r[grade].to_string(),
            )
        })
        .collect();
    let expect = |s: &str, n: &str, g: &str| (format!("{s:?}"), format!("{n:?}"), format!("{g:?}"));
    assert_eq!(
        cells,
        vec![
            expect("st1", "Deere", "A+"),
            expect("st2", "Smith", "B-"),
            expect("st1", "Deere", "A-"),
            expect("st3", "Smith", "B+"),
        ]
    );
    let rebuilt = unshred_document(&schema, &rows, UNLIMITED).unwrap();
    assert!(ordered_eq(&doc, &rebuilt));
}

/// Pinned exact test on the paper's DBLP example document.
#[test]
fn dblp_document_round_trips_exactly() {
    let (dtd, sigma) = paper_spec("dblp");
    let doc = xnf::xml::parse(
        r#"<db>
          <conf>
            <title>PODS</title>
            <issue>
              <inproceedings key="p1" pages="1-12" year="2001">
                <author>Fan</author><author>Libkin</author>
                <title>On XML integrity constraints</title>
                <booktitle>PODS 01</booktitle>
              </inproceedings>
            </issue>
            <issue>
              <inproceedings key="p2" pages="1-10" year="2002">
                <author>Arenas</author>
                <title>A normal form for XML documents</title>
                <booktitle>PODS 02</booktitle>
              </inproceedings>
            </issue>
          </conf>
        </db>"#,
    )
    .unwrap();
    assert_eq!(assert_round_trips(&dtd, &sigma, &[doc], "dblp pinned"), 1);
}

/// Nightly rotating-seed sweep: freshly generated specs (the same
/// generator the fuzz harness uses) must shred and rebuild exactly. The
/// seed window rotates via `SHRED_SWEEP_BASE` so CI covers new ground
/// each night while any find stays reproducible from the logged base.
#[test]
#[ignore = "nightly: rotating-seed shred fuzzing (set SHRED_SWEEP_BASE)"]
fn rotating_seed_sweep_round_trips() {
    let base: u64 = std::env::var("SHRED_SWEEP_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let cfg = xnf_oracle::FuzzConfig::default();
    let mut checked = 0;
    for seed in base..base + 200 {
        let (dtd, sigma) = xnf_oracle::fuzz::spec_for_seed(seed, &cfg);
        if dtd.is_recursive() {
            continue;
        }
        let docs = generate(&dtd, &sigma, seed, 10);
        checked += assert_round_trips(&dtd, &sigma, &docs, &format!("sweep seed {seed}"));
    }
    assert!(checked > 0, "sweep generated no documents at base {base}");
    println!("shred sweep: {checked} documents round-tripped (base {base})");
}
