//! Randomized verification of the normal-form equivalences:
//! Proposition 4 (BCNF ⇔ XNF) and Proposition 5 (NNF ⇔ XNF), plus the
//! BCNF generator-vs-exhaustive agreement they rest on.

use proptest::prelude::*;
use xnf::core::encode::{
    nested_fds_to_xml, nested_to_dtd, relational_fds_to_xml, relational_to_dtd,
};
use xnf::core::is_xnf;
use xnf::relational::bcnf::{is_bcnf, is_bcnf_exhaustive};
use xnf::relational::nested::{is_nnf, is_nnf_exhaustive};
use xnf_gen::rel::{chain_nested, chain_nested_bad_fd, chain_nested_good_fds, random_relational};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 4 on random relational schemas.
    #[test]
    fn proposition_4_random(seed in 0u64..100_000, arity in 2usize..6, n_fds in 1usize..4) {
        let mut rng = xnf_gen::rng(seed);
        let (schema, fds) = random_relational(&mut rng, arity, n_fds);
        let bcnf = is_bcnf(&fds, schema.all());
        prop_assert_eq!(bcnf, is_bcnf_exhaustive(&fds, schema.all()),
            "generator vs exhaustive BCNF disagree");
        let dtd = relational_to_dtd(&schema).unwrap();
        let sigma = relational_fds_to_xml(&schema, &fds).unwrap();
        let xnf = is_xnf(&dtd, &sigma).unwrap();
        prop_assert_eq!(bcnf, xnf, "Proposition 4 violated (seed {})", seed);
    }

    /// Proposition 5 on chain-nested schemas with random single FDs.
    #[test]
    fn proposition_5_random(depth in 2usize..5, l in 0usize..5, r in 0usize..5) {
        let schema = chain_nested(depth);
        let flat = schema.unnested_schema().unwrap();
        let (l, r) = (l % depth, r % depth);
        prop_assume!(l != r);
        let fds = xnf::relational::fd::FdSet::from_fds([xnf::relational::fd::Fd::new(
            xnf::relational::AttrSet::singleton(l),
            xnf::relational::AttrSet::singleton(r),
        )]);
        let nnf = is_nnf(&schema, &flat, &fds).unwrap();
        prop_assert_eq!(nnf, is_nnf_exhaustive(&schema, &flat, &fds).unwrap(),
            "generator vs exhaustive NNF disagree");
        let dtd = nested_to_dtd(&schema).unwrap();
        let sigma = nested_fds_to_xml(&schema, &flat, &fds).unwrap();
        let xnf = is_xnf(&dtd, &sigma).unwrap();
        prop_assert_eq!(nnf, xnf, "Proposition 5 violated: depth {}, A{} -> A{}", depth, l, r);
    }
}

#[test]
fn proposition_5_planted_families() {
    for depth in 2..=5usize {
        let schema = chain_nested(depth);
        let flat = schema.unnested_schema().unwrap();
        let dtd = nested_to_dtd(&schema).unwrap();

        let good = chain_nested_good_fds(&schema, depth);
        let good_sigma = nested_fds_to_xml(&schema, &flat, &good).unwrap();
        assert!(is_nnf(&schema, &flat, &good).unwrap());
        assert!(is_xnf(&dtd, &good_sigma).unwrap(), "depth {depth} good");

        let bad = chain_nested_bad_fd(&schema, depth);
        let bad_sigma = nested_fds_to_xml(&schema, &flat, &bad).unwrap();
        let nnf = is_nnf(&schema, &flat, &bad).unwrap();
        let xnf = is_xnf(&dtd, &bad_sigma).unwrap();
        assert_eq!(nnf, xnf, "depth {depth} bad");
        assert_eq!(
            nnf,
            depth < 3,
            "depth {depth}: violation iff a level is skipped"
        );
    }
}

#[test]
fn bcnf_decomposition_agrees_with_xnf_normalization_shape() {
    // On the planted violation, both worlds split off the (A → B)
    // association.
    let (schema, fds) = xnf_gen::rel::planted_bcnf_violation();
    let frags = xnf::relational::bcnf::bcnf_decompose(&fds, schema.all());
    assert_eq!(frags.len(), 2);

    let dtd = relational_to_dtd(&schema).unwrap();
    let sigma = relational_fds_to_xml(&schema, &fds).unwrap();
    let result =
        xnf::core::normalize(&dtd, &sigma, &xnf::core::NormalizeOptions::default()).unwrap();
    assert!(is_xnf(&result.dtd, &result.sigma).unwrap());
    // The XNF fix creates exactly one new association element (plus its
    // key child): the analogue of the {A, B} fragment.
    let creates: Vec<_> = result
        .steps
        .iter()
        .filter(|s| matches!(s, xnf::core::Step::CreateElement { .. }))
        .collect();
    assert_eq!(creates.len(), 1);
}
