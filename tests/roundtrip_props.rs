//! Property tests for the tree-tuple representation (Theorem 1,
//! Propositions 1–3) over randomized simple DTDs and documents.

use proptest::prelude::*;
use xnf::core::{trees_d, tuples_d};
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};

fn params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.5,
    }
}

fn doc_params() -> DocParams {
    DocParams {
        reps: (0, 2),
        value_alphabet: 3,
        max_nodes: 400,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: `trees_D(tuples_D(T)) ≡ T` for conforming documents.
    #[test]
    fn theorem_1_roundtrip(seed in 0u64..10_000, elements in 2usize..9) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let doc = random_document(&dtd, &mut rng, &doc_params());
        prop_assume!(doc.num_nodes() < 400); // skip capped (non-conforming) draws
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 512); // keep the product bounded
        let rebuilt = trees_d(&tuples, &paths).unwrap();
        prop_assert!(xnf::xml::unordered_eq(&rebuilt, &doc));
    }

    /// Proposition 1 / Definition 4: every extracted tuple validates, and
    /// its own tree embeds into the document (tree_D(t) ⊑ T).
    #[test]
    fn tuples_validate_and_embed(seed in 0u64..10_000, elements in 2usize..8) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let doc = random_document(&dtd, &mut rng, &doc_params());
        prop_assume!(doc.num_nodes() < 400);
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 256);
        for t in &tuples {
            t.validate(&paths).unwrap();
            let (tree, _) = t.tree(&paths).unwrap();
            prop_assert!(xnf::xml::embeds_in(&tree, &doc));
        }
    }

    /// Definition 6: extracted tuples are pairwise ⊑-incomparable
    /// (maximality) and deduplicated.
    #[test]
    fn tuples_are_maximal_antichain(seed in 0u64..10_000, elements in 2usize..8) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let doc = random_document(&dtd, &mut rng, &doc_params());
        prop_assume!(doc.num_nodes() < 400);
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 128);
        for (i, a) in tuples.iter().enumerate() {
            for (j, b) in tuples.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.subsumed_by(b), "tuple {i} ⊑ tuple {j}");
                }
            }
        }
    }

    /// Proposition 3(b): for a D-compatible set of tuples X (here: any
    /// subset of a document's tuple set), X ⊑° tuples_D(trees_D(X)) —
    /// every tuple of X is subsumed by some tuple of the rebuilt tree.
    #[test]
    fn proposition_3b_subset_subsumption(seed in 0u64..10_000, elements in 2usize..8, keep in 1usize..4) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let doc = random_document(&dtd, &mut rng, &doc_params());
        prop_assume!(doc.num_nodes() < 400);
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 64);
        let subset: Vec<_> = tuples.iter().take(keep.min(tuples.len())).cloned().collect();
        let rebuilt = trees_d(&subset, &paths).unwrap();
        let rebuilt_tuples = tuples_d(&rebuilt, &dtd, &paths).unwrap();
        // Vertices are arena-relative (trees_D allocates fresh node ids),
        // so subsumption is checked up to vertex renaming: on the
        // string-valued paths (the information content) plus the
        // null-pattern of the element paths.
        let str_paths: Vec<_> = paths.iter().filter(|&p| !paths.is_element_path(p)).collect();
        let elem_paths: Vec<_> = paths.iter().filter(|&p| paths.is_element_path(p)).collect();
        for t in &subset {
            prop_assert!(
                rebuilt_tuples.iter().any(|rt| {
                    str_paths
                        .iter()
                        .all(|&p| t.get(p).is_null() || t.get(p) == rt.get(p))
                        && elem_paths
                            .iter()
                            .all(|&p| t.get(p).is_null() || !rt.get(p).is_null())
                }),
                "a tuple of X is not subsumed in tuples(trees(X)) up to renaming"
            );
        }
    }

    /// Serialization round-trip: parse(to_string(T)) ≡ T for random
    /// conforming documents.
    #[test]
    fn xml_serialization_roundtrip(seed in 0u64..10_000, elements in 2usize..9) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let doc = random_document(&dtd, &mut rng, &doc_params());
        prop_assume!(doc.num_nodes() < 400);
        let text = xnf::xml::to_string_pretty(&doc);
        let reparsed = xnf::xml::parse(&text).unwrap();
        prop_assert!(xnf::xml::unordered_eq(&doc, &reparsed));
    }

    /// DTD serialization round-trip: parse(to_string(D)) = D.
    #[test]
    fn dtd_serialization_roundtrip(seed in 0u64..10_000, elements in 1usize..14) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &params(elements));
        let reparsed = xnf::dtd::parse_dtd(&dtd.to_string()).unwrap();
        prop_assert_eq!(dtd, reparsed);
    }
}
