//! Budget-plumbing identity: governance must be *observationally free*
//! when it does not trip.
//!
//! For each of the three paper specs (`examples/specs/`), the outputs of
//! `normalize` and `is-xnf` must be byte-identical across
//!
//! * the ungoverned fast path ([`Budget::unlimited`], a no-op handle),
//! * a governed handle with no limits (`Budget::builder().build()`,
//!   which owns counters and records every checkpoint), and
//! * a governed handle with generous finite limits (the flags a cautious
//!   operator would pass).
//!
//! Any divergence means a checkpoint changed control flow, which would
//! make every governed verdict suspect.

use std::path::PathBuf;
use xnf_core::{normalize, NormalizeOptions, XmlFdSet};
use xnf_govern::Budget;

const SPECS: [&str; 3] = ["university", "dblp", "ebxml"];

fn spec_path(name: &str, ext: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/specs")
        .join(format!("{name}.{ext}"))
}

fn generous() -> Budget {
    Budget::builder()
        .fuel(100_000_000)
        .deadline(std::time::Duration::from_secs(600))
        .memory(1_000_000_000)
        .build()
}

/// A canonical rendering of everything `normalize` decides: final DTD,
/// final Σ, and the full step trace.
fn normalize_fingerprint(name: &str, budget: Budget) -> String {
    let dtd_src = std::fs::read_to_string(spec_path(name, "dtd")).expect("spec DTD exists");
    let fds_src = std::fs::read_to_string(spec_path(name, "fds")).expect("spec FDs exist");
    let dtd = xnf_dtd::parse_dtd(&dtd_src).expect("spec DTD parses");
    let sigma = XmlFdSet::parse(&fds_src).expect("spec FDs parse");
    let options = NormalizeOptions {
        budget,
        ..NormalizeOptions::default()
    };
    let result = normalize(&dtd, &sigma, &options).expect("spec normalizes");
    assert!(
        result.exhausted.is_none(),
        "{name}: a generous budget must not exhaust: {:?}",
        result.exhausted
    );
    format!(
        "dtd:\n{}\nsigma:\n{}\nsteps:\n{:#?}\n",
        result.dtd, result.sigma, result.steps
    )
}

#[test]
fn normalize_is_byte_identical_across_budgets_on_the_paper_specs() {
    for name in SPECS {
        let ungoverned = normalize_fingerprint(name, Budget::unlimited());
        let governed_limitless = normalize_fingerprint(name, Budget::builder().build());
        let governed_generous = normalize_fingerprint(name, generous());
        assert_eq!(
            ungoverned, governed_limitless,
            "{name}: a limitless governed budget changed normalize output"
        );
        assert_eq!(
            ungoverned, governed_generous,
            "{name}: a generous finite budget changed normalize output"
        );
    }
}

#[test]
fn is_xnf_verdicts_are_identical_across_budgets_on_the_paper_specs() {
    for name in SPECS {
        let dtd_src = std::fs::read_to_string(spec_path(name, "dtd")).expect("spec DTD exists");
        let fds_src = std::fs::read_to_string(spec_path(name, "fds")).expect("spec FDs exist");
        let dtd = xnf_dtd::parse_dtd(&dtd_src).expect("spec DTD parses");
        let sigma = XmlFdSet::parse(&fds_src).expect("spec FDs parse");
        let truth = xnf_core::is_xnf(&dtd, &sigma).expect("ungoverned is-xnf succeeds");
        for (label, budget) in [
            ("limitless governed", Budget::builder().build()),
            ("generous governed", generous()),
        ] {
            let got = xnf_core::is_xnf_governed(&dtd, &sigma, &budget)
                .unwrap_or_else(|e| panic!("{name}: {label} budget exhausted: {e}"));
            assert_eq!(got, truth, "{name}: {label} budget changed the verdict");
        }
    }
}

/// The same identity through the CLI render path: `xnf-tool normalize`
/// and `is-xnf` with generous `--timeout/--fuel/--max-memory` flags
/// print byte-for-byte what the unflagged invocation prints.
#[test]
fn cli_output_is_byte_identical_with_generous_budget_flags() {
    let flags = [
        "--fuel",
        "100000000",
        "--timeout",
        "600",
        "--max-memory",
        "1000000000",
    ];
    for name in SPECS {
        let dtd = spec_path(name, "dtd").display().to_string();
        let fds = spec_path(name, "fds").display().to_string();
        for cmd in ["normalize", "is-xnf"] {
            let plain: Vec<String> = [cmd, &dtd, &fds].iter().map(|s| s.to_string()).collect();
            let governed: Vec<String> = [cmd, &dtd, &fds]
                .iter()
                .map(|s| s.to_string())
                .chain(flags.iter().map(|s| s.to_string()))
                .collect();
            let plain_out = xnf_cli::run(&plain)
                .unwrap_or_else(|e| panic!("{name}: plain `{cmd}` failed: {e}"));
            let governed_out = xnf_cli::run(&governed)
                .unwrap_or_else(|e| panic!("{name}: governed `{cmd}` failed: {e}"));
            assert_eq!(
                plain_out, governed_out,
                "{name}: `{cmd}` output changed under generous budget flags"
            );
        }
    }
}

/// The same identity for the shredding backend: schema DDL and row SQL
/// are byte-identical across the ungoverned, limitless-governed, and
/// generous-governed budgets, on a fixed Σ-satisfying document per spec.
#[test]
fn shred_is_byte_identical_across_budgets_on_the_paper_specs() {
    use xnf_core::{compile_schema, shred_document, unshred_document};
    for name in SPECS {
        let dtd_src = std::fs::read_to_string(spec_path(name, "dtd")).expect("spec DTD exists");
        let fds_src = std::fs::read_to_string(spec_path(name, "fds")).expect("spec FDs exist");
        let dtd = xnf_dtd::parse_dtd(&dtd_src).expect("spec DTD parses");
        let sigma = XmlFdSet::parse(&fds_src).expect("spec FDs parse");
        let mut rng = xnf_gen::rng(0x1de11);
        let docs = xnf_gen::doc::satisfying_documents(
            &dtd,
            &sigma,
            &mut rng,
            &xnf_gen::doc::DocParams::default(),
            1,
            2_000,
        );
        let doc = docs.first().expect("one satisfying document generates");
        let fingerprint = |budget: &Budget| -> String {
            let schema = compile_schema(&dtd, &sigma, budget).expect("spec compiles");
            let rows = shred_document(&schema, doc, budget).expect("document shreds");
            let rebuilt = unshred_document(&schema, &rows, budget).expect("rows rebuild");
            assert!(
                xnf_xml::ordered_eq(doc, &rebuilt),
                "{name}: round trip broke"
            );
            format!(
                "{}\n{}",
                schema.design.to_sql(),
                rows.to_insert_sql(&schema.design).expect("rows render")
            )
        };
        let ungoverned = fingerprint(&Budget::unlimited());
        assert_eq!(
            ungoverned,
            fingerprint(&Budget::builder().build()),
            "{name}: a limitless governed budget changed shred output"
        );
        assert_eq!(
            ungoverned,
            fingerprint(&generous()),
            "{name}: a generous finite budget changed shred output"
        );
    }
}

/// `xnf-tool shred` with generous budget flags prints byte-for-byte what
/// the unflagged invocation prints (`--force`: the paper specs are the
/// anomalous inputs, which is the point of the differential suite).
#[test]
fn cli_shred_output_is_byte_identical_with_generous_budget_flags() {
    let flags = [
        "--fuel",
        "100000000",
        "--timeout",
        "600",
        "--max-memory",
        "1000000000",
    ];
    let xml = std::env::temp_dir().join(format!("xnf-shred-identity-{}.xml", std::process::id()));
    std::fs::write(
        &xml,
        xnf_xml::to_string_pretty(&xnf_gen::doc::university_document(2, 2, 3, 2)),
    )
    .expect("temp document writes");
    let dtd = spec_path("university", "dtd").display().to_string();
    let fds = spec_path("university", "fds").display().to_string();
    let xml = xml.display().to_string();
    for format in ["sql", "json"] {
        let base = ["shred", &dtd, &fds, &xml, "--force", "--format", format];
        let plain: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        let governed: Vec<String> = base
            .iter()
            .map(|s| s.to_string())
            .chain(flags.iter().map(|s| s.to_string()))
            .collect();
        let plain_out =
            xnf_cli::run(&plain).unwrap_or_else(|e| panic!("plain shred ({format}) failed: {e}"));
        let governed_out = xnf_cli::run(&governed)
            .unwrap_or_else(|e| panic!("governed shred ({format}) failed: {e}"));
        assert_eq!(
            plain_out, governed_out,
            "shred --format {format} output changed under generous budget flags"
        );
    }
    let _ = std::fs::remove_file(std::path::Path::new(&xml));
}
