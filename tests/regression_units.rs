//! Deterministic replays of every shrunk case recorded in the checked-in
//! `*.proptest-regressions` files.
//!
//! The shrunk values in those files are *concrete inputs* to the property
//! bodies (generator seeds and size parameters), so each one can be
//! replayed exactly, independent of any proptest RNG stream. Each failure
//! proptest ever recorded is pinned here as a plain `#[test]` so the bug
//! it exposed stays fixed even if the surrounding property distributions
//! drift.

use xnf::core::implication::{CounterexampleSearch, Implication};
use xnf::core::{is_xnf, normalize, trees_d, tuples_d, NormalizeOptions};
use xnf_dtd::classify::{simple_multiplicities, Multiplicity};
use xnf_dtd::derivative;
use xnf_dtd::nfa::Matcher;
use xnf_dtd::Regex;
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

// ---------------------------------------------------------------------
// tests/dtd_props.proptest-regressions
//   cc b2a06e… # shrinks to re = Epsilon
//   cc e14c5a… # shrinks to re = Alt([Epsilon, Epsilon])
// ---------------------------------------------------------------------

/// Runs every single-regex property from `dtd_props` on one value.
fn check_regex_properties(re: &Regex) {
    // shortest_word_is_always_a_member
    let w = derivative::shortest_word(re);
    let refs: Vec<&str> = w.iter().map(String::as_str).collect();
    assert!(
        Matcher::new(re).matches(refs.iter().copied()),
        "{w:?} is not in L({re})"
    );
    // regex_display_parse_roundtrip
    let s = re.simplified();
    let text = s.to_string();
    let cm = xnf_dtd::parse::parse_content_model(&text).unwrap();
    let reparsed = cm.as_regex().cloned().unwrap_or(Regex::Epsilon);
    let words: [&[&str]; 8] = [
        &[],
        &["a"],
        &["b"],
        &["a", "a"],
        &["a", "b"],
        &["b", "a"],
        &["a", "b", "c"],
        &["c", "c"],
    ];
    for word in words {
        assert_eq!(
            Matcher::new(&s).matches(word.iter().copied()),
            Matcher::new(&reparsed).matches(word.iter().copied()),
            "roundtrip changed the language of {s} (word {word:?})"
        );
        // nfa_and_derivatives_agree + simplified_preserves_language
        assert_eq!(
            Matcher::new(re).matches(word.iter().copied()),
            derivative::matches(re, word.iter().copied()),
            "engines disagree on {re} vs {word:?}"
        );
        assert_eq!(
            Matcher::new(re).matches(word.iter().copied()),
            Matcher::new(&s).matches(word.iter().copied()),
            "simplification changed the language: {re} vs {s}"
        );
    }
    // simplicity_is_sound (on the empty word, the only member here)
    if let Some(m) = simple_multiplicities(re) {
        if Matcher::new(re).matches(std::iter::empty()) {
            for letter in ["a", "b", "c"] {
                match m.get(letter) {
                    None | Some(Multiplicity::Opt) | Some(Multiplicity::Star) => {}
                    Some(other) => {
                        panic!("ε ∈ L({re}) but {letter} has multiplicity {other:?}")
                    }
                }
            }
        }
    }
}

#[test]
fn dtd_props_cc_b2a06e_epsilon() {
    check_regex_properties(&Regex::Epsilon);
}

#[test]
fn dtd_props_cc_e14c5a_alt_of_epsilons() {
    check_regex_properties(&Regex::Alt(vec![Regex::Epsilon, Regex::Epsilon]));
}

// ---------------------------------------------------------------------
// tests/implication_validation.proptest-regressions
// ---------------------------------------------------------------------

fn impl_dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

/// The body of `implication_validation::check_both_directions`, with
/// `prop_assert!` replaced by `assert!`.
fn check_both_directions(dtd: &xnf::dtd::Dtd, seed: u64) {
    let mut rng = xnf_gen::rng(seed ^ 0x5eed);
    let sigma = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let candidates = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    );
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let search = CounterexampleSearch::new(dtd, &paths);

    for fd in candidates.iter() {
        let r = fd.resolve(&paths).unwrap();
        if search.chase().implies(&resolved, &r) {
            for doc_seed in 0..12u64 {
                let mut doc_rng = xnf_gen::rng(seed.wrapping_mul(31).wrapping_add(doc_seed));
                let doc = random_document(
                    dtd,
                    &mut doc_rng,
                    &DocParams {
                        reps: (0, 2),
                        value_alphabet: 2,
                        max_nodes: 300,
                    },
                );
                if doc.num_nodes() >= 300 {
                    continue;
                }
                let Ok(tuples) = tuples_d(&doc, dtd, &paths) else {
                    continue;
                };
                if tuples.len() > 256 {
                    continue;
                }
                if resolved.iter().all(|s| s.check_tuples(&tuples)) {
                    assert!(
                        r.check_tuples(&tuples),
                        "SOUNDNESS BUG: chase claims implication of {fd}, \
                         but a sampled document refutes it (seed {seed}/{doc_seed})"
                    );
                }
            }
        } else {
            let witness = search.find(&resolved, &r);
            assert!(
                witness.is_some(),
                "COMPLETENESS GAP: chase refutes {fd} but no verified \
                 witness was constructed (seed {seed})"
            );
        }
    }
}

fn replay_disjunctive(seed: u64, elements: usize, disjunctions: usize) {
    let mut rng = xnf_gen::rng(seed);
    let dtd = disjunctive_dtd(&mut rng, &impl_dtd_params(elements), disjunctions, 2);
    check_both_directions(&dtd, seed);
}

fn replay_simple_implication(seed: u64, elements: usize) {
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(&mut rng, &impl_dtd_params(elements));
    check_both_directions(&dtd, seed);
}

#[test]
fn implication_cc_33c79d_disjunctive_43465_5_1() {
    replay_disjunctive(43465, 5, 1);
}

#[test]
fn implication_cc_8c4e6f_disjunctive_95705_6_1() {
    replay_disjunctive(95705, 6, 1);
}

#[test]
fn implication_cc_4c45a2_disjunctive_79125_6_1() {
    replay_disjunctive(79125, 6, 1);
}

#[test]
fn implication_cc_bbf911_disjunctive_6560_6_1() {
    replay_disjunctive(6560, 6, 1);
}

#[test]
fn implication_cc_be26e5_simple_3372_6() {
    replay_simple_implication(3372, 6);
}

#[test]
fn implication_cc_b378f2_simple_71503_7() {
    replay_simple_implication(71503, 7);
}

#[test]
fn implication_cc_23b166_simple_75400_6() {
    replay_simple_implication(75400, 6);
}

// ---------------------------------------------------------------------
// tests/normalization_props.proptest-regressions
// ---------------------------------------------------------------------

/// The body of `normalization_terminates_in_xnf` (Theorem 2 +
/// Proposition 6) for one (seed, elements), with asserts.
fn replay_normalization(seed: u64, elements: usize) {
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(&mut rng, &impl_dtd_params(elements));
    let sigma = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let result = match normalize(&dtd, &sigma, &NormalizeOptions::default()) {
        Ok(r) => r,
        Err(xnf::core::CoreError::BadFdPath(_)) => return,
        Err(other) => panic!("{other}"),
    };
    assert!(
        is_xnf(&result.dtd, &result.sigma).unwrap(),
        "seed {seed}: result not in XNF"
    );
    for w in result.ap_trace.windows(2) {
        assert!(
            w[1] < w[0],
            "AP did not strictly decrease: {:?}",
            result.ap_trace
        );
    }
    assert_eq!(*result.ap_trace.last().unwrap(), 0, "final AP must be 0");

    // sigma_only_variant_reaches_xnf on the same inputs.
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(&mut rng, &impl_dtd_params(elements));
    let sigma = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let opts = NormalizeOptions {
        use_implication: false,
        ..NormalizeOptions::default()
    };
    match normalize(&dtd, &sigma, &opts) {
        Ok(r) => assert!(
            is_xnf(&r.dtd, &r.sigma).unwrap(),
            "Σ-only variant not in XNF"
        ),
        Err(xnf::core::CoreError::BadFdPath(_)) => {}
        Err(other) => panic!("{other}"),
    }
}

#[test]
fn normalization_cc_7c6e60_39088_7() {
    replay_normalization(39088, 7);
}

#[test]
fn normalization_cc_be170e_46461_5() {
    replay_normalization(46461, 5);
}

#[test]
fn normalization_cc_33bd31_56278_7() {
    replay_normalization(56278, 7);
}

#[test]
fn normalization_cc_0d92dd_10375_4() {
    replay_normalization(10375, 4);
}

// ---------------------------------------------------------------------
// tests/roundtrip_props.proptest-regressions
//   cc baf7d5… # shrinks to seed = 44, elements = 4, keep = 1
// ---------------------------------------------------------------------

#[test]
fn roundtrip_cc_baf7d5_proposition_3b_44_4_1() {
    let (seed, elements, keep) = (44u64, 4usize, 1usize);
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(
        &mut rng,
        &SimpleDtdParams {
            elements,
            max_children: 3,
            max_attrs: 2,
            text_leaf_prob: 0.5,
        },
    );
    let doc = random_document(
        &dtd,
        &mut rng,
        &DocParams {
            reps: (0, 2),
            value_alphabet: 3,
            max_nodes: 400,
        },
    );
    assert!(doc.num_nodes() < 400, "regression doc draw was capped");
    let paths = dtd.paths().unwrap();
    let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
    assert!(tuples.len() <= 64, "regression tuple set too large");
    let subset: Vec<_> = tuples
        .iter()
        .take(keep.min(tuples.len()))
        .cloned()
        .collect();
    let rebuilt = trees_d(&subset, &paths).unwrap();
    let rebuilt_tuples = tuples_d(&rebuilt, &dtd, &paths).unwrap();
    let str_paths: Vec<_> = paths
        .iter()
        .filter(|&p| !paths.is_element_path(p))
        .collect();
    let elem_paths: Vec<_> = paths.iter().filter(|&p| paths.is_element_path(p)).collect();
    for t in &subset {
        assert!(
            rebuilt_tuples.iter().any(|rt| {
                str_paths
                    .iter()
                    .all(|&p| t.get(p).is_null() || t.get(p) == rt.get(p))
                    && elem_paths
                        .iter()
                        .all(|&p| t.get(p).is_null() || !rt.get(p).is_null())
            }),
            "a tuple of X is not subsumed in tuples(trees(X)) up to renaming"
        );
    }

    // theorem_1_roundtrip on the same (seed, elements).
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(
        &mut rng,
        &SimpleDtdParams {
            elements,
            max_children: 3,
            max_attrs: 2,
            text_leaf_prob: 0.5,
        },
    );
    let doc = random_document(
        &dtd,
        &mut rng,
        &DocParams {
            reps: (0, 2),
            value_alphabet: 3,
            max_nodes: 400,
        },
    );
    if doc.num_nodes() < 400 {
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        if tuples.len() <= 512 {
            let rebuilt = trees_d(&tuples, &paths).unwrap();
            assert!(
                xnf::xml::unordered_eq(&rebuilt, &doc),
                "Theorem 1 roundtrip"
            );
        }
    }
}
