//! Differential tests for the memoized and parallel implication paths.
//!
//! The cache and the parallel candidate search are pure optimizations:
//! every verdict must match the raw sequential chase exactly. These
//! tests check that verdict-for-verdict over randomized corpora and
//! end-to-end on whole normalization runs.

use xnf::core::implication::Implication;
use xnf::core::{normalize, Chase, ImplicationCache, NormalizeOptions, NormalizeResult};
use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

fn check_cached_matches_uncached(dtd: &xnf::dtd::Dtd, seed: u64) {
    let mut rng = xnf_gen::rng(seed ^ 0xcac4e);
    let sigma = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let candidates = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 6,
            max_lhs: 2,
        },
    );
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let chase = Chase::new(dtd, &paths);
    let cache = ImplicationCache::new(&chase, &resolved);
    for fd in candidates.iter() {
        let r = fd.resolve(&paths).unwrap();
        let raw = chase.implies(&resolved, &r);
        let raw_trivial = chase.is_trivial(&r);
        // Ask twice: the first answer is computed (miss), the second is
        // served from the memo (hit); both must equal the raw chase.
        for round in 0..2 {
            assert_eq!(
                cache.implies(&resolved, &r),
                raw,
                "seed {seed}, fd {fd}, round {round}: cached verdict diverged"
            );
            assert_eq!(
                cache.is_trivial(&r),
                raw_trivial,
                "seed {seed}, fd {fd}, round {round}: cached triviality diverged"
            );
        }
    }
    let stats = chase.stats().snapshot();
    assert!(
        stats.get("cache.hits") >= stats.get("cache.misses"),
        "seed {seed}: second round must be all hits"
    );
}

#[test]
fn cached_implies_matches_uncached_simple_corpus() {
    for seed in 0..150u64 {
        for elements in 3..8 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            check_cached_matches_uncached(&dtd, seed);
        }
    }
}

#[test]
fn cached_implies_matches_uncached_disjunctive_corpus() {
    for seed in 0..100u64 {
        for elements in 3..7 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = disjunctive_dtd(&mut rng, &dtd_params(elements), 2, 2);
            check_cached_matches_uncached(&dtd, seed);
        }
    }
}

/// Renders the parts of a [`NormalizeResult`] that must be reproducible.
fn render(r: &NormalizeResult) -> String {
    format!(
        "dtd:\n{}\nsigma:\n{}\nsteps: {:?}\nap_trace: {:?}",
        r.dtd, r.sigma, r.steps, r.ap_trace
    )
}

#[test]
fn parallel_normalize_is_byte_identical_to_sequential() {
    let mut compared = 0u32;
    for seed in 0..120u64 {
        for elements in 3..8 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            let sigma = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 3,
                    max_lhs: 2,
                },
            );
            let run = |threads: usize| {
                normalize(
                    &dtd,
                    &sigma,
                    &NormalizeOptions {
                        threads,
                        ..NormalizeOptions::default()
                    },
                )
            };
            let sequential = match run(1) {
                Ok(r) => render(&r),
                Err(_) => continue,
            };
            for threads in [0, 2, 4] {
                let parallel = render(&run(threads).unwrap_or_else(|e| {
                    panic!("seed {seed}: threads={threads} failed where sequential passed: {e}")
                }));
                assert_eq!(
                    parallel, sequential,
                    "seed {seed}, elements {elements}, threads {threads}: output diverged"
                );
            }
            compared += 1;
        }
    }
    assert!(compared > 300, "corpus too small: {compared}");
}

const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>";

const DBLP_DTD: &str = "<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings
    key CDATA #REQUIRED
    pages CDATA #REQUIRED
    year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>";

#[test]
fn paper_examples_identical_across_thread_counts() {
    use xnf::core::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use xnf::core::XmlFdSet;
    for (dtd_text, fds) in [(UNIVERSITY_DTD, UNIVERSITY_FDS), (DBLP_DTD, DBLP_FDS)] {
        let dtd = xnf::dtd::parse_dtd(dtd_text).unwrap();
        let sigma = XmlFdSet::parse(fds).unwrap();
        let base = render(&normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap());
        for threads in [0, 2, 8] {
            let r = normalize(
                &dtd,
                &sigma,
                &NormalizeOptions {
                    threads,
                    ..NormalizeOptions::default()
                },
            )
            .unwrap();
            assert_eq!(render(&r), base);
        }
    }
}
