//! Differential and chaos suite for the `xnf-serve` HTTP front end.
//!
//! Two obligations, mirroring the repo's other differential suites:
//!
//! 1. **Byte identity.** The service delegates to the same
//!    `xnf_cli::ops` functions as the CLI; here a mixed-schema request
//!    load is pushed through an in-process server at worker counts
//!    {1, 4, 8} and every `output` field must be byte-identical to the
//!    sequential in-process call — caching, coalescing, and thread
//!    scheduling must be invisible in the payload.
//! 2. **Chaos over live sockets.** With the `fault-injection` feature,
//!    a deterministic fault sweep runs against real TCP requests: every
//!    plan must produce a *well-formed HTTP response* (never a panic, a
//!    dropped connection, or a hung socket), and a faulted run must
//!    never leave a partial result in the shared cache (the
//!    cache-poisoning probe re-asks without the fault and demands the
//!    pristine answer).

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use xnf_cli::ops::{
    self, AnalyzeFormat, AnalyzeSpecOptions, IsXnfOptions, LintSpecOptions, NormalizeSpecOptions,
    Trust,
};
use xnf_govern::{Budget, FaultPlan, Recorder};
use xnf_serve::json::{self, Json};
use xnf_serve::{ServeConfig, Server};

const UNIVERSITY_DTD: &str = include_str!("../examples/specs/university.dtd");
const UNIVERSITY_FDS: &str = include_str!("../examples/specs/university.fds");
const DBLP_DTD: &str = include_str!("../examples/specs/dblp.dtd");
const DBLP_FDS: &str = include_str!("../examples/specs/dblp.fds");

/// A small already-normal spec, to mix cheap positives into the load.
const FLAT_DTD: &str = "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a id CDATA #REQUIRED>";
const FLAT_FDS: &str = "r.a.@id -> r.a";

fn specs() -> Vec<(&'static str, &'static str)> {
    vec![
        (UNIVERSITY_DTD, UNIVERSITY_FDS),
        (DBLP_DTD, DBLP_FDS),
        (FLAT_DTD, FLAT_FDS),
    ]
}

fn request_budget() -> Budget {
    Budget::builder()
        .fuel(2_000_000)
        .recorder(Recorder::disabled())
        .build()
}

/// The sequential reference: exactly what the CLI would print for this
/// op (`Trust::Network` matches the service's hardening profile; the
/// outputs do not depend on the profile for in-limit specs).
fn reference_output(op: &str, dtd: &str, fds: &str) -> String {
    let budget = request_budget();
    match op {
        "is-xnf" => ops::is_xnf(
            dtd,
            fds,
            &IsXnfOptions {
                no_lint: false,
                trust: Some(Trust::Network),
            },
            &budget,
        )
        .expect("reference is-xnf"),
        "normalize" => ops::normalize_spec(
            dtd,
            fds,
            &NormalizeSpecOptions {
                trust: Some(Trust::Network),
                ..NormalizeSpecOptions::default()
            },
            &budget,
            &Recorder::disabled(),
        )
        .expect("reference normalize"),
        "analyze" => {
            ops::analyze_spec(
                dtd,
                fds,
                &AnalyzeSpecOptions {
                    format: AnalyzeFormat::Json,
                    sigma_only: false,
                    trust: Some(Trust::Network),
                },
                &budget,
            )
            .expect("reference analyze")
            .rendered
        }
        "lint" => ops::lint_sources(dtd, Some(fds), &LintSpecOptions::default(), &budget)
            .expect("reference lint"),
        other => panic!("unknown op {other}"),
    }
}

fn body_for(op: &str, dtd: &str, fds: &str) -> String {
    let mut b = String::from("{\"dtd\":");
    json::write_str(&mut b, dtd);
    b.push_str(",\"fds\":");
    json::write_str(&mut b, fds);
    if op == "analyze" {
        b.push_str(",\"format\":\"json\"");
    }
    b.push('}');
    b
}

fn path_for(op: &str) -> String {
    format!("/v1/{op}")
}

/// One raw HTTP POST; returns (status, body) or panics on a malformed
/// response — a dropped connection or non-HTTP bytes is a test failure
/// by construction. Every request carries a unique `x-request-id` and
/// asserts the response echoes exactly that id back, so the whole
/// differential suite doubles as a concurrency test of the id plumbing
/// (two in-flight requests must never swap ids).
fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = format!(
        "diff-{:016x}",
        NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nx-request-id: {id}\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let (head, body) = response
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let echoed = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("x-request-id").then(|| v.trim())
        })
        .unwrap_or_else(|| panic!("no x-request-id echoed in {head:?}"));
    assert_eq!(echoed, id, "response carries a different request's id");
    (status, body)
}

/// Extracts the `output` field of a 200 response envelope.
fn output_of(body: &str) -> String {
    let v =
        json::parse(body).unwrap_or_else(|e| panic!("response body is not JSON ({e}): {body:?}"));
    v.get("output")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no `output` in {body:?}"))
        .to_string()
}

#[test]
fn concurrent_requests_are_byte_identical_to_the_cli_path() {
    let ops = ["is-xnf", "normalize", "analyze", "lint"];
    // The reference table, computed sequentially in-process.
    let mut expected = Vec::new();
    for (dtd, fds) in specs() {
        for op in ops {
            expected.push((op, dtd, fds, reference_output(op, dtd, fds)));
        }
    }
    let expected = Arc::new(expected);

    for threads in [1usize, 4, 8] {
        let server = Server::spawn(ServeConfig {
            threads,
            ..ServeConfig::default()
        })
        .expect("spawn server");
        let addr = server.addr();
        // Two full passes fired concurrently: the second pass lands on
        // the cache and must still be byte-identical.
        let mut clients = Vec::new();
        for pass in 0..2 {
            for (i, (op, dtd, fds, want)) in expected.iter().enumerate() {
                let (op, dtd, fds, want) = (*op, *dtd, *fds, want.clone());
                clients.push(std::thread::spawn(move || {
                    let (status, body) = post(addr, &path_for(op), &body_for(op, dtd, fds));
                    assert_eq!(status, 200, "pass {pass} item {i} ({op}): {body}");
                    assert_eq!(
                        output_of(&body),
                        want,
                        "pass {pass} item {i} ({op}, {threads} threads) diverged from the CLI path"
                    );
                }));
            }
        }
        for c in clients {
            c.join().expect("client thread");
        }
        assert_eq!(
            server.recorder().counter("serve.panics"),
            0,
            "a handler panicked under load"
        );
        server.shutdown();
    }
}

#[test]
fn batch_endpoint_matches_single_requests() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn server");
    let addr = server.addr();
    let mut body = String::from("{\"requests\":[");
    for (i, op) in ["is-xnf", "analyze"].iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let mut item = body_for(op, UNIVERSITY_DTD, UNIVERSITY_FDS);
        // Splice `"op":…` into the item object.
        item.replace_range(0..1, "");
        body.push_str("{\"op\":");
        json::write_str(&mut body, op);
        body.push(',');
        body.push_str(&item);
    }
    body.push_str("]}");
    let (status, response) = post(addr, "/v1/batch", &body);
    assert_eq!(status, 200, "{response}");
    let v = json::parse(&response).expect("batch response is JSON");
    let results = v
        .get("results")
        .and_then(Json::as_arr)
        .expect("results array");
    assert_eq!(results.len(), 2);
    for (result, op) in results.iter().zip(["is-xnf", "analyze"]) {
        assert_eq!(result.get("http").and_then(Json::as_u64), Some(200));
        let inner = result.get("response").expect("embedded response");
        assert_eq!(
            inner.get("output").and_then(Json::as_str),
            Some(reference_output(op, UNIVERSITY_DTD, UNIVERSITY_FDS).as_str()),
            "batch {op} diverged"
        );
    }
    server.shutdown();
}

/// The chaos sweep: deterministic faults against live sockets. Every
/// outcome must be a well-formed HTTP response, and the shared cache
/// must never retain anything a faulted run produced.
#[test]
fn fault_sweep_over_live_sockets_yields_well_formed_errors_and_a_clean_cache() {
    let server = Server::spawn(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("spawn server");
    let addr = server.addr();
    let pristine = reference_output("normalize", UNIVERSITY_DTD, UNIVERSITY_FDS);
    let body = body_for("normalize", UNIVERSITY_DTD, UNIVERSITY_FDS);

    let mut tripped = 0usize;
    let mut survived = 0usize;
    for seed in 0..48u64 {
        // Ordinals beyond the run's total tick count simply never
        // trip; mixing small and large targets covers the parse phase,
        // the engine loops, and the untripped tail.
        let plan = FaultPlan::seeded(seed, 1 + (seed % 6) * 400);
        server.set_fault(Some(plan));
        let (status, response) = post(addr, "/v1/normalize", &body);
        // A fault must surface as 503 (exhaustion) — or not at all
        // (200, if the ordinal was never reached). Anything else is a
        // routing bug; a panic or dropped connection already failed in
        // `post`.
        match status {
            200 => {
                survived += 1;
                assert_eq!(
                    output_of(&response),
                    pristine,
                    "seed {seed} corrupted output"
                );
            }
            503 => {
                tripped += 1;
                let v = json::parse(&response)
                    .unwrap_or_else(|e| panic!("seed {seed}: 503 body not JSON ({e})"));
                assert_eq!(
                    v.get("status").and_then(Json::as_str),
                    Some("exhausted"),
                    "seed {seed}: {response}"
                );
            }
            other => panic!("seed {seed}: unexpected status {other}: {response}"),
        }
        // Cache-poisoning probe: with the fault cleared, the same spec
        // must come back pristine — a partial trace left resident by
        // the faulted run would surface here as a cache hit.
        server.set_fault(None);
        let (status, response) = post(addr, "/v1/normalize", &body);
        assert_eq!(status, 200, "probe after seed {seed}: {response}");
        assert_eq!(
            output_of(&response),
            pristine,
            "cache poisoned by faulted run (seed {seed})"
        );
    }
    assert!(
        tripped > 0,
        "the sweep never tripped a fault — widen the ordinals"
    );
    assert!(survived > 0, "the sweep never let a request finish");
    assert_eq!(server.recorder().counter("serve.panics"), 0);
    server.shutdown();
}

/// Faults during *admission* (the service-boundary checkpoint) must
/// also answer well-formed 503s, and health endpoints stay fault-free.
#[test]
fn boundary_faults_answer_503_and_health_stays_up() {
    let server = Server::spawn(ServeConfig::default()).expect("spawn server");
    let addr = server.addr();
    server.set_fault(Some(FaultPlan {
        trip_at: 1,
        resource: xnf_govern::Resource::Fuel,
    }));
    let (status, response) = post(addr, "/v1/is-xnf", &body_for("is-xnf", FLAT_DTD, FLAT_FDS));
    assert_eq!(status, 503, "{response}");
    // Health and metrics take no budget: immune to the installed plan.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let mut health = String::new();
    stream.read_to_string(&mut health).expect("read");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    server.set_fault(None);
    server.shutdown();
}
