//! Deterministic fault-injection harness for the resource-governed
//! execution layer (`xnf-govern`, `fault-injection` feature).
//!
//! The harness drives one *full governed pipeline* — DTD parse, document
//! generation + parse, conformance, regex derivatives, chase implication
//! (including a presence case-split), the XNF test, normalization, lint,
//! the losslessness oracle, and the relational shredding backend —
//! entirely under a single [`Budget`], and
//! then attacks every checkpoint site it visited:
//!
//! 1. **Probe.** A governed-but-limitless budget records each site's
//!    first-visit ordinal ([`Budget::site_ordinals`]). The pipeline is
//!    single-threaded and seeded, so ordinals are reproducible.
//! 2. **Targeted injection.** For every recorded site, a [`FaultPlan`]
//!    trips a synthetic exhaustion at exactly that site's ordinal. The
//!    run must surface a structured [`Exhausted`] naming the site —
//!    never a panic, never a verdict.
//! 3. **Seeded sweep.** Randomized plans ([`FaultPlan::seeded`]) over
//!    the whole tick range: every outcome is either the byte-identical
//!    ungoverned verdicts or a clean `Exhausted` of the planned resource.
//! 4. **Convergence.** Rerunning after `Exhausted` with geometrically
//!    larger fuel reaches the byte-identical ungoverned result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use xnf_core::{normalize, Chase, Implication, NormalizeOptions, XmlFdSet};
use xnf_govern::{Budget, Exhausted, FaultPlan, Resource};

const UNIVERSITY_DTD: &str = include_str!("../examples/specs/university.dtd");
const UNIVERSITY_FDS: &str = include_str!("../examples/specs/university.fds");

/// The Fig. 8-style instance whose implication is only visible through a
/// presence case-split (mirrors the chase's own split test): with
/// `e0.e1 → e0.e1.e4`, the FD `e0.@a0 → e0.e1.e4.@a4` holds in both the
/// `e1`-present and `e1`-absent cases.
const SPLIT_DTD: &str = "<!ELEMENT e0 (e1?)>
     <!ATTLIST e0 a0 CDATA #REQUIRED>
     <!ELEMENT e1 (e4*)>
     <!ELEMENT e4 EMPTY>
     <!ATTLIST e4 a4 CDATA #REQUIRED>";

/// Every truth-bearing output of the pipeline. `PartialEq` equality over
/// this struct is the "never a wrong answer" oracle: a governed run may
/// abort with [`Exhausted`], but if it answers, the answer must be
/// byte-identical to the ungoverned one.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Verdicts {
    doc_conforms: bool,
    word_matches: bool,
    split_implies: bool,
    input_is_xnf: bool,
    normalize_steps: usize,
    final_dtd: String,
    final_sigma: String,
    output_is_xnf: bool,
    shred_summary: String,
    lint_codes: String,
    oracle_summary: String,
    incremental_summary: String,
}

/// Runs the whole governed pipeline under `budget`. Exhaustion at any
/// stage propagates as `Err`; every *other* failure panics, because the
/// inputs are fixed and valid — so `catch_unwind` around this function
/// flags any injection site that corrupts state instead of unwinding
/// cleanly through the governed error channel.
fn run_pipeline(budget: &Budget) -> Result<Verdicts, Exhausted> {
    // Stage 1: governed DTD parsing (sites `dtd.parse.*`).
    let dtd = match xnf_dtd::parse_dtd_governed(
        UNIVERSITY_DTD,
        xnf_dtd::ParseLimits::default(),
        budget,
    ) {
        Ok(d) => d,
        Err(xnf_dtd::DtdError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the university DTD must parse: {e}"),
    };

    // Stage 2: governed XML parsing of a generated document
    // (sites `xml.parse.*`).
    let doc_src = xnf_xml::to_string_pretty(&xnf_gen::doc::university_document(2, 2, 3, 2));
    let doc = match xnf_xml::parse_governed(&doc_src, xnf_xml::ParseLimits::default(), budget) {
        Ok(t) => t,
        Err(xnf_xml::XmlError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the generated document must parse: {e}"),
    };

    // Stage 3: governed conformance, which also compiles the content
    // models' Glushkov matchers (sites `xml.conform.*`, `nfa.*`).
    let doc_conforms = match xnf_xml::conforms_governed(&doc, &dtd, budget) {
        Ok(()) => true,
        Err(xnf_xml::ConformError::Exhausted(e)) => return Err(e),
        Err(_) => false,
    };

    // Stage 4: governed Brzozowski derivatives (sites `derivative.*`).
    let courses = dtd.elem_id("courses").expect("root element exists");
    let courses_re = dtd
        .content(courses)
        .as_regex()
        .expect("(course*) is a regular content model")
        .clone();
    let word_matches =
        xnf_dtd::derivative::matches_governed(&courses_re, ["course", "course"], budget)?;

    // Stage 5: governed chase on the case-split instance
    // (sites `chase.*`, including `chase.split`).
    let split_dtd = xnf_dtd::parse_dtd(SPLIT_DTD).expect("split DTD parses");
    let split_paths = split_dtd.paths().expect("split DTD is non-recursive");
    let split_sigma = XmlFdSet::parse("e0.e1 -> e0.e1.e4")
        .expect("sigma parses")
        .resolve(&split_paths)
        .expect("sigma resolves");
    let split_query = XmlFdSet::parse("e0.@a0 -> e0.e1.e4.@a4")
        .expect("query parses")
        .resolve(&split_paths)
        .expect("query resolves")
        .remove(0);
    let chase = Chase::new(&split_dtd, &split_paths).with_budget(budget.clone());
    let split_implies = chase.try_implies(&split_sigma, &split_query)?;

    // Stage 6: governed XNF test on the input spec
    // (sites `xnf.candidate`, `cache.lookup`, more `chase.*`).
    let sigma = XmlFdSet::parse(UNIVERSITY_FDS).expect("university FDs parse");
    let input_is_xnf = match xnf_core::is_xnf_governed(&dtd, &sigma, budget) {
        Ok(b) => b,
        Err(xnf_core::CoreError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the XNF test must succeed: {e}"),
    };

    // Stage 7: governed normalization (sites `normalize.*`). A partial
    // result is an exhaustion for the harness: only a final design may
    // contribute verdicts.
    let options = NormalizeOptions {
        budget: budget.clone(),
        ..NormalizeOptions::default()
    };
    let result = match normalize(&dtd, &sigma, &options) {
        Ok(r) => r,
        Err(xnf_core::CoreError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("normalization must succeed: {e}"),
    };
    if let Some(e) = result.exhausted {
        return Err(e);
    }
    let output_is_xnf = match xnf_core::is_xnf_governed(&result.dtd, &result.sigma, budget) {
        Ok(b) => b,
        Err(xnf_core::CoreError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the output XNF test must succeed: {e}"),
    };

    // Stage 8: governed lint (site `lint.semantic.fd`).
    let lint_report = xnf_lint::lint_spec_governed(UNIVERSITY_DTD, Some(UNIVERSITY_FDS), budget)?;

    // Stage 9: governed losslessness oracle (site `oracle.doc`).
    let oracle_config = xnf_oracle::SpecOracleConfig {
        docs: 3,
        seed: 7,
        doc_params: xnf_gen::doc::DocParams::default(),
        max_attempts: 200,
        budget: budget.clone(),
    };
    let oracle = match xnf_oracle::check_spec(&dtd, &sigma, &oracle_config) {
        Ok(r) => r,
        Err(xnf_core::CoreError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the oracle must complete: {e}"),
    };

    // Stage 10: governed incremental implication cache (site
    // `cache.invalidate`; the sharded candidate search of stages 6–7
    // already exercises `chase.shard`/`chase.merge`, which every
    // configuration routes through — including this single-threaded
    // pipeline). One verdict is cached, Σ shrinks by its last FD, the
    // delta is applied and the verdict re-asked.
    let mut inc =
        xnf_core::IncrementalCache::new(dtd.clone(), sigma.clone()).with_budget(budget.clone());
    let inc_query = sigma
        .iter()
        .next()
        .expect("university FDs are non-empty")
        .clone();
    let map_core = |r: xnf_core::Result<bool>| match r {
        Ok(b) => Ok(b),
        Err(xnf_core::CoreError::Exhausted(e)) => Err(e),
        Err(e) => panic!("the incremental cache must answer: {e}"),
    };
    let inc_before = map_core(inc.implies(&inc_query))?;
    let reduced = XmlFdSet::from_fds(sigma.iter().take(sigma.len() - 1).cloned());
    let report = match inc.apply_delta(
        &xnf_core::DtdDelta::unchanged(&dtd),
        &xnf_core::SigmaDelta::between(&sigma, &reduced),
    ) {
        Ok(r) => r,
        Err(xnf_core::CoreError::Exhausted(e)) => return Err(e),
        Err(e) => panic!("the delta must apply: {e}"),
    };
    let inc_after = map_core(inc.implies(&inc_query))?;

    // Stage 11: governed shredding (sites `shred.table`, `shred.fd`,
    // `shred.row`, `shred.rebuild`): compile the relational schema,
    // shred the stage-2 document, rebuild it, and render the SQL. A
    // round trip that is not the identity is a corruption, not an
    // exhaustion, so it panics.
    fn map_shred<T>(r: xnf_core::Result<T>) -> Result<T, Exhausted> {
        match r {
            Ok(v) => Ok(v),
            Err(xnf_core::CoreError::Exhausted(e)) => Err(e),
            Err(e) => panic!("shredding the university spec must succeed: {e}"),
        }
    }
    let schema = map_shred(xnf_core::compile_schema(&dtd, &sigma, budget))?;
    let rows = map_shred(xnf_core::shred_document(&schema, &doc, budget))?;
    let rebuilt = map_shred(xnf_core::unshred_document(&schema, &rows, budget))?;
    assert!(
        xnf_xml::ordered_eq(&doc, &rebuilt),
        "the shred round trip must be the identity"
    );

    Ok(Verdicts {
        doc_conforms,
        word_matches,
        split_implies,
        input_is_xnf,
        normalize_steps: result.steps.len(),
        final_dtd: result.dtd.to_string(),
        final_sigma: result.sigma.to_string(),
        output_is_xnf,
        lint_codes: format!("{:?}", lint_report.codes()),
        shred_summary: format!(
            "tables={} rows={} bcnf_violations={} sql_bytes={}",
            schema.num_tables(),
            rows.row_count(),
            schema.non_bcnf_tables().len(),
            schema.design.to_sql().len()
                + rows
                    .to_insert_sql(&schema.design)
                    .expect("sql renders")
                    .len()
        ),
        oracle_summary: format!(
            "xnf={} checked={} skipped={} failures={}",
            oracle.output_is_xnf,
            oracle.docs_checked,
            oracle.docs_skipped,
            oracle.failures.len()
        ),
        incremental_summary: format!(
            "before={inc_before} after={inc_after} kept={} invalidated={}",
            report.kept, report.invalidated
        ),
    })
}

/// Probe run: governed but limitless, so nothing can exhaust and every
/// checkpoint site records its first-visit ordinal.
fn probe() -> (Verdicts, Vec<(&'static str, u64)>, u64) {
    let budget = Budget::builder().build();
    let verdicts = run_pipeline(&budget).expect("a limitless governed budget cannot exhaust");
    let ordinals = budget.site_ordinals();
    (verdicts, ordinals, budget.ticks())
}

/// The paper-level expectations for the pipeline, asserted once on the
/// ungoverned truth so the sweep tests compare against *correct*
/// verdicts, not merely self-consistent ones.
fn assert_truth_is_sane(truth: &Verdicts) {
    assert!(truth.doc_conforms, "the generated document conforms");
    assert!(truth.word_matches, "course,course ∈ L(course*)");
    assert!(truth.split_implies, "the case-split implication holds");
    assert!(!truth.input_is_xnf, "Example 5.1: university is not in XNF");
    assert!(truth.output_is_xnf, "normalization reaches XNF");
    assert!(truth.normalize_steps > 0);
}

#[test]
fn governed_pipeline_visits_the_whole_injection_surface() {
    let (verdicts, ordinals, ticks) = probe();
    assert_truth_is_sane(&verdicts);
    assert!(ticks >= ordinals.len() as u64);
    let sites: Vec<&str> = ordinals.iter().map(|&(s, _)| s).collect();
    assert!(
        sites.len() >= 20,
        "expected ≥ 20 distinct injection sites, saw {}: {sites:?}",
        sites.len()
    );
    // Every layer of the stack must expose at least one site: a layer
    // with no checkpoints is ungovernable and invisible to this harness.
    for prefix in [
        "dtd.",
        "xml.",
        "nfa.",
        "derivative.",
        "chase.",
        "cache.",
        "xnf.",
        "normalize.",
        "lint.",
        "oracle.",
        "shred.",
    ] {
        assert!(
            sites.iter().any(|s| s.starts_with(prefix)),
            "no checkpoint site under `{prefix}` was visited; sites: {sites:?}"
        );
    }
    // The sharded search and the incremental cache are load-bearing
    // checkpoints of this PR's hot path: they must be on the injection
    // surface by name, even in a single-threaded pipeline.
    for site in [
        "chase.shard",
        "chase.merge",
        "cache.invalidate",
        "shred.table",
        "shred.fd",
        "shred.row",
        "shred.rebuild",
    ] {
        assert!(
            sites.contains(&site),
            "checkpoint site `{site}` was not visited; sites: {sites:?}"
        );
    }
}

#[test]
fn every_injection_site_surfaces_a_structured_error() {
    let (_, ordinals, _) = probe();
    assert!(
        ordinals.len() >= 20,
        "injection surface shrank: {ordinals:?}"
    );
    for &(site, ordinal) in &ordinals {
        // The pipeline is deterministic, so tripping at a site's
        // first-visit ordinal injects exactly there.
        let plan = FaultPlan {
            trip_at: ordinal,
            resource: Resource::Fuel,
        };
        let budget = Budget::builder().fault(plan).build();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_pipeline(&budget)))
            .unwrap_or_else(|_| panic!("injection at `{site}` (ordinal {ordinal}) panicked"));
        let e = outcome.expect_err("a tripped fault plan cannot produce verdicts");
        assert_eq!(e.resource, Resource::Fuel);
        assert!(
            e.progress.contains(site),
            "injection at ordinal {ordinal} surfaced `{}`, expected site `{site}`",
            e.progress
        );
    }
}

#[test]
fn seeded_fault_sweeps_never_panic_and_never_lie() {
    let (truth, _, total_ticks) = probe();
    for seed in 0..48u64 {
        let plan = FaultPlan::seeded(seed, total_ticks);
        let budget = Budget::builder().fault(plan).build();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_pipeline(&budget)))
            .unwrap_or_else(|_| panic!("seed {seed} ({plan:?}) panicked"));
        match outcome {
            // A plan can only let the pipeline finish if it tripped past
            // the end; any produced verdicts must equal the truth.
            Ok(v) => assert_eq!(v, truth, "seed {seed} ({plan:?}) changed a verdict"),
            Err(e) => {
                assert_eq!(e.resource, plan.resource, "seed {seed} misreported");
                assert!(!e.progress.is_empty(), "seed {seed} lost its progress");
            }
        }
    }
}

#[test]
fn rerunning_with_larger_budgets_converges_to_the_ungoverned_result() {
    let truth = run_pipeline(&Budget::unlimited()).expect("ungoverned runs cannot exhaust");
    assert_truth_is_sane(&truth);
    let mut fuel = 10u64;
    let mut starved = 0usize;
    loop {
        let budget = Budget::builder().fuel(fuel).build();
        match run_pipeline(&budget) {
            Ok(v) => {
                assert_eq!(v, truth, "fuel {fuel} converged to different verdicts");
                break;
            }
            Err(e) => {
                assert_eq!(e.resource, Resource::Fuel, "fuel {fuel} misreported: {e}");
                starved += 1;
                fuel *= 4;
                assert!(fuel < 1 << 40, "pipeline never converged");
            }
        }
    }
    assert!(starved > 0, "fuel 10 must starve the pipeline");
}

#[test]
fn pathological_general_dtd_exhausts_instead_of_hanging() {
    // Implication for general (non-simple) DTDs is coNP-hard (the chase
    // itself caps its case-split exploration to stay sound), so the
    // governed XNF test must be able to give up *cleanly* when an
    // instance's workload exceeds the budget. This instance is a deep
    // chain of optional elements with starred, attributed siblings —
    // every `e{i}?` forces presence reasoning, every `s{i}*` defeats
    // functional shortcuts — closed by an alternation-of-sequences leaf
    // that places the DTD in the general class. Its implication workload
    // is several times the 5 000-unit fuel allowance; the run must stop
    // with a structured `Exhausted`, never hang and never answer.
    //
    // The spec lives in `tests/data/` because CI smokes the identical
    // bytes through the CLI (`xnf-tool is-xnf … --fuel 5000` under
    // `timeout`, expecting exit code 4).
    let dtd = xnf_dtd::parse_dtd(include_str!("data/pathological-general.dtd"))
        .expect("pathological DTD parses");
    let sigma = XmlFdSet::parse(include_str!("data/pathological-general.fds"))
        .expect("pathological FDs parse");

    let budget = Budget::builder()
        .fuel(5_000)
        .deadline(std::time::Duration::from_secs(30))
        .build();
    match xnf_core::is_xnf_governed(&dtd, &sigma, &budget) {
        Err(xnf_core::CoreError::Exhausted(e)) => {
            assert!(!e.progress.is_empty(), "exhaustion lost its progress: {e}");
        }
        Ok(v) => panic!("expected exhaustion on the pathological instance, got verdict {v}"),
        Err(e) => panic!("expected Exhausted, got {e}"),
    }
}
