//! Differential conformance: the chase-based implication engine against
//! the brute-force document oracle of `xnf-oracle`.
//!
//! The two sides share no code: the chase reasons symbolically over
//! two-tuple states; [`xnf_oracle::BruteForce`] generates concrete
//! Σ-satisfying conforming documents and evaluates the candidate FD on
//! their Codd-table relations. The contract is one-sided soundness:
//!
//! * if the brute oracle finds a witness (a conforming, Σ-satisfying
//!   document violating φ), then `(D, Σ) ⊬ φ` — a chase verdict of
//!   `Implied` on such an instance is a hard bug on one side or the
//!   other, and the assertion names the seed;
//! * when the chase answers `NotImplied`, its own counterexample search
//!   can certify it: the constructed witness must check out through the
//!   same relation path the brute oracle uses.
//!
//! The sweep covers ≥ 1000 generated `(D, Σ, φ)` instances in the default
//! `cargo test` run.

use xnf::core::implication::{CounterexampleSearch, Implication};
use xnf::core::{tuples_relation, Chase, ImplicationCache, XmlFd};
use xnf_gen::doc::DocParams;
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};
use xnf_oracle::BruteForce;

fn fd_columns(fd: &XmlFd) -> (Vec<String>, Vec<String>) {
    (
        fd.lhs().iter().map(ToString::to_string).collect(),
        fd.rhs().iter().map(ToString::to_string).collect(),
    )
}

#[test]
fn brute_force_oracle_agrees_with_the_implication_cache() {
    let mut instances = 0usize;
    let mut refuted = 0usize;
    let mut certified = 0usize;
    for seed in 0..300u64 {
        let mut rng = xnf_gen::rng(seed ^ 0x0b5e55ed);
        let dtd = simple_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements: 6,
                max_children: 3,
                max_attrs: 2,
                text_leaf_prob: 0.4,
            },
        );
        let sigma = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 2,
                max_lhs: 2,
            },
        );
        let candidates = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 4,
                max_lhs: 2,
            },
        );
        let paths = dtd.paths().unwrap();
        let resolved = sigma.resolve(&paths).unwrap();
        let chase = Chase::new(&dtd, &paths);
        let cache = ImplicationCache::new(&chase, &resolved);
        let search = CounterexampleSearch::new(&dtd, &paths);
        let brute = BruteForce::new(
            &dtd,
            &sigma,
            seed,
            6,
            &DocParams {
                reps: (0, 2),
                value_alphabet: 2,
                max_nodes: 150,
            },
        )
        .unwrap();
        assert!(brute.pool_conforms(), "seed {seed}: pool must conform");

        for fd in candidates.iter() {
            let r = fd.resolve(&paths).unwrap();
            let implied = cache.implies(&resolved, &r);
            instances += 1;
            if let Some(i) = brute.refutes(fd).unwrap() {
                refuted += 1;
                assert!(
                    !implied,
                    "seed {seed}: chase claims (D, Σ) ⊢ {fd} but document {i} \
                     of the brute pool satisfies Σ and violates it:\n{}",
                    xnf::xml::to_string_pretty(brute.witness(i))
                );
            }
            if !implied {
                // Positive certification of NotImplied: the chase's own
                // counterexample must survive the brute oracle's relation
                // path — satisfy every FD of Σ and violate the candidate.
                if let Some(w) = search.find(&resolved, &r) {
                    certified += 1;
                    let rel = tuples_relation(&w.tree, &dtd, &paths).unwrap();
                    for s in sigma.iter() {
                        let (lhs, rhs) = fd_columns(s);
                        assert!(
                            rel.satisfies_fd(&lhs, &rhs).unwrap(),
                            "seed {seed}: counterexample for {fd} violates Σ member {s}"
                        );
                    }
                    let (lhs, rhs) = fd_columns(fd);
                    assert!(
                        !rel.satisfies_fd(&lhs, &rhs).unwrap(),
                        "seed {seed}: counterexample for {fd} does not violate it"
                    );
                }
            }
        }
    }
    assert!(
        instances >= 1000,
        "differential sweep too small: {instances} instances"
    );
    // The sweep must actually exercise both verdicts, or the agreement
    // assertions above are vacuous.
    assert!(
        refuted > 0,
        "no brute-force refutations in {instances} instances"
    );
    assert!(
        certified > 0,
        "no certified counterexamples in {instances} instances"
    );
}
