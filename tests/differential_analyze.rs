//! Differential tests: the static planner (`xnf_core::analyze`) against
//! the real normalizer.
//!
//! `analyze` promises a *byte-exact* prediction: the plan it computes
//! without executing `normalize` must equal the executed step trace —
//! step for step — along with the AP trace, the revised `(D, Σ)`, and
//! the chase/cache counters. When the analysis reports `fuel_exact`,
//! `predicted_fuel` must equal the governed run's tick bill to the tick;
//! otherwise it must land within a 2× band. This suite pins that promise
//! on the fuzz-found oracle corpus, the paper's three specs, the
//! `e22_family` stress family, a generated corpus of 200+ random
//! instances, and the bad-spec corpus (error parity).

use std::path::PathBuf;
use xnf::core::{analyze, normalize, AnalyzeOptions, NormalizeOptions, XmlFdSet};
use xnf::dtd::Dtd;
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};
use xnf_govern::Budget;

/// Runs `normalize` on a governed-but-limitless budget, returning the
/// result and the exact tick bill.
fn normalize_metered(
    dtd: &Dtd,
    sigma: &XmlFdSet,
) -> Result<(xnf::core::NormalizeResult, u64), xnf::core::CoreError> {
    let budget = Budget::builder().build();
    let r = normalize(
        dtd,
        sigma,
        &NormalizeOptions {
            budget: budget.clone(),
            ..NormalizeOptions::default()
        },
    )?;
    assert!(r.exhausted.is_none());
    Ok((r, budget.ticks()))
}

/// Full differential comparison for one spec: when both engines accept,
/// the prediction must be byte-exact; when either rejects, both must
/// reject with the same rendered error. Returns whether the accepting
/// branch was exercised.
fn assert_prediction_matches(dtd: &Dtd, sigma: &XmlFdSet, label: &str) -> bool {
    let a = analyze(dtd, sigma, &AnalyzeOptions::default());
    let n = normalize_metered(dtd, sigma);
    match (a, n) {
        (Ok(a), Ok((r, ticks))) => {
            assert_prediction_exact(&a, &r, ticks, label);
            true
        }
        (Err(ae), Err(ne)) => {
            assert_eq!(format!("{ae}"), format!("{ne}"), "{label}: errors diverged");
            false
        }
        (a, n) => panic!("{label}: verdicts diverged: {a:?} vs {n:?}"),
    }
}

/// The byte-exact comparison for a spec both engines accepted.
fn assert_prediction_exact(
    a: &xnf::core::Analysis,
    r: &xnf::core::NormalizeResult,
    ticks: u64,
    label: &str,
) {
    assert!(
        a.exhausted.is_none(),
        "{label}: ungoverned analyze exhausted"
    );
    assert_eq!(a.plan, r.steps, "{label}: predicted plan diverged");
    assert_eq!(a.ap_trace, r.ap_trace, "{label}: AP trace diverged");
    assert_eq!(
        a.dtd.to_string(),
        r.dtd.to_string(),
        "{label}: revised DTD diverged"
    );
    assert_eq!(
        a.sigma.to_string(),
        r.sigma.to_string(),
        "{label}: revised Σ diverged"
    );
    assert_eq!(a.cost.iterations, r.stats.iterations, "{label}");
    assert_eq!(a.cost.steps, r.steps.len() as u64, "{label}");
    assert_eq!(
        a.cost.chase_runs,
        r.stats.chase.get("chase.runs"),
        "{label}"
    );
    assert_eq!(
        a.cost.cache_hits,
        r.stats.chase.get("cache.hits"),
        "{label}"
    );
    assert_eq!(
        a.cost.cache_misses,
        r.stats.chase.get("cache.misses"),
        "{label}"
    );
    if a.cost.fuel_exact {
        assert_eq!(
            a.cost.predicted_fuel, ticks,
            "{label}: fuel_exact but prediction missed the tick bill"
        );
    } else {
        assert!(
            (ticks / 2..=ticks * 2).contains(&a.cost.predicted_fuel),
            "{label}: inexact fuel estimate {} outside 2x band of {ticks}",
            a.cost.predicted_fuel
        );
    }
}

fn corpus_dir(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("tests");
    p.push(name);
    p
}

/// Every fuzz-found corpus seed: the prediction matches the run exactly.
#[test]
fn oracle_corpus_predictions_are_byte_exact() {
    let dir = corpus_dir("oracle_corpus");
    let mut seeds = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "dtd") {
            continue;
        }
        let fds_path = path.with_extension("fds");
        let dtd_src = std::fs::read_to_string(&path).unwrap();
        let fds_src = std::fs::read_to_string(&fds_path).unwrap();
        let dtd = xnf::dtd::parse_dtd(&dtd_src).unwrap();
        let sigma = XmlFdSet::parse(&fds_src).unwrap();
        assert!(assert_prediction_matches(
            &dtd,
            &sigma,
            &path.display().to_string()
        ));
        seeds += 1;
    }
    assert!(seeds >= 8, "corpus shrank: {seeds} specs");
}

/// The paper's three specs (Examples 1.1, 1.2/5.2 and the part-supplier
/// encoding of Section 5).
#[test]
fn paper_spec_predictions_are_byte_exact() {
    let specs: [(&str, &str); 3] = [
        (
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
            "courses.course.@cno -> courses.course
             courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
             courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S",
        ),
        (
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings
                 key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
            "db.conf.title.S -> db.conf
             db.conf.issue -> db.conf.issue.inproceedings.@year",
        ),
        (
            "<!ELEMENT r (part*)>
             <!ELEMENT part (supplier*)>
             <!ATTLIST part pno CDATA #REQUIRED>
             <!ELEMENT supplier EMPTY>
             <!ATTLIST supplier sno CDATA #REQUIRED city CDATA #REQUIRED>",
            "r.part.@pno -> r.part
             r.part.supplier.@sno -> r.part.supplier.@city",
        ),
    ];
    for (i, (dtd_src, fds_src)) in specs.iter().enumerate() {
        let dtd = xnf::dtd::parse_dtd(dtd_src).unwrap();
        let sigma = XmlFdSet::parse(fds_src).unwrap();
        assert!(assert_prediction_matches(
            &dtd,
            &sigma,
            &format!("paper spec {i}")
        ));
    }
}

/// The E22 stress family stays exact (plan-wise) across sizes, even
/// where the fuel estimate goes inexact.
#[test]
fn e22_family_predictions_are_byte_exact() {
    for k in [1, 2, 4, 8] {
        let (dtd, sigma) = xnf::core::analyze::e22_family(k);
        assert!(assert_prediction_matches(
            &dtd,
            &sigma,
            &format!("e22_family({k})")
        ));
    }
}

/// 200+ generated instances: random simple DTDs × random FD sets.
#[test]
fn generated_corpus_predictions_are_byte_exact() {
    let mut checked = 0u32;
    for seed in 0..80u64 {
        for elements in 3..8 {
            let mut rng = xnf_gen::rng(seed ^ 0xa7a1);
            let dtd = simple_dtd(
                &mut rng,
                &SimpleDtdParams {
                    elements,
                    max_children: 3,
                    max_attrs: 2,
                    text_leaf_prob: 0.4,
                },
            );
            let sigma = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 4,
                    max_lhs: 2,
                },
            );
            if sigma.is_empty() {
                continue;
            }
            if assert_prediction_matches(&dtd, &sigma, &format!("seed {seed}, elements {elements}"))
            {
                checked += 1;
            }
        }
    }
    assert!(checked >= 200, "generated corpus too small: {checked}");
}

/// Error parity on the bad-spec corpus: where `normalize` rejects a
/// spec, `analyze` rejects it with the very same error — the planner
/// must not accept what the engine refuses (or vice versa).
#[test]
fn bad_specs_fail_identically() {
    // A recursive DTD: both reject before doing any work.
    let recursive =
        xnf::dtd::parse_dtd("<!ELEMENT r (a)> <!ELEMENT a (b?)> <!ELEMENT b (a)>").unwrap();
    let sigma = XmlFdSet::new();
    let a_err = analyze(&recursive, &sigma, &AnalyzeOptions::default()).unwrap_err();
    let n_err = normalize(&recursive, &sigma, &NormalizeOptions::default()).unwrap_err();
    assert_eq!(format!("{a_err}"), format!("{n_err}"));

    // Every parseable bad-spec DTD, paired with an FD pool over it: the
    // two engines agree verdict-for-verdict (both accept with identical
    // plans, or both reject with the same rendered error).
    let dir = corpus_dir("bad_specs");
    let mut compared = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "dtd") {
            continue;
        }
        let dtd_src = std::fs::read_to_string(&path).unwrap();
        let Ok(dtd) = xnf::dtd::parse_dtd(&dtd_src) else {
            continue;
        };
        let fds_src = path.with_extension("fds");
        let sigma = match std::fs::read_to_string(&fds_src) {
            Ok(src) => match XmlFdSet::parse(&src) {
                Ok(s) => s,
                Err(_) => continue,
            },
            Err(_) => XmlFdSet::new(),
        };
        assert_prediction_matches(&dtd, &sigma, &path.display().to_string());
        compared += 1;
    }
    assert!(compared >= 3, "bad-spec corpus shrank: {compared} specs");
}
