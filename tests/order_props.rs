//! Property tests for Section 3's subsumption pre-order and unordered
//! equivalence, on randomized documents.

use proptest::prelude::*;
use rand::prelude::IndexedRandom;
use rand::Rng;
use xnf::xml::{embeds_in, unordered_eq, NodeContent, NodeId, XmlTree};
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};

fn gen_doc(seed: u64, elements: usize) -> XmlTree {
    let mut rng = xnf_gen::rng(seed);
    let dtd = simple_dtd(
        &mut rng,
        &SimpleDtdParams {
            elements,
            max_children: 3,
            max_attrs: 2,
            text_leaf_prob: 0.4,
        },
    );
    random_document(
        &dtd,
        &mut rng,
        &DocParams {
            reps: (0, 2),
            value_alphabet: 3,
            max_nodes: 200,
        },
    )
}

/// Copies `doc` with each element child kept with probability ~3/4 —
/// the result is subsumed by the original (children are a sublist, all
/// attributes preserved).
fn prune(doc: &XmlTree, seed: u64) -> XmlTree {
    fn go(src: &XmlTree, dst: &mut XmlTree, s: NodeId, d: NodeId, rng: &mut impl Rng) {
        for (k, v) in src.attrs(s) {
            dst.set_attr(d, k, v);
        }
        match src.content(s) {
            NodeContent::Text(t) => dst.set_text(d, t.clone()),
            NodeContent::Children(cs) => {
                for &c in cs {
                    if rng.random_ratio(3, 4) {
                        let nd = dst.add_child(d, src.label(c));
                        go(src, dst, c, nd, rng);
                    }
                }
            }
        }
    }
    let mut rng = xnf_gen::rng(seed);
    let mut out = XmlTree::new(doc.label(doc.root()));
    let root = out.root();
    go(doc, &mut out, doc.root(), root, &mut rng);
    out
}

/// Copies `doc` with children shuffled at every node — an ≡-equivalent
/// document.
fn shuffle(doc: &XmlTree, seed: u64) -> XmlTree {
    fn go(src: &XmlTree, dst: &mut XmlTree, s: NodeId, d: NodeId, rng: &mut impl Rng) {
        for (k, v) in src.attrs(s) {
            dst.set_attr(d, k, v);
        }
        match src.content(s) {
            NodeContent::Text(t) => dst.set_text(d, t.clone()),
            NodeContent::Children(cs) => {
                let mut order: Vec<NodeId> = cs.clone();
                for i in (1..order.len()).rev() {
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
                for c in order {
                    let nd = dst.add_child(d, src.label(c));
                    go(src, dst, c, nd, rng);
                }
            }
        }
    }
    let mut rng = xnf_gen::rng(seed);
    let mut out = XmlTree::new(doc.label(doc.root()));
    let root = out.root();
    go(doc, &mut out, doc.root(), root, &mut rng);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `⊑` is reflexive; `≡` ⇔ mutual embedding.
    #[test]
    fn embedding_is_reflexive_and_eq_is_mutual(seed in 0u64..10_000, elements in 2usize..8) {
        let doc = gen_doc(seed, elements);
        prop_assert!(embeds_in(&doc, &doc));
        let shuffled = shuffle(&doc, seed ^ 1);
        prop_assert!(unordered_eq(&doc, &shuffled));
        prop_assert!(embeds_in(&doc, &shuffled));
        prop_assert!(embeds_in(&shuffled, &doc));
    }

    /// Pruning produces a document that embeds into the original, and
    /// `⊑` is transitive along a pruning chain.
    #[test]
    fn pruning_embeds_and_composes(seed in 0u64..10_000, elements in 2usize..8) {
        let doc = gen_doc(seed, elements);
        let once = prune(&doc, seed ^ 2);
        let twice = prune(&once, seed ^ 3);
        prop_assert!(embeds_in(&once, &doc));
        prop_assert!(embeds_in(&twice, &once));
        prop_assert!(embeds_in(&twice, &doc), "transitivity along the chain");
        // Equivalence only when nothing was pruned.
        if unordered_eq(&once, &doc) {
            prop_assert_eq!(once.num_nodes(), doc.num_nodes());
        }
    }

    /// A shuffled-then-pruned document still embeds; a document with an
    /// extra attribute never does (exact attribute preservation).
    #[test]
    fn attribute_exactness(seed in 0u64..10_000, elements in 2usize..7) {
        let doc = gen_doc(seed, elements);
        let mut extra = doc.clone();
        // Pick a deterministic node and give it a fresh attribute.
        let nodes = extra.node_ids().collect::<Vec<_>>();
        let mut rng = xnf_gen::rng(seed ^ 4);
        let v = *nodes.choose(&mut rng).unwrap();
        extra.set_attr(v, "zz_extra", "1");
        prop_assert!(!embeds_in(&doc, &extra));
        prop_assert!(!embeds_in(&extra, &doc));
        prop_assert!(!unordered_eq(&doc, &extra));
    }
}
