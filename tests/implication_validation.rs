//! Validation of the implication chase (Theorems 3–5 machinery).
//!
//! Two directions, both machine-checked:
//!
//! * **Soundness** — whenever the chase answers "implied", no sampled
//!   conforming document that satisfies Σ may violate the FD. (The chase
//!   is sound by construction — each rule carries a proof — and this test
//!   would catch any rule bug.)
//! * **Completeness (empirical)** — whenever the chase answers "not
//!   implied" on a simple or disjunctive DTD, the counterexample
//!   constructor must produce a *verified* witness document (`T ⊨ D`,
//!   `T ⊨ Σ`, `T ⊭ φ`). A verified witness is a proof of non-implication,
//!   so together the two answers are certified.

use proptest::prelude::*;
use xnf::core::implication::{CounterexampleSearch, Implication};
use xnf::core::XmlFdSet;
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

fn check_both_directions(dtd: &xnf::dtd::Dtd, seed: u64) -> Result<(), TestCaseError> {
    let mut rng = xnf_gen::rng(seed ^ 0x5eed);
    let sigma = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 3,
            max_lhs: 2,
        },
    );
    let candidates = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    );
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let search = CounterexampleSearch::new(dtd, &paths);

    for fd in candidates.iter() {
        let r = fd.resolve(&paths).unwrap();
        if search.chase().implies(&resolved, &r) {
            // Soundness: sample documents; Σ-satisfying ones must satisfy
            // the implied FD.
            for doc_seed in 0..12u64 {
                let mut doc_rng = xnf_gen::rng(seed.wrapping_mul(31).wrapping_add(doc_seed));
                let doc = random_document(
                    dtd,
                    &mut doc_rng,
                    &DocParams {
                        reps: (0, 2),
                        value_alphabet: 2, // small alphabet → many agreements
                        max_nodes: 300,
                    },
                );
                if doc.num_nodes() >= 300 {
                    continue; // truncated, may not conform
                }
                let Ok(tuples) = xnf::core::tuples_d(&doc, dtd, &paths) else {
                    continue;
                };
                if tuples.len() > 256 {
                    continue;
                }
                if resolved.iter().all(|s| s.check_tuples(&tuples)) {
                    prop_assert!(
                        r.check_tuples(&tuples),
                        "SOUNDNESS BUG: chase claims ({sigma:?}) implies {fd}, \
                         but a sampled document refutes it (seed {seed}/{doc_seed})",
                        sigma = sigma.iter().map(ToString::to_string).collect::<Vec<_>>(),
                    );
                }
            }
        } else {
            // Completeness: a verified witness must exist.
            let witness = search.find(&resolved, &r);
            prop_assert!(
                witness.is_some(),
                "COMPLETENESS GAP: chase refutes {fd} under \
                 {{{}}} but no verified witness was constructed (seed {seed})",
                sigma
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn certified_implication_on_simple_dtds(seed in 0u64..100_000, elements in 3usize..10) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &dtd_params(elements));
        check_both_directions(&dtd, seed)?;
    }

    #[test]
    fn certified_implication_on_disjunctive_dtds(
        seed in 0u64..100_000,
        elements in 3usize..8,
        disjunctions in 1usize..3,
    ) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = disjunctive_dtd(&mut rng, &dtd_params(elements), disjunctions, 2);
        check_both_directions(&dtd, seed)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The implication oracle behaves like a consequence operator:
    /// reflexivity, augmentation, transitivity, and monotonicity in Σ.
    #[test]
    fn implication_is_a_consequence_operator(seed in 0u64..100_000, elements in 3usize..9) {
        use xnf::core::fd::ResolvedFd;
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &dtd_params(elements));
        let paths = dtd.paths().unwrap();
        let sigma = random_fds(&dtd, &mut rng, &FdParams { count: 3, max_lhs: 2 })
            .resolve(&paths)
            .unwrap();
        let chase = xnf::core::Chase::new(&dtd, &paths);
        let all_paths: Vec<_> = paths.iter().collect();

        // Reflexivity: S → p for p ∈ S.
        let fds = random_fds(&dtd, &mut rng, &FdParams { count: 2, max_lhs: 2 })
            .resolve(&paths)
            .unwrap();
        for fd in &fds {
            let refl = ResolvedFd::from_ids(fd.lhs.iter().copied(), [fd.lhs[0]]);
            prop_assert!(chase.implies(&sigma, &refl), "reflexivity");
            // Augmentation: if S → q then S ∪ {x} → q.
            for &q in &fd.rhs {
                let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
                if chase.implies(&sigma, &single) {
                    let extra = all_paths[(seed as usize) % all_paths.len()];
                    let aug = ResolvedFd::from_ids(
                        fd.lhs.iter().copied().chain([extra]),
                        [q],
                    );
                    prop_assert!(chase.implies(&sigma, &aug), "augmentation");
                }
            }
            // Monotonicity in Σ: Σ ⊢ φ stays derivable under a larger Σ.
            for &q in &fd.rhs {
                let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
                if chase.implies(&[], &single) {
                    prop_assert!(chase.implies(&sigma, &single), "Σ-monotonicity");
                }
            }
        }

        // Transitivity — with the null-semantics caveat: Σ ⊢ S → e and
        // {e} → q compose only when S non-null forces e non-null (the
        // premise of the second FD needs a non-⊥ value). Ancestors of an
        // S-path have exactly that guarantee, so the law is tested there.
        // (Unrestricted transitivity is FALSE under Section 4 semantics —
        // the same subtlety behind the step-2 move condition, see
        // DESIGN.md §6.)
        for fd in &fds {
            let ancestors: Vec<_> = fd
                .lhs
                .iter()
                .flat_map(|&l| {
                    let mut chain = Vec::new();
                    let mut cur = Some(l);
                    while let Some(c) = cur {
                        if paths.is_element_path(c) {
                            chain.push(c);
                        }
                        cur = paths.parent(c);
                    }
                    chain
                })
                .collect();
            for &e in ancestors.iter().take(4) {
                let s_to_e = ResolvedFd::from_ids(fd.lhs.iter().copied(), [e]);
                if !chase.implies(&sigma, &s_to_e) {
                    continue;
                }
                for &q in all_paths.iter().take(8) {
                    let e_to_q = ResolvedFd::from_ids([e], [q]);
                    if chase.implies(&sigma, &e_to_q) {
                        let s_to_q = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
                        prop_assert!(
                            chase.implies(&sigma, &s_to_q),
                            "transitivity through a guaranteed-non-null element path"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn paper_implications_are_certified() {
    // Every implication fact the paper states for its running examples,
    // certified in both directions.
    let dtd = xnf::dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .unwrap();
    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).unwrap();
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let search = CounterexampleSearch::new(&dtd, &paths);

    let cases = [
        // (FD3) itself is in Σ⁺.
        (
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S",
            true,
        ),
        // The XNF-violating direction: sno does not determine the node.
        (
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name",
            false,
        ),
        (
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
            false,
        ),
        // Trivial DTD-induced FDs (Section 4's remarks).
        ("courses.course.taken_by.student -> courses.course", true),
        ("courses.course -> courses.course.@cno", true),
        // FD1 makes cno a key.
        ("courses.course.@cno -> courses.course.title.S", true),
        (
            "courses.course.@cno -> courses.course.taken_by.student",
            false,
        ),
    ];
    for (fd_text, expected) in cases {
        let fd: xnf::core::XmlFd = fd_text.parse().unwrap();
        let r = fd.resolve(&paths).unwrap();
        let implied = search.chase().implies(&resolved, &r);
        assert_eq!(implied, expected, "{fd_text}");
        if !implied {
            assert!(
                search.find(&resolved, &r).is_some(),
                "no verified witness for {fd_text}"
            );
        }
    }
}
