//! The BCNF differential suite: the shredding backend's per-table BCNF
//! verdict is cross-validated against the Proposition 4/5 machinery
//! (`is_xnf` / `anomalous_fds`) on the oracle corpus, the paper specs,
//! and 200 freshly generated instances. Zero disagreements are required.
//!
//! The correspondence checked, both sides computed independently:
//!
//! 1. **XNF ⟹ BCNF.** If `(D, Σ)` is in XNF, every table of its shred
//!    schema is in BCNF — a table violation on an XNF spec would be a
//!    derived FD the XNF predicate missed, i.e. a real disagreement.
//! 2. **Normalized outputs agree on both sides.** `normalize(D, Σ)` is
//!    in XNF (Theorem: the algorithm's fixpoint) *and* its shred schema
//!    is all-BCNF; the two verdicts must both be `true`.
//! 3. **Witnesses are genuine.** Every reported table violation maps
//!    back (via `violation_as_xml_fd`) to a well-formed XML FD, and its
//!    spec fails `is_xnf` — a violation on an XNF spec is a false
//!    positive and therefore a disagreement.
//!
//! Anomalies visible inside one table (the paper's `@sno → name.S` and
//! `issue → @year` redundancies) are additionally pinned exactly below:
//! these are the minimized regressions the differential loop produced.

use std::path::PathBuf;
use xnf::core::{compile_schema, is_xnf, normalize, NormalizeOptions, ShredSchema, XmlFdSet};
use xnf::dtd::Dtd;
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};
use xnf_govern::Budget;

const UNLIMITED: &Budget = &Budget::unlimited();
const CORPUS: &[u64] = &[3449, 5195, 6742, 11775, 12710, 17154, 19327, 19683];
const PAPER_SPECS: [&str; 3] = ["university", "dblp", "ebxml"];

fn read_rel(rel: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

fn load_spec(dtd_rel: &str, fds_rel: &str) -> (Dtd, XmlFdSet) {
    let dtd = xnf::dtd::parse_dtd(&read_rel(dtd_rel)).unwrap();
    let sigma = XmlFdSet::parse(&read_rel(fds_rel)).unwrap();
    (dtd, sigma)
}

/// Runs the differential on one spec; returns the rendered disagreement,
/// if any (callers collect them so a sweep reports every find at once).
fn differential(dtd: &Dtd, sigma: &XmlFdSet, label: &str) -> Option<String> {
    let xnf = match is_xnf(dtd, sigma) {
        Ok(v) => v,
        Err(e) => return Some(format!("{label}: is_xnf failed: {e}")),
    };
    let schema = match compile_schema(dtd, sigma, UNLIMITED) {
        Ok(s) => s,
        Err(e) => return Some(format!("{label}: compile_schema failed: {e}")),
    };
    let violations = schema.non_bcnf_tables();
    // Check 1/3: a table violation on an XNF spec is a disagreement, and
    // every violation must round-trip into a well-formed XML FD.
    for (ix, name, fd) in &violations {
        let Some(xfd) = schema.violation_as_xml_fd(*ix, fd) else {
            return Some(format!(
                "{label}: table `{name}` violation {fd} does not map to an XML FD"
            ));
        };
        if xnf {
            return Some(format!(
                "{label}: spec is XNF but table `{name}` is not BCNF ({xfd})"
            ));
        }
    }
    // Check 2: the normalized output must satisfy both predicates. Some
    // generated specs fall outside normalize's domain (FD paths that
    // cannot fold); the input-side checks above still ran for those.
    let Ok(result) = normalize(dtd, sigma, &NormalizeOptions::default()) else {
        return None;
    };
    let out_xnf = match is_xnf(&result.dtd, &result.sigma) {
        Ok(v) => v,
        Err(e) => return Some(format!("{label}: is_xnf(output) failed: {e}")),
    };
    let out_schema = match compile_schema(&result.dtd, &result.sigma, UNLIMITED) {
        Ok(s) => s,
        Err(e) => return Some(format!("{label}: compile_schema(output) failed: {e}")),
    };
    let out_bcnf = out_schema.non_bcnf_tables();
    match (out_xnf, out_bcnf.is_empty()) {
        (true, true) => None,
        (xnf, bcnf) => Some(format!(
            "{label}: normalized output disagrees (is_xnf = {xnf}, tables BCNF = {bcnf}: {:?})",
            out_bcnf
                .iter()
                .map(|(ix, name, fd)| {
                    format!(
                        "{name}: {}",
                        out_schema
                            .violation_as_xml_fd(*ix, fd)
                            .map_or_else(|| fd.to_string(), |x| x.to_string())
                    )
                })
                .collect::<Vec<_>>()
        )),
    }
}

#[test]
fn corpus_and_paper_specs_have_zero_disagreements() {
    let mut disagreements = Vec::new();
    for &seed in CORPUS {
        let (dtd, sigma) = load_spec(
            &format!("tests/oracle_corpus/seed-{seed}.dtd"),
            &format!("tests/oracle_corpus/seed-{seed}.fds"),
        );
        disagreements.extend(differential(&dtd, &sigma, &format!("corpus seed {seed}")));
    }
    for name in PAPER_SPECS {
        let (dtd, sigma) = load_spec(
            &format!("examples/specs/{name}.dtd"),
            &format!("examples/specs/{name}.fds"),
        );
        disagreements.extend(differential(&dtd, &sigma, name));
    }
    assert!(
        disagreements.is_empty(),
        "BCNF differential disagreements:\n{}",
        disagreements.join("\n")
    );
}

#[test]
fn generated_instances_have_zero_disagreements() {
    let mut disagreements = Vec::new();
    let mut checked = 0;
    let mut seed = 0u64;
    while checked < 200 {
        seed += 1;
        let mut rng = xnf_gen::rng(seed ^ 0xbc2f_d1ff);
        let dtd = simple_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements: 6,
                max_children: 3,
                max_attrs: 2,
                text_leaf_prob: 0.4,
            },
        );
        let sigma = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 2,
                max_lhs: 2,
            },
        );
        checked += 1;
        disagreements.extend(differential(
            &dtd,
            &sigma,
            &format!("generated seed {seed}"),
        ));
    }
    assert_eq!(checked, 200);
    assert!(
        disagreements.is_empty(),
        "BCNF differential disagreements over {checked} generated instances:\n{}",
        disagreements.join("\n")
    );
}

/// Minimized pinned regressions: the paper's two flagship redundancies
/// are anomalies *inside a single table*, so the differential sees them
/// from both sides — `is_xnf` is false AND the named table is not BCNF,
/// with the violation rendering back to the exact source FD.
#[test]
fn paper_anomalies_are_visible_as_table_violations() {
    fn violation_for(
        schema: &ShredSchema,
        table: &str,
    ) -> Option<(usize, String, xnf::relational::Fd)> {
        schema
            .non_bcnf_tables()
            .into_iter()
            .find(|(_, name, _)| name == table)
    }

    // University (Figure 1a): @sno → name.S redundifies the student name
    // per enrollment; the `student` table is not BCNF on (sno → name).
    let (dtd, sigma) = load_spec(
        "examples/specs/university.dtd",
        "examples/specs/university.fds",
    );
    assert!(!is_xnf(&dtd, &sigma).unwrap());
    let schema = compile_schema(&dtd, &sigma, UNLIMITED).unwrap();
    let (ix, _, fd) =
        violation_for(&schema, "student").expect("the student table must not be BCNF");
    let xfd = schema.violation_as_xml_fd(ix, &fd).unwrap().to_string();
    assert!(
        xfd.contains("@sno") && xfd.contains("name.S"),
        "unexpected student violation: {xfd}"
    );

    // DBLP (Section 2): issue → @year repeats the year on every paper of
    // an issue; the `inproceedings` table is not BCNF on (parent → year).
    let (dtd, sigma) = load_spec("examples/specs/dblp.dtd", "examples/specs/dblp.fds");
    assert!(!is_xnf(&dtd, &sigma).unwrap());
    let schema = compile_schema(&dtd, &sigma, UNLIMITED).unwrap();
    let (ix, _, fd) =
        violation_for(&schema, "inproceedings").expect("the inproceedings table must not be BCNF");
    let xfd = schema.violation_as_xml_fd(ix, &fd).unwrap().to_string();
    assert!(
        xfd.contains("issue") && xfd.contains("@year"),
        "unexpected inproceedings violation: {xfd}"
    );

    // And after normalization both anomalies are gone, on both sides.
    for name in ["university", "dblp"] {
        let (dtd, sigma) = load_spec(
            &format!("examples/specs/{name}.dtd"),
            &format!("examples/specs/{name}.fds"),
        );
        let out = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        assert!(
            is_xnf(&out.dtd, &out.sigma).unwrap(),
            "{name}: output not XNF"
        );
        let schema = compile_schema(&out.dtd, &out.sigma, UNLIMITED).unwrap();
        assert!(
            schema.non_bcnf_tables().is_empty(),
            "{name}: normalized output has non-BCNF tables"
        );
    }
}
