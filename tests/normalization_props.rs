//! Property tests for the XNF decomposition algorithm (Theorem 2,
//! Propositions 6–8) over randomized simple DTDs and FD sets.

use proptest::prelude::*;
use xnf::core::lossless::verify_lossless;
use xnf::core::{is_xnf, normalize, NormalizeOptions};
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 2 + Proposition 6: the algorithm terminates, the result is
    /// in XNF, and the anomalous-path count strictly decreases.
    #[test]
    fn normalization_terminates_in_xnf(seed in 0u64..100_000, elements in 3usize..9) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &dtd_params(elements));
        let sigma = random_fds(&dtd, &mut rng, &FdParams { count: 3, max_lhs: 2 });
        let result = match normalize(&dtd, &sigma, &NormalizeOptions::default()) {
            Ok(r) => r,
            // Preprocessing may reject FDs that need an impossible fold
            // (e.g. text elements with multiplicity ≠ 1) — a typed error,
            // not a panic.
            Err(xnf::core::CoreError::BadFdPath(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };
        prop_assert!(is_xnf(&result.dtd, &result.sigma).unwrap(), "seed {seed}");
        for w in result.ap_trace.windows(2) {
            prop_assert!(w[1] < w[0], "AP did not strictly decrease: {:?}", result.ap_trace);
        }
        prop_assert_eq!(*result.ap_trace.last().unwrap(), 0);
    }

    /// Proposition 7: the Σ-only variant also terminates in XNF.
    #[test]
    fn sigma_only_variant_reaches_xnf(seed in 0u64..100_000, elements in 3usize..9) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &dtd_params(elements));
        let sigma = random_fds(&dtd, &mut rng, &FdParams { count: 3, max_lhs: 2 });
        let opts = NormalizeOptions { use_implication: false, ..NormalizeOptions::default() };
        let result = match normalize(&dtd, &sigma, &opts) {
            Ok(r) => r,
            Err(xnf::core::CoreError::BadFdPath(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };
        prop_assert!(is_xnf(&result.dtd, &result.sigma).unwrap(), "seed {seed}");
    }

    /// Proposition 8: on documents that satisfy Σ, every normalization is
    /// lossless — forward transform conforms + satisfies Σ', and the
    /// inverse reconstructs the document.
    #[test]
    fn normalization_is_lossless(seed in 0u64..100_000, elements in 3usize..8) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(&mut rng, &dtd_params(elements));
        let sigma = random_fds(&dtd, &mut rng, &FdParams { count: 2, max_lhs: 2 });
        let result = match normalize(&dtd, &sigma, &NormalizeOptions::default()) {
            Ok(r) => r,
            Err(xnf::core::CoreError::BadFdPath(_)) => return Ok(()),
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };
        if result.steps.is_empty() {
            return Ok(()); // already in XNF: nothing to verify
        }
        let paths = dtd.paths().unwrap();
        // Sample documents; check losslessness on the Σ-satisfying ones.
        let mut checked = 0;
        for doc_seed in 0..30u64 {
            let mut doc_rng = xnf_gen::rng(seed.wrapping_mul(17).wrapping_add(doc_seed));
            let doc = random_document(&dtd, &mut doc_rng, &DocParams {
                reps: (0, 2),
                value_alphabet: 2,
                max_nodes: 200,
            });
            if doc.num_nodes() >= 200 {
                continue;
            }
            let Ok(sat) = sigma.satisfied_by(&doc, &dtd, &paths) else { continue };
            if !sat {
                continue;
            }
            match verify_lossless(&dtd, &result, &doc) {
                Ok(report) => {
                    prop_assert!(report.ok(), "seed {seed}/{doc_seed}: {report:?}");
                    checked += 1;
                }
                // A needed value can be ⊥ on partial documents — the
                // documented footnote-1 limitation.
                Err(xnf::core::CoreError::UnrepresentableNull { .. }) => continue,
                Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
            }
            if checked >= 5 {
                break;
            }
        }
    }
}
