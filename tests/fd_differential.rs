//! Differential testing of FD satisfaction: the hash-grouped check on
//! tree tuples (`ResolvedFd::check_tuples`) against the independent
//! pairwise check on the Codd-table view
//! (`Relation::satisfies_fd` over `tuples_relation`). The two share no
//! code path beyond `tuples_D` itself.

use proptest::prelude::*;
use xnf::core::{tuples_d, tuples_relation};
use xnf_gen::doc::{random_document, DocParams};
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tuple_check_matches_codd_table_check(seed in 0u64..100_000, elements in 2usize..8) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements,
                max_children: 3,
                max_attrs: 2,
                text_leaf_prob: 0.5,
            },
        );
        let doc = random_document(
            &dtd,
            &mut rng,
            &DocParams { reps: (0, 2), value_alphabet: 2, max_nodes: 300 },
        );
        prop_assume!(doc.num_nodes() < 300);
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 256);
        let rel = tuples_relation(&doc, &dtd, &paths).unwrap();
        prop_assert_eq!(rel.len(), tuples.len());

        let fds = random_fds(&dtd, &mut rng, &FdParams { count: 6, max_lhs: 2 });
        for fd in fds.iter() {
            let fast = fd.resolve(&paths).unwrap().check_tuples(&tuples);
            let lhs: Vec<String> = fd.lhs().iter().map(ToString::to_string).collect();
            let rhs: Vec<String> = fd.rhs().iter().map(ToString::to_string).collect();
            let slow = rel.satisfies_fd(&lhs, &rhs).unwrap();
            prop_assert_eq!(fast, slow, "engines disagree on {} (seed {})", fd, seed);
        }
    }

    /// `XmlFd::satisfied_by` (the public entry point) agrees with both.
    #[test]
    fn public_satisfaction_entry_point_agrees(seed in 0u64..100_000) {
        let mut rng = xnf_gen::rng(seed);
        let dtd = simple_dtd(
            &mut rng,
            &SimpleDtdParams { elements: 6, max_children: 3, max_attrs: 2, text_leaf_prob: 0.5 },
        );
        let doc = random_document(
            &dtd,
            &mut rng,
            &DocParams { reps: (0, 2), value_alphabet: 2, max_nodes: 200 },
        );
        prop_assume!(doc.num_nodes() < 200);
        let paths = dtd.paths().unwrap();
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        prop_assume!(tuples.len() <= 128);
        let fds = random_fds(&dtd, &mut rng, &FdParams { count: 4, max_lhs: 2 });
        for fd in fds.iter() {
            prop_assert_eq!(
                fd.satisfied_by(&doc, &dtd, &paths).unwrap(),
                fd.resolve(&paths).unwrap().check_tuples(&tuples)
            );
        }
    }
}
