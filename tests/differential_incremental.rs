//! Differential tests for the incremental implication cache.
//!
//! [`IncrementalCache`] transfers chase verdicts across `(D, Σ)` edits
//! when the recorded [`RunTrace`] footprint proves the edit invisible to
//! the run. The transfer must be *exact*: after every edit in a
//! generated sequence, each cached answer must equal a from-scratch
//! chase on the edited spec — verdict for verdict, over corpora of
//! random DTDs, FD pools and edit scripts.

use xnf::core::implication::Implication;
use xnf::core::{Chase, DtdDelta, IncrementalCache, SigmaDelta, XmlFd, XmlFdSet};
use xnf::dtd::Dtd;
use xnf_gen::dtd::{simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

fn from_scratch(dtd: &Dtd, sigma: &XmlFdSet, queries: &[XmlFd]) -> Vec<bool> {
    let paths = dtd.paths().unwrap();
    let resolved = sigma.resolve(&paths).unwrap();
    let chase = Chase::new(dtd, &paths);
    queries
        .iter()
        .map(|f| chase.implies(&resolved, &f.resolve(&paths).unwrap()))
        .collect()
}

/// Walks an edit script over Σ subsets drawn from one FD pool: each step
/// adds or removes one FD. After every step the incremental answers must
/// match the from-scratch chase for every query.
#[test]
fn sigma_edit_sequences_match_from_scratch() {
    let mut steps_checked = 0u32;
    let mut transfers = 0u64;
    for seed in 0..60u64 {
        for elements in 3..7 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            let pool: Vec<XmlFd> = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 6,
                    max_lhs: 2,
                },
            )
            .iter()
            .cloned()
            .collect();
            let queries: Vec<XmlFd> = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 6,
                    max_lhs: 2,
                },
            )
            .iter()
            .cloned()
            .collect();
            if pool.len() < 4 || queries.is_empty() {
                continue;
            }
            // Membership masks per step: grow, shrink, churn.
            let scripts: [&[usize]; 6] = [
                &[0, 1, 2],
                &[0, 1, 2, 3],
                &[0, 2, 3],
                &[0, 2],
                &[0, 2, 1],
                &[2, 1],
            ];
            let sigma_at = |picks: &[usize]| {
                XmlFdSet::from_fds(picks.iter().filter_map(|&i| pool.get(i).cloned()))
            };
            let mut sigma = sigma_at(scripts[0]);
            let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
            assert_eq!(
                cache.implies_all(&queries).unwrap(),
                from_scratch(&dtd, &sigma, &queries),
                "seed {seed}: initial fill diverged"
            );
            for picks in &scripts[1..] {
                let next = sigma_at(picks);
                let report = cache
                    .apply_delta(
                        &DtdDelta::unchanged(&dtd),
                        &SigmaDelta::between(&sigma, &next),
                    )
                    .unwrap();
                transfers += report.kept as u64;
                sigma = next;
                assert_eq!(
                    cache.implies_all(&queries).unwrap(),
                    from_scratch(&dtd, &sigma, &queries),
                    "seed {seed}, elements {elements}, step {picks:?}: incremental diverged"
                );
                steps_checked += 1;
            }
        }
    }
    assert!(steps_checked > 400, "corpus too small: {steps_checked}");
    // The point of the cache: a meaningful share of verdicts transfers
    // instead of re-chasing.
    assert!(transfers > 500, "no incrementality: {transfers} transfers");
}

/// DTD edits: add an attribute to some element (a declaration change
/// that dirties one fragment). Entries off the fragment must transfer;
/// all answers must match from-scratch.
#[test]
fn dtd_edit_sequences_match_from_scratch() {
    let mut steps_checked = 0u32;
    for seed in 0..60u64 {
        for elements in 4..8 {
            let mut rng = xnf_gen::rng(seed ^ 0xd7d);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            let sigma = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 4,
                    max_lhs: 2,
                },
            );
            let queries: Vec<XmlFd> = random_fds(
                &dtd,
                &mut rng,
                &FdParams {
                    count: 6,
                    max_lhs: 2,
                },
            )
            .iter()
            .cloned()
            .collect();
            if queries.is_empty() {
                continue;
            }
            let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
            cache.implies_all(&queries).unwrap();
            // Edit every element in turn; each is one delta step.
            let mut current = dtd.clone();
            for id in dtd.elements() {
                let mut next = current.clone();
                let name = next.fresh_attr_name(id, "zz");
                next.add_attribute(id, &name).unwrap();
                let delta = DtdDelta::between(&current, &next);
                // A pure attribute add is classified at attribute
                // granularity: the element's structure is unchanged.
                assert!(delta.changed.is_empty());
                assert!(!delta.attrs_changed.is_empty());
                cache
                    .apply_delta(&delta, &SigmaDelta::unchanged(&sigma))
                    .unwrap();
                current = next;
                assert_eq!(
                    cache.implies_all(&queries).unwrap(),
                    from_scratch(&current, &sigma, &queries),
                    "seed {seed}, elements {elements}, edit {:?}: incremental diverged",
                    dtd.name(id)
                );
                steps_checked += 1;
            }
        }
    }
    assert!(steps_checked > 500, "corpus too small: {steps_checked}");
}

/// The identity delta transfers everything: zero re-chasing.
#[test]
fn identity_delta_keeps_every_entry() {
    let mut rng = xnf_gen::rng(7);
    let dtd = simple_dtd(&mut rng, &dtd_params(5));
    let sigma = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    );
    let queries: Vec<XmlFd> = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 8,
            max_lhs: 2,
        },
    )
    .iter()
    .cloned()
    .collect();
    let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
    cache.implies_all(&queries).unwrap();
    let filled = cache.len();
    assert!(filled > 0);
    let report = cache
        .apply_delta(&DtdDelta::unchanged(&dtd), &SigmaDelta::unchanged(&sigma))
        .unwrap();
    assert_eq!(report.kept, filled);
    assert_eq!(report.invalidated, 0);
    assert!(!report.order_flush);
}
