//! Differential tests for the sharded anomalous-FD search.
//!
//! The shard plan and the work-stealing pool are pure scheduling: every
//! `(shard count, thread count)` configuration must produce output
//! byte-identical to the sequential sweep — the per-candidate verdicts
//! are independent pure implication queries and the merge restores
//! enumeration order before the canonical sort. These tests pin that
//! over a randomized corpus and on the paper's running examples.

use xnf::core::{anomalous_fds, anomalous_fds_sharded, normalize, NormalizeOptions, XmlFdSet};
use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

// Miri interprets rather than compiles — two to three orders of
// magnitude slower than native. Scope the randomized corpora down so
// the whole suite stays inside CI's ~10-minute Miri window while still
// crossing every (shard count, thread count) configuration; native runs
// keep the full sweep.
#[cfg(miri)]
const SIMPLE_SEEDS: u64 = 2;
#[cfg(not(miri))]
const SIMPLE_SEEDS: u64 = 120;
#[cfg(miri)]
const DISJUNCTIVE_SEEDS: u64 = 2;
#[cfg(not(miri))]
const DISJUNCTIVE_SEEDS: u64 = 80;
#[cfg(miri)]
const MIN_WITH_VIOLATIONS: u32 = 1;
#[cfg(not(miri))]
const MIN_WITH_VIOLATIONS: u32 = 50;

fn dtd_params(elements: usize) -> SimpleDtdParams {
    SimpleDtdParams {
        elements,
        max_children: 3,
        max_attrs: 2,
        text_leaf_prob: 0.4,
    }
}

fn check_sharded_matches_sequential(dtd: &xnf::dtd::Dtd, seed: u64) -> bool {
    let mut rng = xnf_gen::rng(seed ^ 0x54a2d);
    let sigma = random_fds(
        dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    );
    let baseline = anomalous_fds(dtd, &sigma).unwrap();
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let got = anomalous_fds_sharded(dtd, &sigma, shards, threads).unwrap();
            assert_eq!(
                got, baseline,
                "seed {seed}, shards {shards}, threads {threads}: violations diverged"
            );
        }
    }
    !baseline.is_empty()
}

#[test]
fn sharded_matches_sequential_simple_corpus() {
    let mut with_violations = 0u32;
    for seed in 0..SIMPLE_SEEDS {
        for elements in 3..8 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = simple_dtd(&mut rng, &dtd_params(elements));
            if check_sharded_matches_sequential(&dtd, seed) {
                with_violations += 1;
            }
        }
    }
    // The corpus must exercise the non-trivial branch, not only empty
    // violation sets.
    assert!(
        with_violations >= MIN_WITH_VIOLATIONS,
        "corpus too tame: {with_violations}"
    );
}

#[test]
fn sharded_matches_sequential_disjunctive_corpus() {
    for seed in 0..DISJUNCTIVE_SEEDS {
        for elements in 3..7 {
            let mut rng = xnf_gen::rng(seed);
            let dtd = disjunctive_dtd(&mut rng, &dtd_params(elements), 2, 2);
            check_sharded_matches_sequential(&dtd, seed);
        }
    }
}

const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>";

const DBLP_DTD: &str = "<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings
    key CDATA #REQUIRED
    pages CDATA #REQUIRED
    year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>";

#[test]
fn paper_examples_identical_across_shard_and_thread_counts() {
    use xnf::core::fd::{DBLP_FDS, UNIVERSITY_FDS};
    for (dtd_text, fds) in [(UNIVERSITY_DTD, UNIVERSITY_FDS), (DBLP_DTD, DBLP_FDS)] {
        let dtd = xnf::dtd::parse_dtd(dtd_text).unwrap();
        let sigma = XmlFdSet::parse(fds).unwrap();
        let baseline = anomalous_fds(&dtd, &sigma).unwrap();
        assert!(!baseline.is_empty(), "paper examples violate XNF");
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                assert_eq!(
                    anomalous_fds_sharded(&dtd, &sigma, shards, threads).unwrap(),
                    baseline
                );
            }
        }
    }
}

/// The normalization loop now routes *every* run — including
/// `threads == 1` — through the shard driver; whole-run outputs must
/// stay byte-identical across thread counts end to end.
#[test]
fn normalize_through_shard_driver_is_reproducible() {
    use xnf::core::fd::UNIVERSITY_FDS;
    let dtd = xnf::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
    let render = |threads: usize| {
        let r = normalize(
            &dtd,
            &sigma,
            &NormalizeOptions {
                threads,
                ..NormalizeOptions::default()
            },
        )
        .unwrap();
        format!("{}\n{}\n{:?}", r.dtd, r.sigma, r.steps)
    };
    let base = render(1);
    for threads in [0, 2, 4, 8] {
        assert_eq!(render(threads), base, "threads {threads}");
    }
}
