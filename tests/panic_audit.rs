//! Panic-surface audit for the library crates.
//!
//! Walks every `crates/*/src/**/*.rs` file, strips `#[cfg(test)]` blocks
//! and comments, and counts the remaining `.unwrap()` / `panic!(` sites.
//! Each file's count must match the whitelist below exactly — a new
//! panic site fails this test until it is either converted to a `Result`
//! or consciously whitelisted with a justification.
//!
//! The audit of `crates/dtd/src/parse.rs` (this PR) is the model: its
//! remaining `expect`s guard scanner invariants (`pos <= len` is
//! maintained by every advance; name bytes are checked ASCII before
//! slicing) and are unreachable from malformed *input* — bad input flows
//! through `DtdError::syntax` with a line/column span instead.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Allowed non-test `.unwrap()` / `panic!(` sites per file, with why.
/// Paths are relative to the workspace root, `/`-separated.
fn whitelist() -> BTreeMap<&'static str, usize> {
    BTreeMap::from(WHITELIST)
}

const WHITELIST: [(&str, usize); 1] = [
    // `XmlTree::add_child` / `set_text` panic on mixed-content misuse —
    // a documented `# Panics` API contract (the paper's data model,
    // Definition 2, has no mixed content; builders uphold it by
    // construction). Returning `Result` here would push an impossible
    // error branch through every tree constructor.
    ("crates/xml/src/tree.rs", 2),
];

fn main_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = std::fs::read_dir(root.join("crates")).expect("crates/ exists");
    for krate in crates {
        let src = krate.expect("readable dir entry").path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out);
        }
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable src dir") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            // Binaries (`src/bin/`) are entry points where aborting on a
            // broken invariant is the correct behavior; the audit covers
            // library surfaces.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Removes `//…` comments, string literal *contents*, and every
/// `#[cfg(test)]`-gated item (attribute through its brace-matched block).
fn strip_tests_and_comments(src: &str) -> String {
    let no_comments = strip_comments_and_strings(src);
    let mut out = String::with_capacity(no_comments.len());
    let mut rest = no_comments.as_str();
    while let Some(at) = rest.find("#[cfg(test)]") {
        out.push_str(&rest[..at]);
        let after = &rest[at..];
        match skip_item(after) {
            Some(end) => rest = &after[end..],
            None => {
                // Unterminated block: drop the remainder (audit stays
                // conservative — nothing after it is counted, but the
                // repo has no such file).
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// Byte length of the item that follows a `#[cfg(test)]` attribute: up to
/// and including its first brace-matched `{ … }` block.
fn skip_item(s: &str) -> Option<usize> {
    let open = s.find('{')?;
    let mut depth = 0usize;
    for (i, b) in s[open..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Blanks out `//` line comments and the contents of `"…"` string and
/// `'x'` char literals so brace matching and pattern counting see code
/// only. (No raw strings or nested block comments in this codebase; block
/// comments are blanked too.)
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                out.push(b'"');
                i += 1;
            }
            b'\'' => {
                // Char literal or lifetime; a literal closes within a few
                // bytes (`'a'`, `'\n'`, `'\u{1}'`), a lifetime has no
                // closing quote before a non-ident byte.
                let close = b[i + 1..]
                    .iter()
                    .take(12)
                    .position(|&c| c == b'\'')
                    .map(|p| i + 1 + p);
                if let Some(close) = close {
                    out.push(b'\'');
                    out.push(b'\'');
                    i = close + 1;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn count_panic_sites(code: &str) -> usize {
    let unwraps = code.matches(".unwrap()").count();
    let panics = code.matches("panic!(").count();
    unwraps + panics
}

#[test]
fn library_crates_have_no_unwhitelisted_panic_sites() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let whitelist = whitelist();
    let mut violations = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for path in main_sources(root) {
        let rel = path
            .strip_prefix(root)
            .expect("path is under the workspace root")
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path).expect("source file is UTF-8");
        let count = count_panic_sites(&strip_tests_and_comments(&src));
        seen.insert(rel.clone());
        let allowed = whitelist.get(rel.as_str()).copied().unwrap_or(0);
        if count != allowed {
            violations.push(format!(
                "  {rel}: {count} site(s), whitelist allows {allowed}"
            ));
        }
    }
    for stale in whitelist.keys().filter(|k| !seen.contains(**k)) {
        violations.push(format!("  {stale}: whitelisted but no longer exists"));
    }
    assert!(
        violations.is_empty(),
        "panic-site audit failed (counts are non-test `.unwrap()` + `panic!(`):\n{}\n\
         Convert the new sites to `Result`s, or whitelist them with a justification.",
        violations.join("\n")
    );
}

/// The CLI crate is held to a stricter bar than the `.unwrap()`/`panic!`
/// audit above: `run` returns `Result` end to end (formatting errors
/// flow through `From<std::fmt::Error>`), so not even `.expect(` is
/// allowed outside tests. This pins the conversion of the historical
/// `.expect("string write")` sites and keeps new ones out.
#[test]
fn cli_crate_has_no_expect_sites() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs(&root.join("crates/cli/src"), &mut files);
    assert!(!files.is_empty(), "crates/cli/src has moved");
    let mut violations = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(&path).expect("source file is UTF-8");
        let count = strip_tests_and_comments(&src).matches(".expect(").count();
        if count != 0 {
            violations.push(format!("  {}: {count} `.expect(` site(s)", path.display()));
        }
    }
    assert!(
        violations.is_empty(),
        "the CLI must stay expect-free outside tests (return a CliError instead):\n{}",
        violations.join("\n")
    );
}

#[test]
fn stripper_removes_test_modules_and_comments() {
    let src = r#"
        fn real() { val.unwrap(); } // .unwrap() in a comment
        const S: &str = "panic!(not code)";
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { x.unwrap(); panic!("boom {}", "}"); }
        }
        fn also_real() { panic!("bad"); }
    "#;
    assert_eq!(count_panic_sites(&strip_tests_and_comments(src)), 2);
}
