//! Checkpoint-coverage lint: the checkpoint sites named in the source
//! tree versus the sites a governed pipeline actually visits.
//!
//! Every hot loop in the engine charges its [`Budget`] through a named
//! checkpoint site, and the observability/fault-injection layers key on
//! those names (`xnf_checkpoint_visits_total{site="…"}`, targeted
//! [`FaultPlan`]s). A typo'd or renamed site silently breaks both. This
//! suite scans `crates/*/src` for `checkpoint("…")` literals — the
//! static site set — then drives representative governed runs and
//! cross-checks [`Budget::site_ordinals`] against it:
//!
//! 1. every site visited at runtime is declared in the source scan
//!    (no dynamically-built names sneak past grep-ability), and
//! 2. the engine's known hot loops — the normalize fixpoint, the chase
//!    saturation, the cache, the sharded search, the `analyze.*` sites
//!    of the static planner, and the `shred.*` sites of the relational
//!    backend — are all actually visited.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use xnf::core::{analyze, normalize, AnalyzeOptions, NormalizeOptions, XmlFdSet};
use xnf_govern::Budget;

const UNIVERSITY_DTD: &str = include_str!("../examples/specs/university.dtd");
const UNIVERSITY_FDS: &str = include_str!("../examples/specs/university.fds");

/// The hot-loop sites the governed pipeline must visit on the
/// university spec. Keep this list in sync with new engine loops: a
/// site added here without a `checkpoint("…")` in the source fails
/// check 1; a loop added to the engine without a checkpoint will not
/// appear in `site_ordinals` and should be added here.
const REQUIRED_HOT_LOOPS: [&str; 17] = [
    "shred.table",
    "shred.fd",
    "shred.row",
    "shred.rebuild",
    "dtd.parse.decl",
    "dtd.parse.atom",
    "normalize.iteration",
    "normalize.guard",
    "normalize.apply",
    "xnf.candidate",
    "chase.shard",
    "chase.merge",
    "chase.run",
    "chase.saturate.fd",
    "chase.saturate.queue",
    "cache.lookup",
    "analyze.iteration",
];

/// `analyze`-only sites, asserted separately so a regression in the
/// static planner's metering reads as its own failure.
const REQUIRED_ANALYZE_SITES: [&str; 2] = ["analyze.iteration", "analyze.cover"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans every `crates/*/src` tree for `checkpoint("<site>")` string
/// literals. Test-module literals (`test.fuel`, single letters) are
/// kept — they only ever widen the allowed set.
fn static_sites() -> BTreeSet<String> {
    let crates = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&crates).expect("crates/ exists") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files);
        }
    }
    assert!(files.len() > 10, "source scan went wrong: {files:?}");
    let mut sites = BTreeSet::new();
    for file in files {
        let text = std::fs::read_to_string(&file).expect("readable source");
        for (_, rest) in text
            .match_indices("checkpoint(\"")
            .map(|(i, m)| (i, &text[i + m.len()..]))
        {
            let literal = rest.split('"').next().expect("terminated literal");
            sites.insert(literal.to_string());
        }
    }
    sites
}

/// Drives the governed surface on the university spec: DTD parse,
/// static analysis, normalization, and the predictive lint tier, all on
/// one budget.
fn visited_sites() -> Vec<(&'static str, u64)> {
    let budget = Budget::builder().build();
    let dtd = xnf_dtd::parse_dtd_governed(UNIVERSITY_DTD, xnf_dtd::ParseLimits::default(), &budget)
        .expect("university DTD parses");
    let sigma = XmlFdSet::parse(UNIVERSITY_FDS).expect("university FDs parse");
    let a = analyze(
        &dtd,
        &sigma,
        &AnalyzeOptions {
            budget: budget.clone(),
            ..AnalyzeOptions::default()
        },
    )
    .expect("analysis succeeds");
    assert!(a.exhausted.is_none());
    let r = normalize(
        &dtd,
        &sigma,
        &NormalizeOptions {
            budget: budget.clone(),
            ..NormalizeOptions::default()
        },
    )
    .expect("normalization succeeds");
    assert!(r.exhausted.is_none());
    xnf_lint::lint_spec_predictive(UNIVERSITY_DTD, UNIVERSITY_FDS, &budget)
        .expect("predictive lint completes");
    // The shredding backend (sites `shred.*`): compile, shred a
    // conforming document, rebuild it.
    let schema = xnf_core::compile_schema(&dtd, &sigma, &budget).expect("schema compiles");
    let doc = xnf_gen::doc::university_document(2, 2, 3, 2);
    let rows = xnf_core::shred_document(&schema, &doc, &budget).expect("document shreds");
    xnf_core::unshred_document(&schema, &rows, &budget).expect("rows rebuild");
    budget.site_ordinals()
}

#[test]
fn every_visited_site_is_declared_in_the_source() {
    let declared = static_sites();
    for (site, ordinal) in visited_sites() {
        assert!(
            declared.contains(site),
            "site `{site}` (first visit at tick {ordinal}) is charged at runtime \
             but no `checkpoint(\"{site}\")` literal exists under crates/*/src — \
             checkpoint names must stay grep-able"
        );
    }
}

#[test]
fn hot_loops_are_checkpointed_and_visited() {
    let declared = static_sites();
    let visited: BTreeSet<&str> = visited_sites().into_iter().map(|(s, _)| s).collect();
    for site in REQUIRED_HOT_LOOPS {
        assert!(
            declared.contains(site),
            "hot loop `{site}` lost its checkpoint literal"
        );
        assert!(
            visited.contains(site),
            "hot loop `{site}` was never visited by the governed pipeline"
        );
    }
    for site in REQUIRED_ANALYZE_SITES {
        assert!(
            visited.contains(site),
            "static planner site `{site}` was never visited — analyze stopped metering itself"
        );
    }
}

#[test]
fn visited_site_names_follow_the_dotted_convention() {
    for (site, _) in visited_sites() {
        assert!(
            site.split('.').count() >= 2
                && site
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
            "site `{site}` breaks the `layer.loop[.detail]` naming convention"
        );
    }
}
