//! End-to-end reproduction of the paper's worked examples, spanning all
//! crates (experiment index E1, E2, E6 in DESIGN.md).

use xnf::core::lossless::{restore_document, transform_document, verify_lossless};
use xnf::core::{
    anomalous_fds, is_xnf, normalize, trees_d, tuples_d, NormalizeOptions, Step, XmlFdSet,
};

const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>";

const FIGURE_1A: &str = r#"<courses>
  <course cno="csc200">
    <title>Automata Theory</title>
    <taken_by>
      <student sno="st1"><name>Deere</name><grade>A+</grade></student>
      <student sno="st2"><name>Smith</name><grade>B-</grade></student>
    </taken_by>
  </course>
  <course cno="mat100">
    <title>Calculus I</title>
    <taken_by>
      <student sno="st1"><name>Deere</name><grade>A-</grade></student>
      <student sno="st3"><name>Smith</name><grade>B+</grade></student>
    </taken_by>
  </course>
</courses>"#;

const DBLP_DTD: &str = "<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>";

#[test]
fn e1_university_full_pipeline() {
    let dtd = xnf::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let doc = xnf::xml::parse(FIGURE_1A).unwrap();
    assert!(xnf::xml::conforms(&doc, &dtd).is_ok());

    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).unwrap();
    let paths = dtd.paths().unwrap();
    assert!(sigma.satisfied_by(&doc, &dtd, &paths).unwrap());

    // Not in XNF; exactly one anomalous FD (FD3).
    assert!(!is_xnf(&dtd, &sigma).unwrap());
    let violations = anomalous_fds(&dtd, &sigma).unwrap();
    assert_eq!(violations.len(), 1);

    // Normalize: fold name.S, then create the info structure.
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
    assert!(is_xnf(&result.dtd, &result.sigma).unwrap());
    assert!(matches!(result.steps[0], Step::FoldText { .. }));
    assert!(matches!(result.steps[1], Step::CreateElement { .. }));

    // Documents transform losslessly; the info grouping matches
    // Figure 1(b) (Deere: {st1}; Smith: {st2, st3}).
    let report = verify_lossless(&dtd, &result, &doc).unwrap();
    assert!(report.ok());
    let transformed = transform_document(&dtd, &result, &doc).unwrap();
    let infos = transformed.children_labelled(transformed.root(), "info");
    assert_eq!(infos.len(), 2);
    let restored = restore_document(&result, &transformed).unwrap();
    assert!(xnf::xml::unordered_eq(&restored, &doc));
}

#[test]
fn e2_tree_tuples_of_figure_1a() {
    let dtd = xnf::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let doc = xnf::xml::parse(FIGURE_1A).unwrap();
    let paths = dtd.paths().unwrap();
    let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
    assert_eq!(tuples.len(), 4, "2 courses × 2 students");
    // Theorem 1: the document is reconstructible from its tuples.
    let rebuilt = trees_d(&tuples, &paths).unwrap();
    assert!(xnf::xml::unordered_eq(&rebuilt, &doc));
    // Figure 2: the tuple for (csc200, st1) carries the expected values.
    let cno = paths.resolve_str("courses.course.@cno").unwrap();
    let sno = paths
        .resolve_str("courses.course.taken_by.student.@sno")
        .unwrap();
    let name_s = paths
        .resolve_str("courses.course.taken_by.student.name.S")
        .unwrap();
    let grade_s = paths
        .resolve_str("courses.course.taken_by.student.grade.S")
        .unwrap();
    let fig2 = tuples
        .iter()
        .find(|t| {
            t.get(cno) == &xnf::relational::Value::str("csc200")
                && t.get(sno) == &xnf::relational::Value::str("st1")
        })
        .expect("the Figure 2 tuple exists");
    assert_eq!(fig2.get(name_s), &xnf::relational::Value::str("Deere"));
    assert_eq!(fig2.get(grade_s), &xnf::relational::Value::str("A+"));
}

#[test]
fn e6_dblp_full_pipeline() {
    let dtd = xnf::dtd::parse_dtd(DBLP_DTD).unwrap();
    let sigma = XmlFdSet::parse(xnf::core::fd::DBLP_FDS).unwrap();
    assert!(!is_xnf(&dtd, &sigma).unwrap());
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
    // Exactly the paper's fix: one attribute move, revised ATTLISTs.
    assert_eq!(result.steps.len(), 1);
    let issue = result.dtd.elem_id("issue").unwrap();
    assert_eq!(result.dtd.attrs(issue).collect::<Vec<_>>(), vec!["year"]);
    let inproc = result.dtd.elem_id("inproceedings").unwrap();
    assert_eq!(
        result.dtd.attrs(inproc).collect::<Vec<_>>(),
        vec!["key", "pages"]
    );
    assert!(is_xnf(&result.dtd, &result.sigma).unwrap());

    // Losslessness on a scaled synthetic DBLP corpus.
    for (confs, issues, papers) in [(1, 1, 1), (2, 3, 4), (5, 2, 6)] {
        let doc = xnf_gen::doc::dblp_document(confs, issues, papers);
        let report = verify_lossless(&dtd, &result, &doc).unwrap();
        assert!(report.ok(), "confs={confs} issues={issues} papers={papers}");
    }
}

#[test]
fn e1_university_scaled_losslessness() {
    let dtd = xnf::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).unwrap();
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
    let paths = dtd.paths().unwrap();
    for (courses, students, pool, names) in [(1, 1, 1, 1), (4, 3, 6, 2), (8, 5, 10, 4)] {
        let doc = xnf_gen::doc::university_document(courses, students, pool, names);
        assert!(sigma.satisfied_by(&doc, &dtd, &paths).unwrap());
        let report = verify_lossless(&dtd, &result, &doc).unwrap();
        assert!(
            report.ok(),
            "{courses}/{students}/{pool}/{names}: {report:?}"
        );
    }
}

#[test]
fn sigma_only_variant_is_lossless_too() {
    // Proposition 7's simplified algorithm on the university example.
    let dtd = xnf::dtd::parse_dtd(UNIVERSITY_DTD).unwrap();
    let sigma = XmlFdSet::parse(xnf::core::fd::UNIVERSITY_FDS).unwrap();
    let opts = NormalizeOptions {
        use_implication: false,
        ..NormalizeOptions::default()
    };
    let result = normalize(&dtd, &sigma, &opts).unwrap();
    assert!(is_xnf(&result.dtd, &result.sigma).unwrap());
    let doc = xnf::xml::parse(FIGURE_1A).unwrap();
    let report = verify_lossless(&dtd, &result, &doc).unwrap();
    assert!(report.ok(), "{report:?}");
}
