//! Property tests for the DTD substrate: the two membership engines
//! (Thompson NFA vs Brzozowski derivatives) as differential oracles, and
//! soundness of the Section 7 simplicity classification.

use proptest::prelude::*;
use xnf_dtd::classify::{is_trivial, simple_multiplicities, Multiplicity};
use xnf_dtd::derivative;
use xnf_dtd::nfa::Matcher;
use xnf_dtd::Regex;

/// A recursive strategy for random content-model regexes over a small
/// alphabet.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Regex::elem),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::seq),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::opt),
            inner.prop_map(Regex::plus),
        ]
    })
}

fn arb_word() -> impl Strategy<Value = Vec<&'static str>> {
    prop::collection::vec(prop_oneof![Just("a"), Just("b"), Just("c")], 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The NFA and the derivative engine agree on every (regex, word).
    #[test]
    fn nfa_and_derivatives_agree(re in arb_regex(), word in arb_word()) {
        let nfa = Matcher::new(&re);
        prop_assert_eq!(
            nfa.matches(word.iter().copied()),
            derivative::matches(&re, word.iter().copied()),
            "engines disagree on {} vs {:?}", re, word
        );
    }

    /// `simplified()` preserves the language (checked via the NFA on
    /// random words).
    #[test]
    fn simplified_preserves_language(re in arb_regex(), word in arb_word()) {
        let s = re.simplified();
        prop_assert_eq!(
            Matcher::new(&re).matches(word.iter().copied()),
            Matcher::new(&s).matches(word.iter().copied()),
            "simplification changed the language: {} vs {}", re, s
        );
    }

    /// Display → parse preserves the language for *simplified*
    /// expressions (DTD syntax has no ε literal inside expressions; the
    /// simplifier rewrites interior ε into `?`, matching how real DTDs
    /// are written).
    #[test]
    fn regex_display_parse_roundtrip(raw in arb_regex()) {
        let re = raw.simplified();
        let text = re.to_string(); // "EMPTY" for ε, content-model syntax otherwise
        let cm = xnf_dtd::parse::parse_content_model(&text).unwrap();
        let reparsed = cm.as_regex().cloned().unwrap_or(Regex::Epsilon);
        // Compare languages on a deterministic word set rather than ASTs
        // (parentheses flattening may regroup).
        for word in [
            vec![], vec!["a"], vec!["b"], vec!["a", "a"], vec!["a", "b"],
            vec!["b", "a"], vec!["a", "b", "c"], vec!["c", "c"],
        ] {
            prop_assert_eq!(
                Matcher::new(&re).matches(word.iter().copied()),
                Matcher::new(&reparsed).matches(word.iter().copied()),
                "roundtrip changed the language of {}", re
            );
        }
    }

    /// Soundness of the simplicity test: when `simple_multiplicities`
    /// answers, every word of the language respects the per-letter
    /// multiplicity intervals.
    #[test]
    fn simplicity_is_sound(re in arb_regex(), word in arb_word()) {
        if let Some(m) = simple_multiplicities(&re) {
            if Matcher::new(&re).matches(word.iter().copied()) {
                for letter in ["a", "b", "c"] {
                    let count = word.iter().filter(|w| **w == letter).count();
                    match m.get(letter) {
                        None => prop_assert_eq!(count, 0, "{} not in the trivial form of {}", letter, re),
                        Some(Multiplicity::One) => prop_assert_eq!(count, 1),
                        Some(Multiplicity::Opt) => prop_assert!(count <= 1),
                        Some(Multiplicity::Plus) => prop_assert!(count >= 1),
                        Some(Multiplicity::Star) => {}
                    }
                }
            }
        }
    }

    /// Completeness on the trivial fragment: syntactically trivial
    /// expressions are always recognized as simple, with the syntactic
    /// multiplicities.
    #[test]
    fn trivial_expressions_are_simple(
        shape in prop::collection::vec(0usize..4, 1..4)
    ) {
        let letters = ["a", "b", "c"];
        let parts: Vec<Regex> = shape
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let leaf = Regex::elem(letters[i]);
                match q {
                    0 => leaf,
                    1 => leaf.opt(),
                    2 => leaf.star(),
                    _ => leaf.plus(),
                }
            })
            .collect();
        let re = Regex::seq(parts.clone());
        prop_assert!(is_trivial(&re) || parts.len() == 1);
        let m = simple_multiplicities(&re).expect("trivial implies simple");
        for (i, &q) in shape.iter().enumerate() {
            let expected = match q {
                0 => Multiplicity::One,
                1 => Multiplicity::Opt,
                2 => Multiplicity::Star,
                _ => Multiplicity::Plus,
            };
            prop_assert_eq!(m[&Box::from(letters[i])], expected);
        }
    }

    /// `shortest_word` always produces a member of the language.
    #[test]
    fn shortest_word_is_always_a_member(re in arb_regex()) {
        let w = derivative::shortest_word(&re);
        let refs: Vec<&str> = w.iter().map(String::as_str).collect();
        prop_assert!(
            Matcher::new(&re).matches(refs.iter().copied()),
            "{:?} is not in L({})", w, re
        );
    }
}

#[test]
fn multiplicity_helpers() {
    assert!(Multiplicity::Opt.optional());
    assert!(Multiplicity::Star.optional());
    assert!(!Multiplicity::One.optional());
    assert!(!Multiplicity::Plus.optional());
    assert!(Multiplicity::Star.repeatable());
    assert!(Multiplicity::Plus.repeatable());
    assert!(!Multiplicity::Opt.repeatable());
}
