//! Replays the fuzz-found corpus under `tests/oracle_corpus/` through the
//! full oracle battery as deterministic unit tests.
//!
//! Provenance: each spec was found by `xnf-oracle fuzz` over seeds
//! 0..20000 and minimized by greedy FD-subset reduction. All of them
//! originally tripped the rename metamorphic invariant: fresh
//! `info`/`{l}_ref` names minted by `CreateElement` shifted the engine's
//! then-lexicographic tie-breaking, so renamed runs took different (but
//! equally valid) decompositions and only a weak fingerprint check could
//! be demanded. Tie-breaking is now derived from structural position
//! (attribute declaration order, BFS path ids), which is
//! rename-equivariant — so these same witnesses are pinned as *exact*
//! equality tests: both renaming checks must return
//! [`RenameOutcome::Commutes`], meaning identical step traces, stages and
//! outputs up to the derived fresh-name bijection. Any future change to
//! fresh-name generation or tie-breaking that reintroduces
//! name-dependence is caught by a named, stable spec rather than a roving
//! fuzz seed.

use std::path::PathBuf;
use xnf::core::XmlFdSet;
use xnf_oracle::fuzz::{replay, spec_for_seed};
use xnf_oracle::metamorphic::{check_attribute_rename, check_element_rename};
use xnf_oracle::{FuzzConfig, RenameOutcome};

/// (seed, file stem) pairs; the seed regenerates the *unminimized* spec,
/// the files hold the minimized one.
const CORPUS: &[u64] = &[3449, 5195, 6742, 11775, 12710, 17154, 19327, 19683];

fn corpus_file(name: &str) -> String {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.push("tests");
    p.push("oracle_corpus");
    p.push(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("reading {}: {e}", p.display()))
}

#[test]
fn minimized_corpus_specs_pass_the_full_battery() {
    let cfg = FuzzConfig::default();
    for &seed in CORPUS {
        let dtd = xnf::dtd::parse_dtd(&corpus_file(&format!("seed-{seed}.dtd"))).unwrap();
        let sigma = XmlFdSet::parse(&corpus_file(&format!("seed-{seed}.fds"))).unwrap();
        assert!(
            !sigma.is_empty(),
            "seed {seed}: minimization must leave the failing core"
        );
        if let Some(failure) = replay(seed, &dtd, &sigma, &cfg) {
            panic!(
                "corpus seed {seed} regressed: {} — {}",
                failure.kind.as_str(),
                failure.detail
            );
        }
    }
}

#[test]
fn corpus_seeds_regenerate_and_pass_unminimized() {
    // The seeds themselves must also stay clean: this is the exact check
    // the nightly fuzz sweep runs, pinned to the historical finds.
    let cfg = FuzzConfig::default();
    for &seed in CORPUS {
        let (dtd, sigma) = spec_for_seed(seed, &cfg);
        if let Some(failure) = replay(seed, &dtd, &sigma, &cfg) {
            panic!(
                "generator seed {seed} regressed: {} — {}",
                failure.kind.as_str(),
                failure.detail
            );
        }
    }
}

#[test]
fn corpus_specs_commute_exactly_under_renamings() {
    // The promotion these witnesses were pinned for: the runs that used to
    // diverge under renaming (weak-fingerprint era) must now replay with
    // exact trace equality up to the derived fresh-name bijection.
    for &seed in CORPUS {
        let dtd = xnf::dtd::parse_dtd(&corpus_file(&format!("seed-{seed}.dtd"))).unwrap();
        let sigma = XmlFdSet::parse(&corpus_file(&format!("seed-{seed}.fds"))).unwrap();
        let elem = check_element_rename(&dtd, &sigma).unwrap();
        assert_eq!(
            elem,
            RenameOutcome::Commutes,
            "seed {seed} element rename: {elem:?}"
        );
        let attr = check_attribute_rename(&dtd, &sigma).unwrap();
        assert_eq!(
            attr,
            RenameOutcome::Commutes,
            "seed {seed} attribute rename: {attr:?}"
        );
    }
}

#[test]
fn corpus_specs_exercise_the_fresh_name_feedback_path() {
    // Guard against the corpus rotting into triviality: every pinned spec
    // must still normalize through at least one CreateElement step (the
    // source of attribute-derived fresh element names).
    use xnf::core::{normalize, NormalizeOptions, Step};
    for &seed in CORPUS {
        let dtd = xnf::dtd::parse_dtd(&corpus_file(&format!("seed-{seed}.dtd"))).unwrap();
        let sigma = XmlFdSet::parse(&corpus_file(&format!("seed-{seed}.fds"))).unwrap();
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        assert!(
            result
                .steps
                .iter()
                .any(|s| matches!(s, Step::CreateElement { .. })),
            "seed {seed}: minimized spec no longer creates elements"
        );
    }
}
