//! End-to-end linting of the checked-in specs.
//!
//! * The paper's own specs under `examples/specs/` must lint **clean** —
//!   zero diagnostics of any severity.
//! * The seeded bad specs under `tests/bad_specs/` must produce exactly
//!   the expected diagnostic codes, in order, in both the human and the
//!   JSON rendering.

//! * The shredding-specific bad specs must produce the `XNF3xx` codes
//!   under the opt-in shred tier (`lint_spec_shred`) and stay invisible
//!   to the default tiers.

use xnf::lint::{lint_spec, lint_spec_shred};
use xnf_govern::Budget;

fn read(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn paper_specs_lint_clean() {
    for name in ["university", "dblp", "ebxml"] {
        let dtd = read(&format!("examples/specs/{name}.dtd"));
        let fds = read(&format!("examples/specs/{name}.fds"));
        let report = lint_spec(&dtd, Some(&fds));
        assert!(
            report.is_clean(),
            "examples/specs/{name} should lint clean:\n{}",
            report.render_human()
        );
    }
}

/// The seeded corpus: (dtd file, fds file, exactly-expected codes).
const BAD_SPECS: &[(&str, Option<&str>, &[&str])] = &[
    ("tests/bad_specs/duplicate.dtd", None, &["XNF002"]),
    (
        "tests/bad_specs/nondet_orphan.dtd",
        None,
        &["XNF010", "XNF007"],
    ),
    (
        "tests/bad_specs/unsatisfiable.dtd",
        None,
        &["XNF009", "XNF008", "XNF011"],
    ),
    (
        "tests/bad_specs/vacuous.dtd",
        Some("tests/bad_specs/vacuous.fds"),
        &["XNF103"],
    ),
    (
        "examples/specs/university.dtd",
        Some("tests/bad_specs/redundant_sigma.fds"),
        &["XNF104", "XNF105", "XNF106"],
    ),
    (
        "examples/specs/university.dtd",
        Some("tests/bad_specs/broken.fds"),
        &["XNF101", "XNF102"],
    ),
];

#[test]
fn bad_spec_corpus_produces_exactly_the_expected_codes() {
    for &(dtd_file, fds_file, expected) in BAD_SPECS {
        let dtd = read(dtd_file);
        let fds = fds_file.map(read);
        let report = lint_spec(&dtd, fds.as_deref());
        let got: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert_eq!(
            got,
            expected,
            "{dtd_file} (+ {fds_file:?}):\n{}",
            report.render_human()
        );
        // Both renderings name every code.
        let human = report.render_human();
        let json = report.to_json();
        for code in expected {
            assert!(human.contains(&format!("[{code}]")), "{dtd_file}: {human}");
            assert!(
                json.contains(&format!("\"code\": \"{code}\"")),
                "{dtd_file}: {json}"
            );
        }
    }
}

/// The shredding corpus: (dtd file, exactly-expected codes under the
/// shred tier). The `XNF3xx` rows are the shredding-specific failure
/// modes: recursive element types (no finite table layout), mixed
/// content (text without a column), leaf-name collisions, and tables
/// wider than the FD enumeration window.
const SHRED_SPECS: &[(&str, &[&str])] = &[
    ("tests/bad_specs/recursive.dtd", &["XNF011", "XNF300"]),
    ("tests/bad_specs/mixed.dtd", &["XNF301", "XNF001"]),
    ("tests/bad_specs/collide.dtd", &["XNF302", "XNF302"]),
    ("tests/bad_specs/wide.dtd", &["XNF303"]),
];

#[test]
fn shred_bad_specs_produce_exactly_the_expected_codes() {
    for &(dtd_file, expected) in SHRED_SPECS {
        let dtd = read(dtd_file);
        let report = lint_spec_shred(&dtd, None, &Budget::unlimited())
            .expect("unlimited budget cannot exhaust");
        let got: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert_eq!(got, expected, "{dtd_file}:\n{}", report.render_human());
        // The shred tier is opt-in: the default lint never shows XNF3xx.
        let default = lint_spec(&dtd, None);
        assert!(
            default
                .codes()
                .iter()
                .all(|c| !c.as_str().starts_with("XNF3")),
            "{dtd_file}: default lint leaked a shred diagnostic:\n{}",
            default.render_human()
        );
    }
}

#[test]
fn paper_specs_under_the_shred_tier() {
    // university and dblp shred without a single XNF3xx diagnostic.
    for name in ["university", "dblp"] {
        let dtd = read(&format!("examples/specs/{name}.dtd"));
        let fds = read(&format!("examples/specs/{name}.fds"));
        let report = lint_spec_shred(&dtd, Some(&fds), &Budget::unlimited()).unwrap();
        assert!(
            report
                .codes()
                .iter()
                .all(|c| !c.as_str().starts_with("XNF3")),
            "examples/specs/{name} should be shred-clean:\n{}",
            report.render_human()
        );
    }
    // ebxml reuses `Documentation` (and friends) under several parents,
    // so those tables fall back to mangled path names: XNF302 warnings,
    // nothing worse. Pin the exact set so drift is visible.
    let dtd = read("examples/specs/ebxml.dtd");
    let fds = read("examples/specs/ebxml.fds");
    let report = lint_spec_shred(&dtd, Some(&fds), &Budget::unlimited()).unwrap();
    let shred: Vec<&str> = report
        .codes()
        .iter()
        .map(|c| c.as_str())
        .filter(|c| c.starts_with("XNF3"))
        .collect();
    assert!(
        !shred.is_empty() && shred.iter().all(|&c| c == "XNF302"),
        "ebxml should produce only XNF302 name-collision warnings:\n{}",
        report.render_human()
    );
}
