//! End-to-end linting of the checked-in specs.
//!
//! * The paper's own specs under `examples/specs/` must lint **clean** —
//!   zero diagnostics of any severity.
//! * The seeded bad specs under `tests/bad_specs/` must produce exactly
//!   the expected diagnostic codes, in order, in both the human and the
//!   JSON rendering.

use xnf::lint::lint_spec;

fn read(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

#[test]
fn paper_specs_lint_clean() {
    for name in ["university", "dblp", "ebxml"] {
        let dtd = read(&format!("examples/specs/{name}.dtd"));
        let fds = read(&format!("examples/specs/{name}.fds"));
        let report = lint_spec(&dtd, Some(&fds));
        assert!(
            report.is_clean(),
            "examples/specs/{name} should lint clean:\n{}",
            report.render_human()
        );
    }
}

/// The seeded corpus: (dtd file, fds file, exactly-expected codes).
const BAD_SPECS: &[(&str, Option<&str>, &[&str])] = &[
    ("tests/bad_specs/duplicate.dtd", None, &["XNF002"]),
    (
        "tests/bad_specs/nondet_orphan.dtd",
        None,
        &["XNF010", "XNF007"],
    ),
    (
        "tests/bad_specs/unsatisfiable.dtd",
        None,
        &["XNF009", "XNF008", "XNF011"],
    ),
    (
        "tests/bad_specs/vacuous.dtd",
        Some("tests/bad_specs/vacuous.fds"),
        &["XNF103"],
    ),
    (
        "examples/specs/university.dtd",
        Some("tests/bad_specs/redundant_sigma.fds"),
        &["XNF104", "XNF105", "XNF106"],
    ),
    (
        "examples/specs/university.dtd",
        Some("tests/bad_specs/broken.fds"),
        &["XNF101", "XNF102"],
    ),
];

#[test]
fn bad_spec_corpus_produces_exactly_the_expected_codes() {
    for &(dtd_file, fds_file, expected) in BAD_SPECS {
        let dtd = read(dtd_file);
        let fds = fds_file.map(read);
        let report = lint_spec(&dtd, fds.as_deref());
        let got: Vec<&str> = report.codes().iter().map(|c| c.as_str()).collect();
        assert_eq!(
            got,
            expected,
            "{dtd_file} (+ {fds_file:?}):\n{}",
            report.render_human()
        );
        // Both renderings name every code.
        let human = report.render_human();
        let json = report.to_json();
        for code in expected {
            assert!(human.contains(&format!("[{code}]")), "{dtd_file}: {human}");
            assert!(
                json.contains(&format!("\"code\": \"{code}\"")),
                "{dtd_file}: {json}"
            );
        }
    }
}
