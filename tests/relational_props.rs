//! Property tests for the relational substrate: Armstrong's axioms,
//! closure algebra, BCNF decomposition losslessness on instances, and
//! Codd-table FD semantics.

use proptest::prelude::*;
use xnf::relational::algebra::Query;
use xnf::relational::bcnf::{bcnf_decompose, is_bcnf};
use xnf::relational::fd::{AttrSet, Fd, FdSet};
use xnf::relational::{Relation, Value};

fn arb_attrset(arity: usize) -> impl Strategy<Value = AttrSet> {
    prop::collection::vec(0..arity, 1..=arity.min(3)).prop_map(|ixs| {
        let mut s = AttrSet::empty();
        for i in ixs {
            s.insert(i);
        }
        s
    })
}

fn arb_fdset(arity: usize) -> impl Strategy<Value = FdSet> {
    prop::collection::vec((arb_attrset(arity), arb_attrset(arity)), 0..5)
        .prop_map(|fds| FdSet::from_fds(fds.into_iter().map(|(l, r)| Fd::new(l, r))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Closure is extensive, monotone and idempotent.
    #[test]
    fn closure_is_a_closure_operator(fds in arb_fdset(6), x in arb_attrset(6), y in arb_attrset(6)) {
        let cx = fds.closure(x);
        prop_assert!(x.is_subset(cx), "extensive");
        prop_assert_eq!(fds.closure(cx), cx, "idempotent");
        if x.is_subset(y) {
            prop_assert!(cx.is_subset(fds.closure(y)), "monotone");
        }
    }

    /// Armstrong's axioms as properties of `implies`.
    #[test]
    fn armstrong_axioms(fds in arb_fdset(6), x in arb_attrset(6), y in arb_attrset(6), z in arb_attrset(6)) {
        // Reflexivity.
        if y.is_subset(x) {
            prop_assert!(fds.implies(Fd::new(x, y)));
        }
        // Augmentation.
        if fds.implies(Fd::new(x, y)) {
            prop_assert!(fds.implies(Fd::new(x.union(z), y.union(z))));
        }
        // Transitivity.
        if fds.implies(Fd::new(x, y)) && fds.implies(Fd::new(y, z)) {
            prop_assert!(fds.implies(Fd::new(x, z)));
        }
    }

    /// A minimal cover is equivalent to the original set.
    #[test]
    fn minimal_cover_is_equivalent(fds in arb_fdset(5), probe in arb_attrset(5)) {
        let cover = fds.minimal_cover();
        prop_assert_eq!(fds.closure(probe), cover.closure(probe));
    }

    /// Every fragment produced by BCNF decomposition is in BCNF, and the
    /// fragments cover all attributes.
    #[test]
    fn bcnf_decomposition_properties(fds in arb_fdset(5)) {
        let all = AttrSet::full(5);
        let frags = bcnf_decompose(&fds, all);
        let mut union = AttrSet::empty();
        for (rel, rel_fds) in &frags {
            prop_assert!(is_bcnf(rel_fds, *rel));
            union = union.union(*rel);
        }
        prop_assert_eq!(union, all);
        if is_bcnf(&fds, all) {
            prop_assert_eq!(frags.len(), 1);
        }
    }

    /// BCNF decomposition is lossless on instances: projecting a relation
    /// that satisfies the FDs onto the fragments and natural-joining the
    /// projections reconstructs it exactly.
    #[test]
    fn bcnf_decomposition_is_lossless_on_instances(
        fds in arb_fdset(4),
        rows in prop::collection::vec(prop::collection::vec(0u8..3, 4), 0..8),
    ) {
        let columns = ["A", "B", "C", "D"];
        let mut rel = Relation::new(columns).unwrap();
        for row in rows {
            rel.insert(row.iter().map(|v| Value::str(format!("v{v}"))).collect()).unwrap();
        }
        // Keep only instances satisfying the FDs.
        for fd in fds.iter() {
            let lhs: Vec<&str> = fd.lhs.iter().map(|i| columns[i]).collect();
            let rhs: Vec<&str> = fd.rhs.iter().map(|i| columns[i]).collect();
            prop_assume!(rel.satisfies_fd(&lhs, &rhs).unwrap());
        }
        let frags = bcnf_decompose(&fds, AttrSet::full(4));
        // Project and rejoin.
        let env = std::collections::HashMap::from([("r".to_string(), rel.clone())]);
        let mut joined: Option<Query> = None;
        for (attrs, _) in &frags {
            let cols: Vec<String> = attrs.iter().map(|i| columns[i].to_string()).collect();
            let q = Query::table("r").project(cols);
            joined = Some(match joined {
                None => q,
                Some(acc) => acc.join(q),
            });
        }
        let rejoined = joined.unwrap().eval(&env).unwrap();
        // Compare as sets over the original column order.
        let back = rejoined.project(&columns).unwrap();
        prop_assert_eq!(back, rel);
    }

    /// Codd-table FD satisfaction matches a brute-force pairwise check.
    #[test]
    fn codd_fd_check_matches_bruteforce(
        rows in prop::collection::vec(prop::collection::vec(0u8..4, 3), 0..8),
        lhs in prop::collection::vec(0usize..3, 1..3),
        rhs in prop::collection::vec(0usize..3, 1..3),
    ) {
        let columns = ["A", "B", "C"];
        let mut rel = Relation::new(columns).unwrap();
        for row in &rows {
            rel.insert(
                row.iter()
                    .map(|&v| if v == 0 { Value::Null } else { Value::str(format!("v{v}")) })
                    .collect(),
            )
            .unwrap();
        }
        let lhs_names: Vec<&str> = lhs.iter().map(|&i| columns[i]).collect();
        let rhs_names: Vec<&str> = rhs.iter().map(|&i| columns[i]).collect();
        let fast = rel.satisfies_fd(&lhs_names, &rhs_names).unwrap();
        // Brute force over pairs.
        let all: Vec<Vec<Value>> = rel.rows().map(|r| r.to_vec()).collect();
        let mut slow = true;
        for t1 in &all {
            if lhs.iter().any(|&i| t1[i].is_null()) {
                continue;
            }
            for t2 in &all {
                if lhs.iter().all(|&i| t1[i] == t2[i])
                    && !rhs.iter().all(|&i| t1[i] == t2[i])
                {
                    slow = false;
                }
            }
        }
        prop_assert_eq!(fast, slow);
    }
}
