#!/usr/bin/env python3
"""Validate a JSON document against a JSON-schema subset, stdlib only.

Usage: validate_schema.py <schema.json> <instance.json | -> [--jsonl]

With --jsonl the instance is JSON Lines (e.g. an `xnf-serve
--access-log` capture): every non-empty line must independently
validate against the schema, and an empty file fails — a CI capture
that logged nothing is a broken capture, not a clean one.

CI uses this to pin machine-readable CLI output (e.g. `xnf-tool analyze
--format json` against docs/analyze.schema.json) without adding a
third-party `jsonschema` dependency. It implements exactly the keywords
those schemas use — type, enum, required, properties,
additionalProperties (boolean form), items, minItems, maxItems, oneOf —
and fails loudly on any keyword it does not know, so a schema edit
cannot silently disable validation.
"""

import json
import sys

HANDLED = {
    "type",
    "enum",
    "required",
    "properties",
    "additionalProperties",
    "items",
    "minItems",
    "maxItems",
    "oneOf",
    # Annotations, valid everywhere and checked nowhere:
    "$schema",
    "title",
    "description",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def type_ok(value, name):
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    expected = TYPES.get(name)
    if expected is None:
        raise SystemExit(f"schema error: unknown type {name!r}")
    if expected is not bool and isinstance(value, bool):
        return name == "boolean"
    return isinstance(value, expected)


def validate(value, schema, path):
    errors = []
    unknown = set(schema) - HANDLED
    if unknown:
        raise SystemExit(f"schema error at {path}: unhandled keywords {sorted(unknown)}")

    if "type" in schema:
        names = schema["type"]
        names = names if isinstance(names, list) else [names]
        if not any(type_ok(value, n) for n in names):
            return [f"{path}: expected {' or '.join(names)}, got {type(value).__name__}"]

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']!r}")

    if "oneOf" in schema:
        matches = [
            alt for alt in schema["oneOf"] if not validate(value, alt, path)
        ]
        if len(matches) != 1:
            errors.append(
                f"{path}: matched {len(matches)} of {len(schema['oneOf'])} oneOf alternatives"
            )

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}"))
        if schema.get("additionalProperties", True) is False:
            for key in value:
                if key not in props:
                    errors.append(f"{path}: unexpected key {key!r}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} item(s), expected >= {schema['minItems']}")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: {len(value)} item(s), expected <= {schema['maxItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                errors.extend(validate(item, schema["items"], f"{path}[{i}]"))

    return errors


def main():
    args = sys.argv[1:]
    jsonl = "--jsonl" in args
    args = [a for a in args if a != "--jsonl"]
    if len(args) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])
    with open(args[0], encoding="utf-8") as f:
        schema = json.load(f)
    if args[1] == "-":
        text = sys.stdin.read()
    else:
        with open(args[1], encoding="utf-8") as f:
            text = f.read()
    errors = []
    if jsonl:
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines:
            raise SystemExit(f"{args[1]}: empty JSONL capture (nothing was logged)")
        for n, line in enumerate(lines, 1):
            try:
                instance = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {n}: not JSON ({e})")
                continue
            errors.extend(validate(instance, schema, f"line {n} $"))
        checked = f"{len(lines)} line(s)"
    else:
        errors = validate(json.loads(text), schema, "$")
        checked = "document"
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        raise SystemExit(f"{args[1]}: {len(errors)} schema violation(s)")
    print(f"{args[1]}: {checked} valid against {args[0]}")


if __name__ == "__main__":
    main()
