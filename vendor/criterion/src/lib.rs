//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses: `Criterion::{bench_function, benchmark_group}`, groups with
//! `sample_size`/`bench_function`/`bench_with_input`/`finish`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this crate (see `[patch.crates-io]` in the
//! root manifest). Measurements are real wall-clock timings: each
//! benchmark is calibrated to a target measurement window, then run and
//! reported as a mean-per-iteration line on stdout. There are no
//! statistical refinements, plots, or saved baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured benchmark run.
const MEASURE_WINDOW: Duration = Duration::from_millis(120);
/// Upper bound on measured iterations (keeps very fast benches bounded).
const MAX_ITERS: u64 = 1_000_000;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs (and reports) one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the
    /// whole batch.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: a function name, a parameter, or both.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name inside a group.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this stand-in calibrates by time
    /// window rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass: one iteration to estimate per-iter cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters =
        (MEASURE_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, u128::from(MAX_ITERS)) as u64;
    // Measurement pass.
    bencher.iters = iters;
    bencher.elapsed = Duration::ZERO;
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;
    println!(
        "{label:<60} time: [{}]  ({iters} iters)",
        format_ns(mean_ns)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
