//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this crate (see `[patch.crates-io]` in the root
//! manifest). It implements the pieces the test suites actually exercise:
//!
//! - the `proptest!` macro (with `#![proptest_config(..)]`,
//!   `pat in strategy` parameters, `prop_assert*!` / `prop_assume!`,
//!   `?` on `Result<_, TestCaseError>` bodies);
//! - strategies: integer ranges, `Just`, `prop_oneof!`, `prop_map`,
//!   `prop_recursive`, tuples, and `prop::collection::vec`;
//! - a deterministic runner: case `k` of test `t` is generated from a
//!   seed derived only from `(t, k)`, so failures reproduce exactly.
//!
//! Unlike real proptest there is **no shrinking** and no persistence:
//! `*.proptest-regressions` files are left untouched (their `cc` seeds
//! encode the upstream generator's streams, which this stand-in cannot
//! replay — shrunk cases from those files are pinned as plain unit tests
//! in the suites instead). Failures print the sampled inputs so they can
//! be pinned the same way.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", ..)` — like
/// `assert!` but returns a [`test_runner::TestCaseError`] instead of
/// panicking, so the runner can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), left),
            ));
        }
    }};
}

/// `prop_assume!(cond)` — rejects the current case (it is re-drawn, not
/// counted as a failure) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ..]` — uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest!` test-definition macro: an optional
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ..) { body }` items. Bodies run with an implicit
/// `Result<(), TestCaseError>` return (so `?`, `prop_assert!` and early
/// `return Ok(())` all work).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng, __inputs| {
                    $(
                        let __value = $crate::strategy::Strategy::sample(&($strategy), __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($pat), __value));
                        let $pat = __value;
                    )+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body;
                            ::core::result::Result::Ok(())
                        })();
                    __result
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
