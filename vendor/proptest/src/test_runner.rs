//! The deterministic case runner and its supporting types.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration; only `cases` is honored by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion (fails the test).
    Fail(String),
    /// The case was rejected by `prop_assume!` (re-drawn, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
        }
    }
}

/// Convenience alias matching real proptest.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The generator handed to strategies (xoshiro256++, seeded purely from
/// the test name and case index — failures reproduce exactly).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(mut seed: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// A uniform draw from `[0, span)`; `span` must be ≤ 2^64 and > 0.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (u128::from(self.next_u64()) * span) >> 64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drives one `proptest!` test: draws cases until `config.cases` are
/// accepted (rejections are re-drawn, with a global cap), panicking on
/// the first failing case with the sampled inputs in the message.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, run_one: F)
where
    F: Fn(&mut TestRng, &mut Vec<String>) -> TestCaseResult,
{
    // PROPTEST_CASES overrides every suite's case count (stress sweeps).
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let config = &ProptestConfig { cases };
    let base = fnv1a(name);
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = u64::from(config.cases) * 16 + 1024;
    while accepted < config.cases {
        if attempt >= max_attempts {
            // Mirror proptest's global-reject cap, but treat exhaustion as
            // "ran fewer cases" rather than an error: the suites here use
            // prop_assume! only to trim outliers.
            eprintln!(
                "proptest (offline stand-in): {name}: stopping after {attempt} draws \
                 ({accepted}/{} cases accepted)",
                config.cases
            );
            break;
        }
        let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = TestRng::from_seed(seed);
        let mut inputs: Vec<String> = Vec::new();
        attempt += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_one(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!(
                    "proptest: test {name} failed at case #{attempt}\n  {msg}\n  inputs:\n    {}",
                    inputs.join("\n    ")
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest: test {name} panicked at case #{attempt}; inputs:\n    {}",
                    inputs.join("\n    ")
                );
                resume_unwind(payload);
            }
        }
    }
}
