//! The customary `use proptest::prelude::*;` surface.

pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Sub-strategy modules under the conventional `prop::` name.
pub mod prop {
    pub use crate::collection;
}
