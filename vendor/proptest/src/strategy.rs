//! Strategies: deterministic value generators composable the proptest way.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::sync::Arc;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value-tree/shrinking machinery: a
/// strategy is just a sampling function over [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(v)` for `v` drawn from `self`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive generation: `self` is the leaf strategy and `recurse`
    /// builds one more layer on top of an inner strategy. `depth` bounds
    /// the nesting; the size/branch hints of real proptest are accepted
    /// and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            // Bias toward the deeper layer so top-level draws are rich;
            // leaves still appear at every level via the inner unions.
            current = Union::weighted(vec![(1, leaf.clone()), (3, deeper)]).boxed();
        }
        current
    }

    /// Type-erases `self` into a cheaply clonable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, reference-counted strategy (clonable).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A weighted choice among strategies of a common value type (the
/// desugaring of `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A uniform union of `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union {
            arms: arms.into_iter().map(|s| (1, s)).collect(),
        }
    }

    /// A union drawing each arm with probability proportional to its
    /// weight.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! of zero alternatives");
        let mut pick = rng.below(u128::from(total)) as u64;
        for (w, strategy) in &self.arms {
            if pick < u64::from(*w) {
                return strategy.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as u128;
                let hi = self.end as u128;
                (lo + rng.below(hi - lo)) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let lo = *self.start() as u128;
                let hi = *self.end() as u128;
                (lo + rng.below(hi - lo + 1)) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}
