//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{random_range, random_bool,
//! random_ratio}` and `IndexedRandom::choose` on slices.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest). Everything downstream only needs *deterministic seeded*
//! generation — no OS entropy, no thread-local RNG — which keeps this
//! stand-in tiny. The core generator is xoshiro256++ seeded via
//! SplitMix64; streams are stable across runs and platforms for a given
//! seed (they intentionally do **not** match the real `rand` crate's
//! ChaCha12-based `StdRng` streams).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Uniform sampling support for `Rng::random_range`.
pub mod uniform {
    use crate::RngCore;

    /// Integer types that can be sampled uniformly from a range.
    ///
    /// Only non-negative values are exercised by this workspace; the
    /// widening conversions below are not order-preserving for negative
    /// signed values.
    pub trait UniformInt: Copy + PartialOrd {
        fn to_u128(self) -> u128;
        fn from_u128(v: u128) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),* $(,)?) => {$(
            impl UniformInt for $t {
                fn to_u128(self) -> u128 {
                    self as u128
                }
                fn from_u128(v: u128) -> Self {
                    v as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Multiply-shift reduction of a random word into `[0, span)`;
    /// `span` must be at most `2^64`.
    pub(crate) fn reduce(word: u64, span: u128) -> u128 {
        (u128::from(word) * span) >> 64
    }

    /// Ranges a value can be drawn from, mirroring
    /// `rand::distr::uniform::SampleRange`.
    pub trait SampleRange<T> {
        /// Draws one value; panics on an empty range (as `rand` does).
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let lo = self.start.to_u128();
            let hi = self.end.to_u128();
            assert!(lo < hi, "cannot sample empty range");
            T::from_u128(lo + reduce(rng.next_u64(), hi - lo))
        }
    }

    impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let lo = self.start().to_u128();
            let hi = self.end().to_u128();
            assert!(lo <= hi, "cannot sample empty range");
            T::from_u128(lo + reduce(rng.next_u64(), hi - lo + 1))
        }
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.random_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use crate::Rng;

    /// Uniformly choosing elements of an indexable collection.
    pub trait IndexedRandom {
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;

        /// `amount` distinct elements sampled without replacement, as an
        /// iterator of references (saturating at the collection length).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let ix = rng.random_range(0..self.len());
                Some(&self[ix])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// The customary glob-import module.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::IndexedRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_range_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = r.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_and_ratio_are_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.random_ratio(0, 1)));
        assert!((0..100).all(|_| r.random_ratio(1, 1)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(3);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut r).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
