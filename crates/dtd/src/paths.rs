//! Paths in a DTD — Section 2: `paths(D)` and `EPaths(D)`.
//!
//! A path is a word `w₁.w₂.….wₙ` with `w₁ = r`, each `wᵢ` in the alphabet
//! of `P(wᵢ₋₁)`, and `wₙ` either an element type, an attribute `@l` of
//! `wₙ₋₁`, or the reserved symbol `S` when `P(wₙ₋₁) = S` (#PCDATA).
//!
//! Two representations are provided:
//!
//! * [`Path`] — an owned, DTD-independent sequence of [`Step`]s with a
//!   stable text form (`courses.course.@cno`). Functional dependencies are
//!   stated over these, so they survive the DTD rewrites performed by the
//!   normalization algorithm.
//! * [`PathSet`] — the enumerated `paths(D)` of a concrete DTD, interning
//!   every path as a dense [`PathId`] in a parent-pointer trie. All
//!   algorithmic cores (tree tuples, the chase) run on `PathId`s.

use crate::dtd::{ContentModel, Dtd, ElemId};
use crate::{DtdError, Result};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// One step of a path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Step {
    /// An element type name.
    Elem(Box<str>),
    /// An attribute `@l` (stored without the leading `@`).
    Attr(Box<str>),
    /// The reserved symbol `S` (#PCDATA content).
    Text,
}

impl Step {
    /// An element step.
    pub fn elem(name: impl Into<Box<str>>) -> Self {
        Step::Elem(name.into())
    }

    /// An attribute step.
    pub fn attr(name: impl Into<Box<str>>) -> Self {
        Step::Attr(name.into())
    }

    /// Whether this step is an element name.
    pub fn is_elem(&self) -> bool {
        matches!(self, Step::Elem(_))
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Elem(n) => write!(f, "{n}"),
            Step::Attr(n) => write!(f, "@{n}"),
            Step::Text => write!(f, "S"),
        }
    }
}

/// An owned path — a non-empty sequence of steps beginning at the root
/// element. Paths are ordered lexicographically by their steps, which makes
/// sets of paths and FDs deterministic to display.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path(Vec<Step>);

impl Path {
    /// Builds a path from steps. Panics if `steps` is empty or if a
    /// non-final step is not an element (paths may only end with an
    /// attribute or `S`).
    pub fn new(steps: Vec<Step>) -> Self {
        assert!(!steps.is_empty(), "a path has at least one step (the root)");
        assert!(
            steps[..steps.len() - 1].iter().all(Step::is_elem),
            "only the final step of a path may be an attribute or S"
        );
        Path(steps)
    }

    /// A single-step path (the root).
    pub fn root(name: impl Into<Box<str>>) -> Self {
        Path(vec![Step::elem(name)])
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[Step] {
        &self.0
    }

    /// `length(w)` — the number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Paths are never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `last(w)` — the final step.
    pub fn last(&self) -> &Step {
        self.0.last().expect("paths are non-empty")
    }

    /// Whether the path ends with an element type (`p ∈ EPaths(D)`).
    pub fn is_element_path(&self) -> bool {
        self.last().is_elem()
    }

    /// The path with the final step removed, or `None` for the root.
    pub fn parent(&self) -> Option<Path> {
        if self.0.len() == 1 {
            None
        } else {
            Some(Path(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Extends the path by one step. Panics if `self` does not end with an
    /// element.
    pub fn child(&self, step: Step) -> Path {
        assert!(
            self.is_element_path(),
            "cannot extend a path ending in an attribute or S"
        );
        let mut steps = self.0.clone();
        steps.push(step);
        Path(steps)
    }

    /// Convenience: `self.child(Step::elem(name))`.
    pub fn child_elem(&self, name: impl Into<Box<str>>) -> Path {
        self.child(Step::elem(name))
    }

    /// Convenience: `self.child(Step::attr(name))`.
    pub fn child_attr(&self, name: impl Into<Box<str>>) -> Path {
        self.child(Step::attr(name))
    }

    /// Convenience: `self.child(Step::Text)`.
    pub fn child_text(&self) -> Path {
        self.child(Step::Text)
    }

    /// Whether `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.0.len() >= self.0.len() && other.0[..self.0.len()] == self.0[..]
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl FromStr for Path {
    type Err = DtdError;

    /// Parses the dotted form, e.g. `courses.course.@cno` or
    /// `courses.course.title.S`. `S` is reserved for the #PCDATA step and
    /// `@`-prefixed components are attributes; both may appear only last.
    fn from_str(s: &str) -> Result<Path> {
        let mut steps = Vec::new();
        let mut offset = 0usize;
        for (i, comp) in s.split('.').enumerate() {
            if comp.is_empty() {
                return Err(DtdError::syntax(
                    s.as_bytes(),
                    offset,
                    format!("empty path component in `{s}` (component {i})"),
                ));
            }
            let step = if comp == "S" {
                Step::Text
            } else if let Some(att) = comp.strip_prefix('@') {
                Step::attr(att)
            } else {
                Step::elem(comp)
            };
            steps.push(step);
            offset += comp.len() + 1; // component plus the following `.`
        }
        if steps.is_empty() {
            return Err(DtdError::syntax(s.as_bytes(), 0, "empty path"));
        }
        if !steps[..steps.len() - 1].iter().all(Step::is_elem) {
            return Err(DtdError::syntax(
                s.as_bytes(),
                0,
                format!("`{s}`: attributes and S may appear only as the final step"),
            ));
        }
        Ok(Path(steps))
    }
}

/// Identifier of an interned path within one [`PathSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub(crate) u32);

impl PathId {
    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Entry {
    parent: Option<PathId>,
    step: Step,
    /// `length(p)`.
    len: u32,
    /// The element type of `last(p)` if the path ends with an element.
    last_elem: Option<ElemId>,
    /// Path ids of all one-step extensions (attributes, `S`, elements).
    children: Vec<PathId>,
}

/// The enumerated, interned `paths(D)` of a DTD.
///
/// Ids are assigned in breadth-first order, so `PathId` order is consistent
/// with path length and parents always precede children.
#[derive(Debug, Clone)]
pub struct PathSet {
    entries: Vec<Entry>,
    /// Trie edges: `(parent, step) → child`. The root is keyed on
    /// `(None, root step)`.
    edges: HashMap<(Option<PathId>, Step), PathId>,
    /// Whether enumeration was truncated by a length bound (recursive DTD).
    truncated: bool,
}

impl PathSet {
    /// Enumerates all paths of `dtd` of length ≤ `max_len` (breadth-first).
    pub(crate) fn enumerate(dtd: &Dtd, max_len: usize) -> PathSet {
        let mut set = PathSet {
            entries: Vec::new(),
            edges: HashMap::new(),
            truncated: false,
        };
        let root_step = Step::elem(dtd.root_name());
        let root_id = set.push(None, root_step, Some(dtd.root()));
        let mut queue = vec![root_id];
        let mut head = 0;
        while head < queue.len() {
            let pid = queue[head];
            head += 1;
            let elem = set.entries[pid.index()]
                .last_elem
                .expect("only element paths are queued");
            if set.entries[pid.index()].len as usize >= max_len {
                set.truncated = true;
                continue;
            }
            for att in dtd.attrs(elem) {
                set.push(Some(pid), Step::attr(att), None);
            }
            match dtd.content(elem) {
                ContentModel::Text => {
                    set.push(Some(pid), Step::Text, None);
                }
                ContentModel::Regex(re) => {
                    for name in re.alphabet() {
                        let child_elem = dtd.elem_id(name).expect("validated reference");
                        let cid = set.push(Some(pid), Step::elem(name), Some(child_elem));
                        queue.push(cid);
                    }
                }
            }
        }
        set
    }

    fn push(&mut self, parent: Option<PathId>, step: Step, last_elem: Option<ElemId>) -> PathId {
        let id = PathId(self.entries.len() as u32);
        let len = parent.map_or(1, |p| self.entries[p.index()].len + 1);
        self.entries.push(Entry {
            parent,
            step: step.clone(),
            len,
            last_elem,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            self.entries[p.index()].children.push(id);
        }
        self.edges.insert((parent, step), id);
        id
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty (never: the root path always exists).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether enumeration was truncated by a length bound.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// All path ids, in breadth-first order.
    pub fn iter(&self) -> impl Iterator<Item = PathId> {
        (0..self.entries.len() as u32).map(PathId)
    }

    /// The id of the root path.
    pub fn root(&self) -> PathId {
        PathId(0)
    }

    /// `EPaths(D)`: ids of paths ending with an element type.
    pub fn epaths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.iter().filter(|p| self.is_element_path(*p))
    }

    /// The parent path, if any.
    pub fn parent(&self, p: PathId) -> Option<PathId> {
        self.entries[p.index()].parent
    }

    /// The final step of `p`.
    pub fn step(&self, p: PathId) -> &Step {
        &self.entries[p.index()].step
    }

    /// `length(p)`.
    pub fn path_len(&self, p: PathId) -> usize {
        self.entries[p.index()].len as usize
    }

    /// The element type of `last(p)`, if `p ∈ EPaths(D)`.
    pub fn last_elem(&self, p: PathId) -> Option<ElemId> {
        self.entries[p.index()].last_elem
    }

    /// Whether `p ∈ EPaths(D)`.
    pub fn is_element_path(&self, p: PathId) -> bool {
        self.entries[p.index()].last_elem.is_some()
    }

    /// One-step extensions of `p` (attributes, `S`, element children).
    pub fn children_of(&self, p: PathId) -> &[PathId] {
        &self.entries[p.index()].children
    }

    /// Whether `a` is a (non-strict) prefix of `b`.
    pub fn is_prefix(&self, a: PathId, b: PathId) -> bool {
        let la = self.entries[a.index()].len;
        let mut cur = b;
        loop {
            let e = &self.entries[cur.index()];
            if e.len == la {
                return cur == a;
            }
            if e.len < la {
                return false;
            }
            cur = e.parent.expect("len > 1 implies a parent");
        }
    }

    /// The ancestor of `p` with `length == len` (1 = the root), if `p` is
    /// at least that long.
    pub fn ancestor_at(&self, p: PathId, len: usize) -> Option<PathId> {
        let mut cur = p;
        loop {
            let e = &self.entries[cur.index()];
            match (e.len as usize).cmp(&len) {
                std::cmp::Ordering::Equal => return Some(cur),
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Greater => cur = e.parent?,
            }
        }
    }

    /// Resolves an owned [`Path`] to its id, if present.
    pub fn resolve(&self, path: &Path) -> Option<PathId> {
        let mut cur: Option<PathId> = None;
        for step in path.steps() {
            cur = Some(*self.edges.get(&(cur, step.clone()))?);
        }
        cur
    }

    /// Resolves a dotted path string (`courses.course.@cno`).
    pub fn resolve_str(&self, s: &str) -> Option<PathId> {
        let path: Path = s.parse().ok()?;
        self.resolve(&path)
    }

    /// Like [`PathSet::resolve_str`], but with a typed error naming the
    /// missing path.
    pub fn require_str(&self, s: &str) -> Result<PathId> {
        self.resolve_str(s)
            .ok_or_else(|| DtdError::NoSuchPath(s.to_string()))
    }

    /// Reconstructs the owned [`Path`] for `p`.
    pub fn path(&self, p: PathId) -> Path {
        let mut steps = Vec::with_capacity(self.path_len(p));
        let mut cur = Some(p);
        while let Some(c) = cur {
            let e = &self.entries[c.index()];
            steps.push(e.step.clone());
            cur = e.parent;
        }
        steps.reverse();
        Path::new(steps)
    }

    /// The display form of `p`.
    pub fn format(&self, p: PathId) -> String {
        self.path(p).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::Dtd;
    use crate::regex::Regex;

    fn university() -> Dtd {
        Dtd::builder("courses")
            .elem("courses", Regex::elem("course").star())
            .elem_attrs(
                "course",
                Regex::seq([Regex::elem("title"), Regex::elem("taken_by")]),
                ["cno"],
            )
            .text_elem("title")
            .elem("taken_by", Regex::elem("student").star())
            .elem_attrs(
                "student",
                Regex::seq([Regex::elem("name"), Regex::elem("grade")]),
                ["sno"],
            )
            .text_elem("name")
            .text_elem("grade")
            .build()
            .unwrap()
    }

    #[test]
    fn university_paths_match_figure_2() {
        let d = university();
        let ps = d.paths().unwrap();
        // Exactly the 12 paths listed in Figure 2(a).
        let expected = [
            "courses",
            "courses.course",
            "courses.course.@cno",
            "courses.course.title",
            "courses.course.title.S",
            "courses.course.taken_by",
            "courses.course.taken_by.student",
            "courses.course.taken_by.student.@sno",
            "courses.course.taken_by.student.name",
            "courses.course.taken_by.student.name.S",
            "courses.course.taken_by.student.grade",
            "courses.course.taken_by.student.grade.S",
        ];
        assert_eq!(ps.len(), expected.len());
        for e in expected {
            assert!(ps.resolve_str(e).is_some(), "missing path {e}");
        }
    }

    #[test]
    fn epaths_are_element_ended() {
        let d = university();
        let ps = d.paths().unwrap();
        let epaths: Vec<String> = ps.epaths().map(|p| ps.format(p)).collect();
        assert_eq!(
            epaths,
            vec![
                "courses",
                "courses.course",
                "courses.course.title",
                "courses.course.taken_by",
                "courses.course.taken_by.student",
                "courses.course.taken_by.student.name",
                "courses.course.taken_by.student.grade",
            ]
        );
    }

    #[test]
    fn prefix_and_ancestor_queries() {
        let d = university();
        let ps = d.paths().unwrap();
        let root = ps.resolve_str("courses").unwrap();
        let course = ps.resolve_str("courses.course").unwrap();
        let sno = ps
            .resolve_str("courses.course.taken_by.student.@sno")
            .unwrap();
        assert!(ps.is_prefix(root, sno));
        assert!(ps.is_prefix(course, sno));
        assert!(!ps.is_prefix(sno, course));
        assert!(ps.is_prefix(sno, sno));
        assert_eq!(ps.ancestor_at(sno, 2), Some(course));
        assert_eq!(ps.ancestor_at(sno, 1), Some(root));
        assert_eq!(ps.ancestor_at(course, 5), None);
    }

    #[test]
    fn path_roundtrip_parse_display() {
        for s in ["courses", "courses.course.@cno", "courses.course.title.S"] {
            let p: Path = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn path_parse_rejects_midway_attribute() {
        assert!("a.@b.c".parse::<Path>().is_err());
        assert!("a.S.c".parse::<Path>().is_err());
        assert!("a..b".parse::<Path>().is_err());
    }

    #[test]
    fn bounded_enumeration_truncates_recursive_dtds() {
        let d = Dtd::builder("r")
            .elem("r", Regex::elem("part"))
            .elem_attrs("part", Regex::elem("part").star(), ["id"])
            .build()
            .unwrap();
        let ps = d.paths_bounded(4);
        assert!(ps.truncated());
        assert!(ps.resolve_str("r.part.part.part").is_some());
        assert!(ps.resolve_str("r.part.part.@id").is_some());
        assert!(ps.resolve_str("r.part.part.part.part").is_none());
    }

    #[test]
    fn path_ids_are_bfs_ordered() {
        let d = university();
        let ps = d.paths().unwrap();
        for p in ps.iter() {
            if let Some(parent) = ps.parent(p) {
                assert!(parent < p);
                assert_eq!(ps.path_len(parent) + 1, ps.path_len(p));
            }
        }
    }

    #[test]
    fn resolve_rejects_unknown() {
        let d = university();
        let ps = d.paths().unwrap();
        assert!(ps.resolve_str("courses.nonexistent").is_none());
        assert!(ps.require_str("courses.nonexistent").is_err());
    }
}
