//! Line/column resolution for byte offsets into spec sources.
//!
//! DTD and FD specs are small, line-oriented text files; every error and
//! lint diagnostic that points into them carries a byte offset. This module
//! turns such offsets into the 1-based line/column coordinates a user (or
//! an editor integration) actually wants, and is shared by [`crate::DtdError`],
//! the `xnf-lint` diagnostics engine, and the CLI renderers.

/// A 1-based line/column position in a source text.
///
/// Columns count bytes, not grapheme clusters — exact for the ASCII
/// declaration syntax the paper uses, and a stable, editor-compatible
/// approximation otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (byte) number within the line.
    pub col: u32,
}

impl LineCol {
    /// The start of the text.
    pub const START: LineCol = LineCol { line: 1, col: 1 };
}

impl std::fmt::Display for LineCol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Resolves a byte `offset` into `src` to its [`LineCol`].
///
/// Offsets at or past the end of the text resolve to the position one past
/// the final byte, so "unexpected end of input" errors still point somewhere
/// printable.
pub fn line_col(src: &[u8], offset: usize) -> LineCol {
    let offset = offset.min(src.len());
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    for &b in &src[..offset] {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

/// [`line_col`] over `&str` sources.
pub fn line_col_str(src: &str, offset: usize) -> LineCol {
    line_col(src.as_bytes(), offset)
}

/// Returns the full text of the line containing byte `offset` (without its
/// trailing newline), for rendering source excerpts under a diagnostic.
pub fn line_text(src: &str, offset: usize) -> &str {
    let bytes = src.as_bytes();
    let offset = offset.min(bytes.len());
    let start = bytes[..offset]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);
    let end = bytes[offset..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(bytes.len(), |i| offset + i);
    // Slicing at newline boundaries keeps UTF-8 char boundaries intact.
    &src[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_of_text() {
        assert_eq!(line_col(b"abc", 0), LineCol { line: 1, col: 1 });
    }

    #[test]
    fn mid_line() {
        assert_eq!(line_col(b"abc\ndef", 5), LineCol { line: 2, col: 2 });
    }

    #[test]
    fn newline_belongs_to_its_line() {
        assert_eq!(line_col(b"ab\ncd", 2), LineCol { line: 1, col: 3 });
        assert_eq!(line_col(b"ab\ncd", 3), LineCol { line: 2, col: 1 });
    }

    #[test]
    fn offset_past_end_clamps() {
        assert_eq!(line_col(b"ab", 99), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_text_extracts_the_line() {
        let src = "first\nsecond\nthird";
        assert_eq!(line_text(src, 0), "first");
        assert_eq!(line_text(src, 7), "second");
        assert_eq!(line_text(src, src.len()), "third");
    }

    #[test]
    fn line_col_display() {
        assert_eq!(LineCol { line: 3, col: 14 }.to_string(), "3:14");
    }

    #[test]
    fn crlf_line_endings() {
        // \r counts as an ordinary byte of its line; only \n breaks.
        let src = b"ab\r\ncd\r\nef";
        assert_eq!(line_col(src, 2), LineCol { line: 1, col: 3 }); // at \r
        assert_eq!(line_col(src, 3), LineCol { line: 1, col: 4 }); // at \n
        assert_eq!(line_col(src, 4), LineCol { line: 2, col: 1 }); // 'c'
        assert_eq!(line_col(src, 9), LineCol { line: 3, col: 2 }); // 'f'
                                                                   // line_text keeps the \r (it strips only the \n), matching the
                                                                   // documented bytes-not-graphemes contract.
        assert_eq!(line_text("ab\r\ncd\r\nef", 5), "cd\r");
    }

    #[test]
    fn multibyte_utf8_counts_bytes() {
        // 'é' is two bytes; columns are byte columns by contract.
        let src = "aé\nbß"; // a(1) é(2) \n b(1) ß(2)
        assert_eq!(line_col_str(src, 1), LineCol { line: 1, col: 2 }); // at é
        assert_eq!(line_col_str(src, 3), LineCol { line: 1, col: 4 }); // at \n
        assert_eq!(line_col_str(src, 4), LineCol { line: 2, col: 1 }); // at b
        assert_eq!(line_col_str(src, 5), LineCol { line: 2, col: 2 }); // at ß
                                                                       // line_text never splits a multi-byte character: it slices at
                                                                       // newline boundaries only, even for offsets inside a character.
        assert_eq!(line_text(src, 2), "aé");
        assert_eq!(line_text(src, 6), "bß");
    }

    #[test]
    fn end_of_input_positions() {
        // Exactly at the end: one past the final byte.
        assert_eq!(line_col(b"ab\ncd", 5), LineCol { line: 2, col: 3 });
        // End of input right after a trailing newline: start of the next
        // (empty) line — where an "unexpected end of input" points.
        assert_eq!(line_col(b"ab\n", 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_text("ab\n", 3), "");
        // Empty source: everything resolves to START.
        assert_eq!(line_col(b"", 0), LineCol::START);
        assert_eq!(line_col(b"", 42), LineCol::START);
        assert_eq!(line_text("", 7), "");
    }
}
