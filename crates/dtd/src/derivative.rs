//! A second, independent membership engine: Brzozowski derivatives.
//!
//! `Matcher` (the Thompson NFA of [`crate::nfa`]) is the engine used by
//! conformance checking; this module decides the same membership question
//! by rewriting the expression — `w ∈ L(r)` iff the derivative of `r` by
//! `w` is nullable. The two implementations share no code, which makes
//! them ideal differential-testing oracles for each other (see the
//! property tests here and in `tests/`).
//!
//! Derivatives also power [`shortest_word`], used by generators and tests
//! to produce guaranteed members of a content model's language.

use crate::regex::Regex;
use crate::UNLIMITED;
use xnf_govern::{Budget, Exhausted};

/// The Brzozowski derivative `∂_a r`: a regex whose language is
/// `{ w : a·w ∈ L(r) }`. `None` stands for the empty language `∅`
/// (Definition 1 regexes cannot denote `∅`, but derivatives can).
pub fn derivative(re: &Regex, a: &str) -> Option<Regex> {
    match re {
        Regex::Epsilon => None,
        Regex::Elem(n) => {
            if &**n == a {
                Some(Regex::Epsilon)
            } else {
                None
            }
        }
        Regex::Seq(parts) => {
            // ∂(r₁ r₂ … rₙ) = ∂r₁ · r₂…rₙ  ∪  (if r₁ nullable) ∂(r₂…rₙ)
            let (first, rest) = parts.split_first().expect("Seq is non-empty");
            let rest_re = Regex::seq(rest.iter().cloned());
            let left = derivative(first, a).map(|d| Regex::seq([d, rest_re.clone()]));
            let right = if first.nullable() {
                derivative(&rest_re, a)
            } else {
                None
            };
            union_opt(left, right)
        }
        Regex::Alt(parts) => parts.iter().map(|p| derivative(p, a)).fold(None, union_opt),
        Regex::Star(r) => derivative(r, a).map(|d| Regex::seq([d, r.as_ref().clone().star()])),
        Regex::Opt(r) => derivative(r, a),
        Regex::Plus(r) => derivative(r, a).map(|d| Regex::seq([d, r.as_ref().clone().star()])),
    }
}

fn union_opt(a: Option<Regex>, b: Option<Regex>) -> Option<Regex> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(a), Some(b)) => Some(Regex::alt([a, b])),
    }
}

/// Membership by iterated derivatives: `w ∈ L(re)` iff `∂_w re` is
/// nullable.
pub fn matches<'a>(re: &Regex, word: impl IntoIterator<Item = &'a str>) -> bool {
    match matches_governed(re, word, UNLIMITED) {
        Ok(b) => b,
        Err(_) => unreachable!("an unlimited budget cannot exhaust"),
    }
}

/// [`matches`] under a resource [`Budget`]: each derivative step spends
/// one checkpoint and charges the intermediate expression's size against
/// the memory cap (Brzozowski derivatives can grow large on adversarial
/// expressions before simplification tames them).
pub fn matches_governed<'a>(
    re: &Regex,
    word: impl IntoIterator<Item = &'a str>,
    budget: &Budget,
) -> Result<bool, Exhausted> {
    let _span = budget.recorder().span("derivative.check", "automata");
    let mut current = re.clone();
    for a in word {
        budget.checkpoint("derivative.step")?;
        match derivative(&current, a) {
            Some(d) => {
                current = d.simplified();
                budget.charge("derivative.size", current.size() as u64)?;
            }
            None => return Ok(false),
        }
    }
    Ok(current.nullable())
}

/// Produces the length-lexicographically first member of `L(re)` with at
/// most `budget` quantifier unrollings — a guaranteed member of the
/// language, used to build minimal conforming documents.
pub fn shortest_word(re: &Regex) -> Vec<String> {
    fn go(re: &Regex, out: &mut Vec<String>) {
        match re {
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => {}
            Regex::Elem(n) => out.push(n.to_string()),
            Regex::Seq(parts) => {
                for p in parts {
                    go(p, out);
                }
            }
            Regex::Alt(parts) => {
                // Pick the alternative with the shortest minimal word.
                let best = parts
                    .iter()
                    .min_by_key(|p| min_len(p))
                    .expect("Alt is non-empty");
                go(best, out);
            }
            Regex::Plus(r) => go(r, out),
        }
    }
    fn min_len(re: &Regex) -> usize {
        match re {
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => 0,
            Regex::Elem(_) => 1,
            Regex::Seq(parts) => parts.iter().map(min_len).sum(),
            Regex::Alt(parts) => parts.iter().map(min_len).min().unwrap_or(0),
            Regex::Plus(r) => min_len(r),
        }
    }
    let mut out = Vec::new();
    go(re, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Matcher;
    use crate::parse::parse_content_model;
    use crate::ContentModel;

    fn re(s: &str) -> Regex {
        match parse_content_model(s).unwrap() {
            ContentModel::Regex(r) => r,
            ContentModel::Text => panic!("expected a regex"),
        }
    }

    fn agree(r: &Regex, word: &[&str]) {
        let nfa = Matcher::new(r);
        assert_eq!(
            nfa.matches(word.iter().copied()),
            matches(r, word.iter().copied()),
            "engines disagree on {r} vs {word:?}"
        );
    }

    #[test]
    fn engines_agree_on_hand_picked_cases() {
        let cases = [
            (
                "(a, b?, c*)",
                vec![vec!["a"], vec!["a", "b"], vec!["a", "c", "c"], vec!["b"]],
            ),
            ("((a | b)+)", vec![vec![], vec!["a"], vec!["b", "a", "b"]]),
            (
                "((a, b) | c)",
                vec![vec!["a", "b"], vec!["c"], vec!["a"], vec!["a", "b", "c"]],
            ),
            (
                "(a, a)",
                vec![vec!["a"], vec!["a", "a"], vec!["a", "a", "a"]],
            ),
            (
                "(logo*, title, (qna+ | q+ | (p | div | section)+))",
                vec![
                    vec!["title", "qna"],
                    vec!["logo", "title", "p", "div"],
                    vec!["title"],
                    vec!["qna"],
                ],
            ),
        ];
        for (expr, words) in cases {
            let r = re(expr);
            for w in words {
                agree(&r, &w);
            }
        }
    }

    #[test]
    fn exhaustive_small_alphabet_agreement() {
        // All words over {a, b} up to length 4, against a set of shapes.
        let shapes = [
            "(a*, b*)",
            "((a | b)*)",
            "((a, b)*)",
            "(a?, b, a?)",
            "((a, a) | b)",
            "(a+, b?)",
            "((a | (b, a))*)",
        ];
        let alphabet = ["a", "b"];
        for shape in shapes {
            let r = re(shape);
            for len in 0..=4usize {
                let mut word = vec![0usize; len];
                loop {
                    let w: Vec<&str> = word.iter().map(|&i| alphabet[i]).collect();
                    agree(&r, &w);
                    // Increment in base 2.
                    let mut i = 0;
                    loop {
                        if i == len {
                            break;
                        }
                        word[i] += 1;
                        if word[i] < alphabet.len() {
                            break;
                        }
                        word[i] = 0;
                        i += 1;
                    }
                    if i == len {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn shortest_word_is_a_member() {
        for shape in [
            "(a, b?, c*)",
            "((a | b)+)",
            "((a, b) | c)",
            "(x, (p | q), y*)",
            "(a+, (b | (c, d)))",
        ] {
            let r = re(shape);
            let w = shortest_word(&r);
            let refs: Vec<&str> = w.iter().map(String::as_str).collect();
            assert!(
                matches(&r, refs.iter().copied()),
                "{w:?} should match {shape}"
            );
            assert!(Matcher::new(&r).matches(refs.iter().copied()));
        }
    }

    #[test]
    fn governed_derivative_matching_agrees_and_exhausts() {
        let r = re("((a | b)*, c?)");
        let generous = Budget::builder().fuel(10_000).build();
        for w in [&["a", "b", "c"][..], &["c", "a"][..], &[][..]] {
            assert_eq!(
                matches_governed(&r, w.iter().copied(), &generous).unwrap(),
                matches(&r, w.iter().copied()),
            );
        }
        let tiny = Budget::builder().fuel(2).build();
        let long = ["a"; 32];
        let err = matches_governed(&r, long.iter().copied(), &tiny).unwrap_err();
        assert_eq!(err.resource, xnf_govern::Resource::Fuel);
    }

    #[test]
    fn derivative_of_empty_language_paths() {
        assert!(derivative(&Regex::Epsilon, "a").is_none());
        assert!(derivative(&re("(b)"), "a").is_none());
        assert!(matches(&re("(a*)"), []));
        assert!(!matches(&re("(a+)"), []));
    }
}
