//! NFA membership testing for content models.
//!
//! Conformance checking (Definition 3) requires deciding whether the string
//! of children labels of a node belongs to the regular language of its
//! element's content model. We compile [`Regex`] into a Thompson NFA once
//! per element declaration and run a subset simulation per node; words
//! (child sequences) are typically short, and the construction is linear in
//! the size of the expression.

use crate::regex::Regex;
use crate::UNLIMITED;
use std::collections::HashMap;
use xnf_govern::{Budget, Exhausted};

/// A compiled matcher for one content-model regular expression.
#[derive(Debug, Clone)]
pub struct Matcher {
    /// Alphabet interning: element name → symbol index.
    alphabet: HashMap<Box<str>, usize>,
    /// `eps[s]` = ε-successors of state `s`.
    eps: Vec<Vec<u32>>,
    /// `trans[s]` = list of `(symbol, target)` transitions out of `s`.
    trans: Vec<Vec<(usize, u32)>>,
    start: u32,
    accept: u32,
}

struct Builder<'b> {
    eps: Vec<Vec<u32>>,
    trans: Vec<Vec<(usize, u32)>>,
    budget: &'b Budget,
}

impl Builder<'_> {
    fn state(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.trans.push(Vec::new());
        (self.eps.len() - 1) as u32
    }

    /// Thompson construction: returns `(start, accept)` for `re`.
    ///
    /// Governed: each expression node charges ~2 states against the
    /// budget's memory cap, so pathologically large content models stop
    /// early instead of allocating without bound.
    fn compile(
        &mut self,
        re: &Regex,
        alphabet: &HashMap<Box<str>, usize>,
    ) -> Result<(u32, u32), Exhausted> {
        self.budget.charge("nfa.build.node", 2)?;
        Ok(match re {
            Regex::Epsilon => {
                let s = self.state();
                let a = self.state();
                self.eps[s as usize].push(a);
                (s, a)
            }
            Regex::Elem(name) => {
                let s = self.state();
                let a = self.state();
                let sym = alphabet[name];
                self.trans[s as usize].push((sym, a));
                (s, a)
            }
            Regex::Seq(parts) => {
                debug_assert!(!parts.is_empty());
                let mut iter = parts.iter();
                let (start, mut acc) = self.compile(iter.next().expect("non-empty"), alphabet)?;
                for p in iter {
                    let (s2, a2) = self.compile(p, alphabet)?;
                    self.eps[acc as usize].push(s2);
                    acc = a2;
                }
                (start, acc)
            }
            Regex::Alt(parts) => {
                let s = self.state();
                let a = self.state();
                for p in parts {
                    let (ps, pa) = self.compile(p, alphabet)?;
                    self.eps[s as usize].push(ps);
                    self.eps[pa as usize].push(a);
                }
                (s, a)
            }
            Regex::Star(r) => {
                let s = self.state();
                let a = self.state();
                let (rs, ra) = self.compile(r, alphabet)?;
                self.eps[s as usize].push(rs);
                self.eps[s as usize].push(a);
                self.eps[ra as usize].push(rs);
                self.eps[ra as usize].push(a);
                (s, a)
            }
            Regex::Opt(r) => {
                let s = self.state();
                let a = self.state();
                let (rs, ra) = self.compile(r, alphabet)?;
                self.eps[s as usize].push(rs);
                self.eps[s as usize].push(a);
                self.eps[ra as usize].push(a);
                (s, a)
            }
            Regex::Plus(r) => {
                let (rs, ra) = self.compile(r, alphabet)?;
                let a = self.state();
                self.eps[ra as usize].push(rs);
                self.eps[ra as usize].push(a);
                (rs, a)
            }
        })
    }
}

impl Matcher {
    /// Compiles `re` into an NFA matcher.
    pub fn new(re: &Regex) -> Self {
        match Self::new_governed(re, UNLIMITED) {
            Ok(m) => m,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// Compiles `re` under a resource [`Budget`]: the construction charges
    /// its state count against the budget's memory cap.
    pub fn new_governed(re: &Regex, budget: &Budget) -> Result<Self, Exhausted> {
        let _span = budget.recorder().span("glushkov.build", "automata");
        let mut alphabet: HashMap<Box<str>, usize> = HashMap::new();
        re.visit_leaves(&mut |name| {
            let next = alphabet.len();
            alphabet.entry(name.into()).or_insert(next);
        });
        let mut b = Builder {
            eps: Vec::new(),
            trans: Vec::new(),
            budget,
        };
        let (start, accept) = b.compile(re, &alphabet)?;
        Ok(Matcher {
            alphabet,
            eps: b.eps,
            trans: b.trans,
            start,
            accept,
        })
    }

    fn closure(&self, set: &mut [bool], stack: &mut Vec<u32>) {
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if !set[t as usize] {
                    set[t as usize] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// Whether the word (a sequence of element names) belongs to the
    /// language of the compiled expression.
    pub fn matches<'a>(&self, word: impl IntoIterator<Item = &'a str>) -> bool {
        match self.matches_governed(word, UNLIMITED) {
            Ok(b) => b,
            Err(_) => unreachable!("an unlimited budget cannot exhaust"),
        }
    }

    /// [`matches`](Matcher::matches) under a resource [`Budget`]: the
    /// subset simulation spends one checkpoint per input symbol.
    pub fn matches_governed<'a>(
        &self,
        word: impl IntoIterator<Item = &'a str>,
        budget: &Budget,
    ) -> Result<bool, Exhausted> {
        let n = self.eps.len();
        let mut current = vec![false; n];
        current[self.start as usize] = true;
        let mut stack = vec![self.start];
        self.closure(&mut current, &mut stack);

        for sym_name in word {
            budget.checkpoint("nfa.match.step")?;
            let Some(&sym) = self.alphabet.get(sym_name) else {
                return Ok(false); // symbol outside the alphabet: no word matches
            };
            let mut next = vec![false; n];
            let mut stack = Vec::new();
            for (s, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                for &(t_sym, t) in &self.trans[s] {
                    if t_sym == sym && !next[t as usize] {
                        next[t as usize] = true;
                        stack.push(t);
                    }
                }
            }
            if stack.is_empty() {
                return Ok(false);
            }
            self.closure(&mut next, &mut stack);
            current = next;
        }
        Ok(current[self.accept as usize])
    }

    /// Number of NFA states (for diagnostics and size accounting).
    pub fn num_states(&self) -> usize {
        self.eps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn m(re: &Regex) -> Matcher {
        Matcher::new(re)
    }

    fn a() -> Regex {
        Regex::elem("a")
    }
    fn b() -> Regex {
        Regex::elem("b")
    }
    fn c() -> Regex {
        Regex::elem("c")
    }

    #[test]
    fn epsilon_matches_only_empty() {
        let m = m(&Regex::Epsilon);
        assert!(m.matches([]));
        assert!(!m.matches(["a"]));
    }

    #[test]
    fn single_letter() {
        let m = m(&a());
        assert!(m.matches(["a"]));
        assert!(!m.matches([]));
        assert!(!m.matches(["a", "a"]));
        assert!(!m.matches(["b"]));
    }

    #[test]
    fn sequence() {
        let m = m(&Regex::seq([a(), b(), c()]));
        assert!(m.matches(["a", "b", "c"]));
        assert!(!m.matches(["a", "b"]));
        assert!(!m.matches(["a", "c", "b"]));
    }

    #[test]
    fn alternation() {
        let m = m(&Regex::alt([a(), Regex::seq([b(), c()])]));
        assert!(m.matches(["a"]));
        assert!(m.matches(["b", "c"]));
        assert!(!m.matches(["a", "b", "c"]));
        assert!(!m.matches(["b"]));
    }

    #[test]
    fn star() {
        let m = m(&a().star());
        assert!(m.matches([]));
        assert!(m.matches(["a"]));
        assert!(m.matches(["a", "a", "a", "a"]));
        assert!(!m.matches(["a", "b"]));
    }

    #[test]
    fn plus_and_opt() {
        let m_plus = m(&a().plus());
        assert!(!m_plus.matches([]));
        assert!(m_plus.matches(["a"]));
        assert!(m_plus.matches(["a", "a"]));
        let m_opt = m(&a().opt());
        assert!(m_opt.matches([]));
        assert!(m_opt.matches(["a"]));
        assert!(!m_opt.matches(["a", "a"]));
    }

    #[test]
    fn mixed_content_model() {
        // (a | b)*, c?, d+  — a realistic DTD content model shape.
        let re = Regex::seq([
            Regex::alt([a(), b()]).star(),
            c().opt(),
            Regex::elem("d").plus(),
        ]);
        let m = m(&re);
        assert!(m.matches(["d"]));
        assert!(m.matches(["a", "b", "a", "c", "d", "d"]));
        assert!(m.matches(["b", "d"]));
        assert!(!m.matches(["c"]));
        assert!(!m.matches(["a", "c", "c", "d"]));
        assert!(!m.matches(["d", "a"]));
    }

    #[test]
    fn governed_matching_agrees_with_ungoverned() {
        let re = Regex::seq([Regex::alt([a(), b()]).star(), c().opt()]);
        let matcher = m(&re);
        let generous = Budget::builder().fuel(1_000_000).build();
        for word in [&["a", "b", "c"][..], &["c", "c"][..], &[][..]] {
            assert_eq!(
                matcher
                    .matches_governed(word.iter().copied(), &generous)
                    .unwrap(),
                matcher.matches(word.iter().copied()),
            );
        }
    }

    #[test]
    fn governed_matching_exhausts_on_tiny_fuel() {
        let matcher = m(&a().star());
        let budget = Budget::builder().fuel(3).build();
        let word = ["a"; 16];
        let err = matcher
            .matches_governed(word.iter().copied(), &budget)
            .unwrap_err();
        assert_eq!(err.resource, xnf_govern::Resource::Fuel);
    }

    #[test]
    fn governed_build_respects_memory_cap() {
        let re = Regex::seq((0..64).map(|i| Regex::elem(format!("e{i}"))));
        assert!(Matcher::new_governed(&re, &Budget::builder().memory(16).build()).is_err());
        let m = Matcher::new_governed(&re, &Budget::builder().memory(100_000).build()).unwrap();
        assert_eq!(m.num_states(), Matcher::new(&re).num_states());
    }

    #[test]
    fn the_paper_non_simple_example() {
        // <!ELEMENT a (b,b)> from Section 7.
        let m = m(&Regex::seq([b(), b()]));
        assert!(m.matches(["b", "b"]));
        assert!(!m.matches(["b"]));
        assert!(!m.matches(["b", "b", "b"]));
    }

    #[test]
    fn faq_section_content_model() {
        // <!ELEMENT section (logo*, title, (qna+ | q+ | (p | div | section)+))>
        let re = Regex::seq([
            Regex::elem("logo").star(),
            Regex::elem("title"),
            Regex::alt([
                Regex::elem("qna").plus(),
                Regex::elem("q").plus(),
                Regex::alt([Regex::elem("p"), Regex::elem("div"), Regex::elem("section")]).plus(),
            ]),
        ]);
        let m = m(&re);
        assert!(m.matches(["title", "qna"]));
        assert!(m.matches(["logo", "logo", "title", "q", "q"]));
        assert!(m.matches(["title", "p", "div", "section"]));
        assert!(!m.matches(["title"]));
        assert!(!m.matches(["title", "qna", "q"]));
    }
}
