//! # `xnf-dtd` — Document Type Definitions for the XNF normalization library
//!
//! This crate implements the DTD substrate of Arenas & Libkin, *"A Normal
//! Form for XML Documents"* (PODS 2002): Definition 1 (DTDs as
//! `(E, A, P, R, r)`), the path machinery of Section 2 (`paths(D)`,
//! `EPaths(D)`, recursion), and the Section 7 classification of content
//! models (trivial / simple regular expressions, simple disjunctions,
//! disjunctive DTDs, and the complexity measure `N_D`).
//!
//! The crate is self-contained: it provides its own regular-expression AST
//! ([`Regex`]), a parser for DTD declaration syntax ([`parse_dtd`]), an NFA
//! membership engine used for conformance checking ([`nfa::Matcher`]), and a
//! serializer back to DTD syntax.
//!
//! ## Example
//!
//! ```
//! use xnf_dtd::parse_dtd;
//!
//! let dtd = parse_dtd(r#"
//!     <!ELEMENT courses (course*)>
//!     <!ELEMENT course (title)>
//!     <!ATTLIST course cno CDATA #REQUIRED>
//!     <!ELEMENT title (#PCDATA)>
//! "#).unwrap();
//! assert_eq!(dtd.root_name(), "courses");
//! let paths = dtd.paths().unwrap();
//! assert!(paths.resolve_str("courses.course.@cno").is_some());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod derivative;
pub mod dtd;
pub mod nfa;
pub mod parse;
pub mod paths;
pub mod regex;
pub mod span;

pub use crate::classify::{DtdClass, Multiplicity, SimpleContent};
pub use crate::dtd::{ContentModel, Dtd, DtdBuilder, ElemId, ElementDecl};
pub use crate::parse::{parse_dtd, parse_dtd_governed, ParseLimits};
pub use crate::paths::{Path, PathId, PathSet, Step};
pub use crate::regex::Regex;
pub use crate::span::LineCol;

use std::fmt;

/// The shared ungoverned budget, for infallible wrappers around governed
/// internals (its checkpoints can never fail).
pub(crate) const UNLIMITED: &xnf_govern::Budget = &xnf_govern::Budget::unlimited();

/// Errors produced while building, parsing or analysing DTDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// An element name was referenced in a content model but never declared
    /// with an `<!ELEMENT …>` declaration.
    UndeclaredElement {
        /// The undeclared element name.
        name: String,
        /// The element whose content model references it.
        referenced_by: String,
    },
    /// The same element was declared twice.
    DuplicateElement(String),
    /// The same attribute was declared twice for one element.
    DuplicateAttribute {
        /// Element carrying the attribute.
        element: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// The root element type occurs in some content model. The paper assumes
    /// (without loss of generality, Definition 1) that the root does not
    /// occur in `P(τ)` for any `τ ∈ E`.
    RootReferenced {
        /// The element whose content model mentions the root.
        referenced_by: String,
    },
    /// An attribute was declared for an element with no `<!ELEMENT …>`
    /// declaration.
    AttlistForUndeclared(String),
    /// A syntax error in DTD declaration syntax or in a content-model
    /// regular expression.
    Syntax {
        /// Byte offset of the error in the input.
        offset: usize,
        /// 1-based line/column of `offset`, resolved against the input at
        /// construction time (see [`span::line_col`]).
        at: LineCol,
        /// Human-readable description.
        message: String,
    },
    /// The requested operation needs the (finite) path set of a
    /// non-recursive DTD, but the DTD is recursive (`paths(D)` is infinite).
    RecursiveDtd {
        /// An element type participating in a reference cycle.
        witness: String,
    },
    /// A path string could not be resolved against `paths(D)`.
    NoSuchPath(String),
    /// A resource budget ran out mid-computation (see [`xnf_govern`]).
    Exhausted(xnf_govern::Exhausted),
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::UndeclaredElement {
                name,
                referenced_by,
            } => write!(
                f,
                "element `{name}` is referenced by `{referenced_by}` but never declared"
            ),
            DtdError::DuplicateElement(name) => {
                write!(f, "element `{name}` is declared more than once")
            }
            DtdError::DuplicateAttribute { element, attribute } => write!(
                f,
                "attribute `@{attribute}` is declared more than once for element `{element}`"
            ),
            DtdError::RootReferenced { referenced_by } => write!(
                f,
                "the root element occurs in the content model of `{referenced_by}` \
                 (Definition 1 requires the root not to occur in any P(τ))"
            ),
            DtdError::AttlistForUndeclared(name) => {
                write!(f, "ATTLIST for undeclared element `{name}`")
            }
            DtdError::Syntax {
                offset,
                at,
                message,
            } => {
                write!(
                    f,
                    "syntax error at line {}, column {} (byte {offset}): {message}",
                    at.line, at.col
                )
            }
            DtdError::RecursiveDtd { witness } => write!(
                f,
                "DTD is recursive (element `{witness}` participates in a cycle); \
                 paths(D) is infinite"
            ),
            DtdError::NoSuchPath(p) => write!(f, "`{p}` is not a path of this DTD"),
            DtdError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl From<xnf_govern::Exhausted> for DtdError {
    fn from(e: xnf_govern::Exhausted) -> Self {
        DtdError::Exhausted(e)
    }
}

impl DtdError {
    /// Constructs a [`DtdError::Syntax`] pointing at `offset` into `src`,
    /// resolving the line/column eagerly (the error outlives the source).
    pub fn syntax(src: &[u8], offset: usize, message: impl Into<String>) -> DtdError {
        DtdError::Syntax {
            offset,
            at: span::line_col(src, offset),
            message: message.into(),
        }
    }
}

impl std::error::Error for DtdError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, DtdError>;
