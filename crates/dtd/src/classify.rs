//! Section 7 — classifying content models: trivial and *simple* regular
//! expressions, simple disjunctions, disjunctive DTDs, and the complexity
//! measure `N_D` of Theorem 4.
//!
//! A regular expression is **trivial** if it is `s₁, …, sₙ` where each `sᵢ`
//! is `aᵢ`, `aᵢ?`, `aᵢ*` or `aᵢ⁺` with pairwise-distinct letters. An
//! expression `s` is **simple** if some trivial `s'` has the same language
//! up to permutation of words. Equivalently (and this is how we decide it):
//! the Parikh image of `L(s)` equals a product of per-letter intervals, one
//! of `[1,1]`, `[0,1]`, `[0,∞]`, `[1,∞]`.
//!
//! We compute the Parikh image bottom-up in an *exact-box* domain: each
//! sub-expression either yields its exact Parikh set as a box (product of
//! integer intervals) or `None`. Every rule is exact, so a `Some` answer is
//! always correct. A `None` answer means "not expressible as a box by this
//! syntax-directed analysis"; for unions of three or more boxes that only
//! combine into a box jointly (e.g. `(ε|a|b|ab)`, which no real-world DTD
//! writes instead of `a?, b?`) the analysis is conservative. This matches
//! the paper, which defines simplicity semantically and observes that
//! practical DTDs are written in the simple shape directly.

use crate::dtd::{ContentModel, Dtd};
use crate::regex::Regex;
use std::collections::BTreeMap;
use std::fmt;

/// How many times a letter may occur in words of a simple expression — the
/// four per-letter shapes of a trivial regular expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Multiplicity {
    /// Exactly once (`a`).
    One,
    /// At most once (`a?`).
    Opt,
    /// Any number of times (`a*`).
    Star,
    /// At least once (`a⁺`).
    Plus,
}

impl Multiplicity {
    /// Whether a word may contain zero occurrences of the letter.
    pub fn optional(self) -> bool {
        matches!(self, Multiplicity::Opt | Multiplicity::Star)
    }

    /// Whether a word may contain two or more occurrences of the letter.
    pub fn repeatable(self) -> bool {
        matches!(self, Multiplicity::Star | Multiplicity::Plus)
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Multiplicity::One => Ok(()),
            Multiplicity::Opt => write!(f, "?"),
            Multiplicity::Star => write!(f, "*"),
            Multiplicity::Plus => write!(f, "+"),
        }
    }
}

/// An integer interval `[lo, hi]` with `hi = None` meaning `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Iv {
    lo: u64,
    hi: Option<u64>,
}

impl Iv {
    const ZERO: Iv = Iv { lo: 0, hi: Some(0) };
    const ONE: Iv = Iv { lo: 1, hi: Some(1) };

    fn add(self, other: Iv) -> Iv {
        Iv {
            lo: self.lo + other.lo,
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            },
        }
    }

    fn contains_iv(self, other: Iv) -> bool {
        self.lo <= other.lo
            && match (self.hi, other.hi) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => b <= a,
            }
    }

    /// Whether `self ∪ other` is an interval (they overlap or are
    /// adjacent); if so returns the hull.
    fn union_if_interval(self, other: Iv) -> Option<Iv> {
        let lo_first = if self.lo <= other.lo { self } else { other };
        let hi_second = if self.lo <= other.lo { other } else { self };
        let contiguous = match lo_first.hi {
            None => true,
            Some(h) => hi_second.lo <= h + 1,
        };
        if !contiguous {
            return None;
        }
        Some(Iv {
            lo: lo_first.lo,
            hi: match (self.hi, other.hi) {
                (None, _) | (_, None) => None,
                (Some(a), Some(b)) => Some(a.max(b)),
            },
        })
    }

    fn as_multiplicity(self) -> Option<Multiplicity> {
        match (self.lo, self.hi) {
            (1, Some(1)) => Some(Multiplicity::One),
            (0, Some(1)) => Some(Multiplicity::Opt),
            (0, None) => Some(Multiplicity::Star),
            (1, None) => Some(Multiplicity::Plus),
            _ => None,
        }
    }
}

/// An exact Parikh box: letters mapped to intervals; absent letters are
/// implicitly `[0,0]`.
type Box_ = BTreeMap<Box<str>, Iv>;

fn box_subset(a: &Box_, b: &Box_) -> bool {
    let get = |m: &Box_, k: &str| m.get(k).copied().unwrap_or(Iv::ZERO);
    a.keys()
        .chain(b.keys())
        .all(|k| get(b, k).contains_iv(get(a, k)))
}

/// Exact Parikh box of `re`, or `None` if not (established to be) a box.
fn parikh_box(re: &Regex) -> Option<Box_> {
    match re {
        Regex::Epsilon => Some(Box_::new()),
        Regex::Elem(name) => {
            let mut m = Box_::new();
            m.insert(name.clone(), Iv::ONE);
            Some(m)
        }
        Regex::Seq(parts) => {
            let mut acc = Box_::new();
            for p in parts {
                let b = parikh_box(p)?;
                for (k, iv) in b {
                    let entry = acc.entry(k).or_insert(Iv::ZERO);
                    *entry = entry.add(iv);
                }
            }
            Some(acc)
        }
        Regex::Alt(parts) => {
            let mut acc = parikh_box(&parts[0])?;
            for p in &parts[1..] {
                let b = parikh_box(p)?;
                acc = box_union(&acc, &b)?;
            }
            Some(acc)
        }
        Regex::Star(r) => star_box(r),
        Regex::Opt(r) => {
            let b = parikh_box(r)?;
            box_union(&b, &Box_::new())
        }
        Regex::Plus(r) => {
            let b = parikh_box(r)?;
            let starred = star_box(r)?;
            let mut acc = b;
            for (k, iv) in starred {
                let entry = acc.entry(k).or_insert(Iv::ZERO);
                *entry = entry.add(iv);
            }
            Some(acc)
        }
    }
}

/// Exact Parikh box of `r*`, or `None` if `Parikh(L(r*))` is not a box.
///
/// `Parikh(L(r*))` is the monoid generated by `Parikh(L(r))`, which equals
/// the full box `∏_{a ∈ alphabet(r)} [0,∞]` iff every unit vector `e_a` is
/// in it — and a *sum* of non-negative vectors equals `e_a` only when `e_a`
/// itself is a generator, i.e. the single-letter word `a` belongs to
/// `L(r)`. That word membership is decided exactly with the NFA, so this
/// rule is both sound and complete (e.g. it accepts `(a|b|c)*` and
/// `(a?, b?)*`, and rejects `(a, b)*`).
fn star_box(r: &Regex) -> Option<Box_> {
    let letters = r.alphabet();
    if letters.is_empty() {
        return Some(Box_::new());
    }
    let m = crate::nfa::Matcher::new(r);
    if letters.iter().all(|a| m.matches([*a])) {
        Some(
            letters
                .into_iter()
                .map(|a| (Box::from(a), Iv { lo: 0, hi: None }))
                .collect(),
        )
    } else {
        None
    }
}

/// Conservative per-letter occurrence bounds `[lo, hi]` (`hi = None` = ∞)
/// for **any** regular expression — the interval *hull* of the Parikh
/// image, not the exact set. Sound for both directions: every word has at
/// least `lo` and at most `hi` occurrences of the letter. Used by the
/// implication chase to derive "required child" (`lo ≥ 1`) and
/// "at-most-one child" (`hi ≤ 1`) facts on arbitrary (even non-simple)
/// content models.
pub fn letter_bounds(re: &Regex) -> BTreeMap<Box<str>, (u64, Option<u64>)> {
    fn hull(re: &Regex) -> BTreeMap<Box<str>, (u64, Option<u64>)> {
        match re {
            Regex::Epsilon => BTreeMap::new(),
            Regex::Elem(n) => BTreeMap::from([(n.clone(), (1, Some(1)))]),
            Regex::Seq(parts) => {
                let mut acc: BTreeMap<Box<str>, (u64, Option<u64>)> = BTreeMap::new();
                for p in parts {
                    for (k, (lo, hi)) in hull(p) {
                        let e = acc.entry(k).or_insert((0, Some(0)));
                        e.0 += lo;
                        e.1 = match (e.1, hi) {
                            (Some(a), Some(b)) => Some(a + b),
                            _ => None,
                        };
                    }
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut acc: BTreeMap<Box<str>, (u64, Option<u64>)> = BTreeMap::new();
                for (i, p) in parts.iter().enumerate() {
                    let b = hull(p);
                    // Letters absent from one alternative have lo = 0.
                    for (k, v) in acc.iter_mut() {
                        if !b.contains_key(k) {
                            v.0 = 0;
                        }
                        let _ = k;
                    }
                    for (k, (lo, hi)) in b {
                        match acc.get_mut(&k) {
                            Some(e) => {
                                e.0 = e.0.min(lo);
                                e.1 = match (e.1, hi) {
                                    (Some(a), Some(b)) => Some(a.max(b)),
                                    _ => None,
                                };
                            }
                            None => {
                                acc.insert(k, (if i == 0 { lo } else { 0 }, hi));
                            }
                        }
                    }
                }
                acc
            }
            Regex::Star(r) => hull(r).into_keys().map(|k| (k, (0, None))).collect(),
            Regex::Opt(r) => hull(r)
                .into_iter()
                .map(|(k, (_, hi))| (k, (0, hi)))
                .collect(),
            Regex::Plus(r) => hull(r)
                .into_iter()
                .map(|(k, (lo, hi))| (k, (lo, if hi == Some(0) { hi } else { None })))
                .collect(),
        }
    }
    hull(re)
}

/// Union of two exact boxes, if the union is itself a box.
///
/// `B₁ ∪ B₂` is a box iff one contains the other, or they differ in exactly
/// one letter-dimension whose two intervals union to an interval.
fn box_union(a: &Box_, b: &Box_) -> Option<Box_> {
    if box_subset(a, b) {
        return Some(b.clone());
    }
    if box_subset(b, a) {
        return Some(a.clone());
    }
    let get = |m: &Box_, k: &str| m.get(k).copied().unwrap_or(Iv::ZERO);
    let mut keys: Vec<&str> = a.keys().chain(b.keys()).map(|k| &**k).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut diff_key: Option<&str> = None;
    for k in &keys {
        if get(a, k) != get(b, k) {
            if diff_key.is_some() {
                return None; // differ in ≥ 2 dimensions
            }
            diff_key = Some(k);
        }
    }
    let k = diff_key.expect("boxes differ (neither contains the other)");
    let merged = get(a, k).union_if_interval(get(b, k))?;
    let mut out = a.clone();
    if merged == Iv::ZERO {
        out.remove(k);
    } else {
        out.insert(k.into(), merged);
    }
    Some(out)
}

/// The classification of one element's content model within a disjunctive
/// DTD: either `#PCDATA`, or a concatenation of factors, each a simple
/// regular expression (letters with multiplicities) or a simple disjunction
/// (exactly one letter from a set, or none if nullable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleContent {
    /// `#PCDATA`.
    Text,
    /// A concatenation of disjunctive factors with pairwise-disjoint
    /// alphabets.
    Factors(Vec<Factor>),
}

/// One factor of a disjunctive content model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Factor {
    /// A simple regular expression: each letter occurs independently with
    /// the given multiplicity.
    Simple(BTreeMap<Box<str>, Multiplicity>),
    /// A simple disjunction `(a₁ | a₂ | … | aₖ)` (optionally with an `ε`
    /// alternative): a word is one letter from the set, or empty if
    /// `nullable`.
    Disjunction {
        /// The alternative letters, in syntactic order.
        letters: Vec<Box<str>>,
        /// Whether `ε` is among the alternatives.
        nullable: bool,
    },
}

impl SimpleContent {
    /// All letters of the content model with a conservative multiplicity:
    /// disjunction letters are reported as [`Multiplicity::Opt`] (they
    /// occur at most once, possibly zero times).
    pub fn letter_multiplicities(&self) -> BTreeMap<Box<str>, Multiplicity> {
        let mut out = BTreeMap::new();
        if let SimpleContent::Factors(factors) = self {
            for f in factors {
                match f {
                    Factor::Simple(m) => {
                        out.extend(m.iter().map(|(k, v)| (k.clone(), *v)));
                    }
                    Factor::Disjunction { letters, nullable } => {
                        for l in letters {
                            let m = if letters.len() == 1 && !nullable {
                                Multiplicity::One
                            } else {
                                Multiplicity::Opt
                            };
                            out.insert(l.clone(), m);
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether every factor is a simple regular expression (no unrestricted
    /// disjunction) — i.e. the content model as a whole is *simple*.
    pub fn is_simple(&self) -> bool {
        match self {
            SimpleContent::Text => true,
            SimpleContent::Factors(fs) => fs.iter().all(|f| matches!(f, Factor::Simple(_))),
        }
    }

    /// The per-factor contribution to `N_τ` (Theorem 4): 1 for a simple
    /// factor, number-of-alternatives for a disjunction (`|`-count + 1,
    /// counting the `ε` alternative).
    fn factor_complexities(&self) -> Vec<u128> {
        match self {
            SimpleContent::Text => Vec::new(),
            SimpleContent::Factors(fs) => fs
                .iter()
                .map(|f| match f {
                    Factor::Simple(_) => 1,
                    Factor::Disjunction { letters, nullable } => {
                        letters.len() as u128 + u128::from(*nullable)
                    }
                })
                .collect(),
        }
    }
}

/// If `re` is simple, its per-letter multiplicity map (the trivial
/// expression witnessing simplicity).
pub fn simple_multiplicities(re: &Regex) -> Option<BTreeMap<Box<str>, Multiplicity>> {
    let b = parikh_box(re)?;
    let mut out = BTreeMap::new();
    for (k, iv) in b {
        if iv == Iv::ZERO {
            continue; // letter cannot occur; omit from the trivial form
        }
        out.insert(k, iv.as_multiplicity()?);
    }
    Some(out)
}

/// Whether `re` is a *trivial* regular expression (syntactically
/// `s₁, …, sₙ` with distinct letters, each `a`, `a?`, `a*` or `a⁺`).
pub fn is_trivial(re: &Regex) -> bool {
    fn factor_letter(r: &Regex) -> Option<&str> {
        match r {
            Regex::Elem(n) => Some(n),
            Regex::Opt(inner) | Regex::Star(inner) | Regex::Plus(inner) => match &**inner {
                Regex::Elem(n) => Some(n),
                _ => None,
            },
            _ => None,
        }
    }
    let factors: Vec<&Regex> = match re {
        Regex::Epsilon => return true,
        Regex::Seq(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut seen = Vec::new();
    for f in factors {
        match factor_letter(f) {
            Some(l) if !seen.contains(&l) => seen.push(l),
            _ => return false,
        }
    }
    true
}

/// If `re` is a simple disjunction (`ε`, a letter, or a `|` of simple
/// disjunctions over disjoint alphabets — `?` accepted as an `ε`
/// alternative), returns its flattened letters and nullability.
pub fn as_simple_disjunction(re: &Regex) -> Option<(Vec<Box<str>>, bool)> {
    match re {
        Regex::Epsilon => Some((Vec::new(), true)),
        Regex::Elem(n) => Some((vec![n.clone()], false)),
        Regex::Opt(inner) => {
            let (letters, _) = as_simple_disjunction(inner)?;
            Some((letters, true))
        }
        Regex::Alt(parts) => {
            let mut letters: Vec<Box<str>> = Vec::new();
            let mut nullable = false;
            for p in parts {
                let (ls, n) = as_simple_disjunction(p)?;
                for l in ls {
                    if letters.contains(&l) {
                        return None; // alphabets must be disjoint
                    }
                    letters.push(l);
                }
                nullable |= n;
            }
            Some((letters, nullable))
        }
        _ => None,
    }
}

/// Classifies a content model as disjunctive: a concatenation of factors,
/// each simple or a simple disjunction, over pairwise-disjoint alphabets.
pub fn classify_content(cm: &ContentModel) -> Option<SimpleContent> {
    let re = match cm {
        ContentModel::Text => return Some(SimpleContent::Text),
        ContentModel::Regex(re) => re,
    };
    let parts: Vec<&Regex> = match re {
        Regex::Seq(parts) => parts.iter().collect(),
        other => vec![other],
    };
    let mut factors = Vec::with_capacity(parts.len());
    let mut seen: Vec<Box<str>> = Vec::new();
    // Greedily merge maximal runs of simple sub-factors; a non-simple part
    // must itself be a simple disjunction.
    for p in parts {
        let factor = if let Some(m) = simple_multiplicities(p) {
            Factor::Simple(m)
        } else if let Some((letters, nullable)) = as_simple_disjunction(p) {
            Factor::Disjunction { letters, nullable }
        } else {
            return None;
        };
        let letters: Vec<Box<str>> = match &factor {
            Factor::Simple(m) => m.keys().cloned().collect(),
            Factor::Disjunction { letters, .. } => letters.clone(),
        };
        for l in &letters {
            if seen.contains(l) {
                return None; // factor alphabets must be pairwise disjoint
            }
        }
        seen.extend(letters);
        factors.push(factor);
    }
    // Coalesce adjacent simple factors into one (their concatenation is
    // simple because alphabets are disjoint).
    let mut merged: Vec<Factor> = Vec::with_capacity(factors.len());
    for f in factors {
        match (merged.last_mut(), f) {
            (Some(Factor::Simple(acc)), Factor::Simple(m)) => acc.extend(m),
            (_, f) => merged.push(f),
        }
    }
    Some(SimpleContent::Factors(merged))
}

/// The class of a DTD in the Section 7 hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdClass {
    /// Every content model is simple (Theorem 3: implication in quadratic
    /// time).
    Simple,
    /// Every content model is disjunctive; carries the complexity measure
    /// `N_D` (Theorem 4: polynomial when `N_D ≤ k·log|D|`). Saturates at
    /// `u128::MAX`.
    Disjunctive {
        /// The complexity measure `N_D`.
        nd: u128,
    },
    /// At least one content model is not disjunctive (implication is
    /// coNP-complete in general, Theorem 5).
    General,
}

/// The per-element classification of a whole DTD, cached for the chase.
#[derive(Debug, Clone)]
pub struct DtdShapes {
    /// Index `ElemId → SimpleContent` (or `None` when not disjunctive).
    shapes: Vec<Option<SimpleContent>>,
    class: DtdClass,
}

impl DtdShapes {
    /// Classifies every element of `dtd` and computes the DTD class and
    /// `N_D`.
    ///
    /// `N_D` needs `|{p ∈ paths(D) : last(p) = τ}|`, so for recursive DTDs
    /// (infinite path sets) `N_D` saturates and the class degrades
    /// gracefully; path counts use the supplied `paths` when available.
    pub fn analyze(dtd: &Dtd) -> DtdShapes {
        let shapes: Vec<Option<SimpleContent>> = dtd
            .elements()
            .map(|e| classify_content(dtd.content(e)))
            .collect();
        let all_disjunctive = shapes.iter().all(Option::is_some);
        let all_simple = all_disjunctive && shapes.iter().flatten().all(SimpleContent::is_simple);
        let class = if all_simple {
            DtdClass::Simple
        } else if all_disjunctive {
            let nd = compute_nd(dtd, &shapes);
            DtdClass::Disjunctive { nd }
        } else {
            DtdClass::General
        };
        DtdShapes { shapes, class }
    }

    /// The shape of element `e`'s content model, if disjunctive.
    pub fn shape(&self, e: crate::dtd::ElemId) -> Option<&SimpleContent> {
        self.shapes[e.index()].as_ref()
    }

    /// The DTD class.
    pub fn class(&self) -> &DtdClass {
        &self.class
    }

    /// Whether the whole DTD is simple.
    pub fn is_simple(&self) -> bool {
        matches!(self.class, DtdClass::Simple)
    }

    /// Whether the whole DTD is disjunctive (simple DTDs included).
    pub fn is_disjunctive(&self) -> bool {
        !matches!(self.class, DtdClass::General)
    }
}

/// `N_D = ∏_τ N_τ` (Theorem 4), saturating.
fn compute_nd(dtd: &Dtd, shapes: &[Option<SimpleContent>]) -> u128 {
    // Count paths ending in each element type. For recursive DTDs this is
    // unbounded: saturate.
    let path_counts: Vec<u128> = if dtd.is_recursive() {
        vec![u128::MAX; dtd.num_elements()]
    } else {
        let ps = dtd.paths_bounded(usize::MAX);
        let mut counts = vec![0u128; dtd.num_elements()];
        for p in ps.iter() {
            if let Some(e) = ps.last_elem(p) {
                counts[e.index()] += 1;
            }
        }
        counts
    };
    let mut nd: u128 = 1;
    for e in dtd.elements() {
        let shape = shapes[e.index()].as_ref().expect("disjunctive DTD");
        let n_tau = if shape.is_simple() {
            1
        } else {
            let mut acc: u128 = path_counts[e.index()];
            for c in shape.factor_complexities() {
                acc = acc.saturating_mul(c);
            }
            acc
        };
        nd = nd.saturating_mul(n_tau);
    }
    nd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::Dtd;
    use crate::parse::parse_content_model;

    fn re(s: &str) -> Regex {
        match parse_content_model(s).unwrap() {
            ContentModel::Regex(r) => r,
            ContentModel::Text => panic!("expected regex"),
        }
    }

    #[test]
    fn trivial_expressions() {
        assert!(is_trivial(&re("(a, b?, c*, d+)")));
        assert!(is_trivial(&re("(a)")));
        assert!(is_trivial(&Regex::Epsilon));
        assert!(!is_trivial(&re("(a, a)")));
        assert!(!is_trivial(&re("(a | b)")));
        assert!(!is_trivial(&re("((a, b)*)")));
    }

    #[test]
    fn paper_example_alternation_star_is_simple() {
        // "(a|b|c)* is simple: a*, b*, c* is trivial …" (Section 7).
        let m = simple_multiplicities(&re("((a | b | c)*)")).unwrap();
        assert_eq!(m.len(), 3);
        assert!(m.values().all(|&v| v == Multiplicity::Star));
    }

    #[test]
    fn sequence_of_distinct_letters_is_simple() {
        let m = simple_multiplicities(&re("(title, taken_by)")).unwrap();
        assert_eq!(m[&Box::from("title")], Multiplicity::One);
        assert_eq!(m[&Box::from("taken_by")], Multiplicity::One);
    }

    #[test]
    fn paper_non_simple_examples() {
        // (a, b) IS simple (trivial witness: a, b) but (a, a) is not, and a
        // bare disjunction (a | b) is not.
        assert!(simple_multiplicities(&re("(a, b)")).is_some());
        assert!(simple_multiplicities(&re("(a, a)")).is_none());
        assert!(simple_multiplicities(&re("(a | b)")).is_none());
        assert!(simple_multiplicities(&re("((a, b)?)")).is_none());
        assert!(simple_multiplicities(&re("((a, b)*)")).is_none());
        assert!(simple_multiplicities(&re("((a, b)+)")).is_none());
    }

    #[test]
    fn star_of_group_with_optional_letters_is_simple() {
        // (a?, b?)* ≡ permutations of a*, b*.
        assert_eq!(
            simple_multiplicities(&re("((a?, b?)*)"))
                .unwrap()
                .values()
                .copied()
                .collect::<Vec<_>>(),
            vec![Multiplicity::Star, Multiplicity::Star]
        );
        // (a, b?)* is NOT simple: counts are linked (#b ≤ #a).
        assert!(simple_multiplicities(&re("((a, b?)*)")).is_none());
    }

    #[test]
    fn plus_shapes() {
        let m = simple_multiplicities(&re("(a+, b)")).unwrap();
        assert_eq!(m[&Box::from("a")], Multiplicity::Plus);
        assert_eq!(m[&Box::from("b")], Multiplicity::One);
        // (a, a*) ≡ a⁺.
        let m = simple_multiplicities(&re("(a, a*)")).unwrap();
        assert_eq!(m[&Box::from("a")], Multiplicity::Plus);
        // a?, a? has counts [0,2]: not simple.
        assert!(simple_multiplicities(&re("(a?, a?)")).is_none());
    }

    #[test]
    fn simple_disjunction_recognition() {
        assert_eq!(
            as_simple_disjunction(&re("(a | b | c)")).unwrap(),
            (vec![Box::from("a"), Box::from("b"), Box::from("c")], false)
        );
        let (letters, nullable) = as_simple_disjunction(&re("((a | b)?)")).unwrap();
        assert_eq!(letters.len(), 2);
        assert!(nullable);
        // Alphabets must be disjoint.
        assert!(as_simple_disjunction(&re("(a | a)")).is_none());
        // Sequences are not simple disjunctions.
        assert!(as_simple_disjunction(&re("((a, b) | c)")).is_none());
    }

    #[test]
    fn classify_disjunctive_content() {
        let cm = ContentModel::Regex(re("(t, (a | b), c*)"));
        let sc = classify_content(&cm).unwrap();
        assert!(!sc.is_simple());
        match sc {
            SimpleContent::Factors(fs) => {
                assert_eq!(fs.len(), 3);
                assert!(matches!(fs[1], Factor::Disjunction { .. }));
            }
            _ => panic!("expected factors"),
        }
        // Overlapping alphabets across factors: not disjunctive.
        assert!(classify_content(&ContentModel::Regex(re("(a*, (a | b))"))).is_none());
        // The FAQ content model from Section 7 is not disjunctive:
        // (qna+ | q+ | (p | div | section)+) is a disjunction of
        // non-letters.
        assert!(classify_content(&ContentModel::Regex(re(
            "(logo*, title, (qna+ | q+ | (p | div | section)+))"
        )))
        .is_none());
    }

    fn university() -> Dtd {
        crate::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap()
    }

    #[test]
    fn university_dtd_is_simple() {
        let shapes = DtdShapes::analyze(&university());
        assert!(shapes.is_simple());
        assert_eq!(shapes.class(), &DtdClass::Simple);
    }

    #[test]
    fn disjunctive_dtd_nd() {
        // One unrestricted disjunction (a | b) under the root: N_τ for r is
        // (#paths ending in r = 1) × 2 = 2; every other element simple.
        let d = crate::parse_dtd(
            "<!ELEMENT r (t, (a | b))>
             <!ELEMENT t EMPTY> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>",
        )
        .unwrap();
        let shapes = DtdShapes::analyze(&d);
        assert_eq!(shapes.class(), &DtdClass::Disjunctive { nd: 2 });
        assert!(shapes.is_disjunctive());
        assert!(!shapes.is_simple());
    }

    #[test]
    fn general_dtd_detected() {
        let d = crate::parse_dtd(
            "<!ELEMENT r (a, a)>
             <!ELEMENT a EMPTY>",
        )
        .unwrap();
        let shapes = DtdShapes::analyze(&d);
        assert_eq!(shapes.class(), &DtdClass::General);
        assert!(!shapes.is_disjunctive());
    }

    #[test]
    fn nd_multiplies_across_elements_and_paths() {
        // Element `x` has an unrestricted disjunction and is reachable by
        // two paths (r.x via a and via b? no — two letters referencing x).
        let d = crate::parse_dtd(
            "<!ELEMENT r (a, b)>
             <!ELEMENT a (x)> <!ELEMENT b (x)>
             <!ELEMENT x ((u | v))>
             <!ELEMENT u EMPTY> <!ELEMENT v EMPTY>",
        )
        .unwrap();
        let shapes = DtdShapes::analyze(&d);
        // x is reached by paths r.a.x and r.b.x: N_x = 2 × 2 = 4.
        assert_eq!(shapes.class(), &DtdClass::Disjunctive { nd: 4 });
    }

    #[test]
    fn empty_and_text_are_simple() {
        assert!(classify_content(&ContentModel::Text).unwrap().is_simple());
        assert!(classify_content(&ContentModel::Regex(Regex::Epsilon))
            .unwrap()
            .is_simple());
    }

    #[test]
    fn letter_bounds_hull_on_non_simple_expressions() {
        let b = letter_bounds(&re("(a, a)"));
        assert_eq!(b[&Box::from("a")], (2, Some(2)));
        let b = letter_bounds(&re("(a | b)"));
        assert_eq!(b[&Box::from("a")], (0, Some(1)));
        assert_eq!(b[&Box::from("b")], (0, Some(1)));
        let b = letter_bounds(&re("((a, b)+)"));
        assert_eq!(b[&Box::from("a")], (1, None));
        let b = letter_bounds(&re("(x, (a | b), y*)"));
        assert_eq!(b[&Box::from("x")], (1, Some(1)));
        assert_eq!(b[&Box::from("y")], (0, None));
        // Letter only in the second alternative: lo = 0.
        let b = letter_bounds(&re("(a | (a, b))"));
        assert_eq!(b[&Box::from("a")], (1, Some(1)));
        assert_eq!(b[&Box::from("b")], (0, Some(1)));
    }

    #[test]
    fn letter_multiplicities_merges_factors() {
        let sc = classify_content(&ContentModel::Regex(re("(t, (a | b), c*)"))).unwrap();
        let m = sc.letter_multiplicities();
        assert_eq!(m[&Box::from("t")], Multiplicity::One);
        assert_eq!(m[&Box::from("a")], Multiplicity::Opt);
        assert_eq!(m[&Box::from("b")], Multiplicity::Opt);
        assert_eq!(m[&Box::from("c")], Multiplicity::Star);
    }
}
