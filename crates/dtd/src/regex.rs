//! Regular expressions over element names — the `α` of Definition 1.
//!
//! The paper defines element type definitions as either `S` (#PCDATA) or a
//! regular expression `α ::= ε | τ | α|α | α,α | α*` over element names.
//! For faithful round-tripping of real DTD syntax we additionally keep the
//! standard abbreviations `α?` (= `α|ε`) and `α+` (= `α,α*`) as first-class
//! constructors; they also make the Section 7 classification (trivial /
//! simple expressions) syntax-directed.

use std::fmt;

/// A regular expression over element names (Definition 1).
///
/// Leaves are element *names* (strings); resolution to [`crate::ElemId`]s
/// happens when the expression is installed in a [`crate::Dtd`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Regex {
    /// The empty sequence `ε` (DTD syntax: `EMPTY`).
    Epsilon,
    /// A single element name `τ`.
    Elem(Box<str>),
    /// Concatenation `α₁, α₂, …, αₙ` (n ≥ 2).
    Seq(Vec<Regex>),
    /// Union `α₁ | α₂ | … | αₙ` (n ≥ 2).
    Alt(Vec<Regex>),
    /// Kleene closure `α*`.
    Star(Box<Regex>),
    /// Optional `α?`, an abbreviation for `α | ε`.
    Opt(Box<Regex>),
    /// One-or-more `α+`, an abbreviation for `α, α*`.
    Plus(Box<Regex>),
}

impl Regex {
    /// A leaf for the element name `name`.
    pub fn elem(name: impl Into<Box<str>>) -> Self {
        Regex::Elem(name.into())
    }

    /// Concatenation of `parts`, flattening nested sequences and dropping
    /// `ε` factors. Returns `ε` for an empty product.
    pub fn seq(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Seq(out),
        }
    }

    /// Union of `parts`, flattening nested unions.
    ///
    /// An explicit `ε` alternative is preserved (unions with `ε` express
    /// optionality; collapsing it to [`Regex::Opt`] is done by
    /// [`Regex::simplified`], not here).
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene closure of `self`.
    pub fn star(self) -> Self {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Plus(r) | Regex::Opt(r) => Regex::Star(r),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `self?` — zero or one occurrence.
    pub fn opt(self) -> Self {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Opt(r) => Regex::Opt(r),
            Regex::Plus(r) => Regex::Star(r),
            other => Regex::Opt(Box::new(other)),
        }
    }

    /// `self+` — one or more occurrences.
    pub fn plus(self) -> Self {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Opt(r) => Regex::Star(r),
            Regex::Plus(r) => Regex::Plus(r),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Whether the empty word belongs to the language of `self`.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Elem(_) => false,
            Regex::Seq(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
            Regex::Plus(r) => r.nullable(),
        }
    }

    /// The *alphabet* of the expression: the set of element names occurring
    /// in it, in first-occurrence order, without duplicates.
    pub fn alphabet(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_leaves(&mut |name| {
            if !out.contains(&name) {
                out.push(name);
            }
        });
        out
    }

    /// Whether `name` occurs in the expression.
    pub fn mentions(&self, name: &str) -> bool {
        let mut found = false;
        self.visit_leaves(&mut |n| found |= n == name);
        found
    }

    /// Calls `f` on every leaf element name, left to right (with
    /// repetitions).
    pub fn visit_leaves<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Regex::Epsilon => {}
            Regex::Elem(name) => f(name),
            Regex::Seq(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.visit_leaves(f);
                }
            }
            Regex::Star(r) | Regex::Opt(r) | Regex::Plus(r) => r.visit_leaves(f),
        }
    }

    /// Returns a copy with every occurrence of element name `from` replaced
    /// by `to`.
    pub fn rename(&self, from: &str, to: &str) -> Regex {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Elem(name) => {
                if &**name == from {
                    Regex::elem(to)
                } else {
                    Regex::Elem(name.clone())
                }
            }
            Regex::Seq(parts) => Regex::Seq(parts.iter().map(|p| p.rename(from, to)).collect()),
            Regex::Alt(parts) => Regex::Alt(parts.iter().map(|p| p.rename(from, to)).collect()),
            Regex::Star(r) => Regex::Star(Box::new(r.rename(from, to))),
            Regex::Opt(r) => Regex::Opt(Box::new(r.rename(from, to))),
            Regex::Plus(r) => Regex::Plus(Box::new(r.rename(from, to))),
        }
    }

    /// Structural simplification: collapses `α|ε` into `α?`, flattens nested
    /// sequences/unions, and normalizes iterated quantifiers. Preserves the
    /// language.
    pub fn simplified(&self) -> Regex {
        match self {
            Regex::Epsilon => Regex::Epsilon,
            Regex::Elem(n) => Regex::Elem(n.clone()),
            Regex::Seq(parts) => Regex::seq(parts.iter().map(Regex::simplified)),
            Regex::Alt(parts) => {
                let simplified: Vec<Regex> = parts.iter().map(Regex::simplified).collect();
                let has_eps = simplified.contains(&Regex::Epsilon);
                let rest: Vec<Regex> = simplified
                    .into_iter()
                    .filter(|p| *p != Regex::Epsilon)
                    .collect();
                let body = Regex::alt(rest);
                if has_eps {
                    body.opt()
                } else {
                    body
                }
            }
            Regex::Star(r) => r.simplified().star(),
            Regex::Opt(r) => r.simplified().opt(),
            Regex::Plus(r) => r.simplified().plus(),
        }
    }

    /// Number of AST nodes; used as the size measure `|D|` in the Theorem
    /// 3/4 scaling experiments.
    pub fn size(&self) -> usize {
        match self {
            Regex::Epsilon | Regex::Elem(_) => 1,
            Regex::Seq(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(r) | Regex::Opt(r) | Regex::Plus(r) => 1 + r.size(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        // prec levels: 0 = alternation, 1 = sequence, 2 = postfix/atom
        match self {
            Regex::Epsilon => write!(f, "EMPTY"),
            Regex::Elem(name) => write!(f, "{name}"),
            Regex::Seq(parts) => {
                if prec > 1 {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    p.fmt_prec(f, 2)?;
                }
                if prec > 1 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                if prec > 0 {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    p.fmt_prec(f, 2)?;
                }
                if prec > 0 {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Star(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "*")
            }
            Regex::Opt(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "?")
            }
            Regex::Plus(r) => {
                r.fmt_prec(f, 3)?;
                write!(f, "+")
            }
        }
    }
}

impl fmt::Display for Regex {
    /// Renders in DTD content-model syntax (`(a, b*, (c | d))`); the
    /// rendering re-parses to an equal AST via
    /// [`crate::parse::parse_content_model`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Regex {
        Regex::elem("a")
    }
    fn b() -> Regex {
        Regex::elem("b")
    }

    #[test]
    fn seq_flattens_and_drops_epsilon() {
        let r = Regex::seq([a(), Regex::Epsilon, Regex::seq([b(), a()])]);
        assert_eq!(r, Regex::Seq(vec![a(), b(), a()]));
    }

    #[test]
    fn seq_of_nothing_is_epsilon() {
        assert_eq!(Regex::seq([]), Regex::Epsilon);
        assert_eq!(Regex::seq([Regex::Epsilon, Regex::Epsilon]), Regex::Epsilon);
    }

    #[test]
    fn alt_flattens() {
        let r = Regex::alt([a(), Regex::alt([b(), a()])]);
        assert_eq!(r, Regex::Alt(vec![a(), b(), a()]));
    }

    #[test]
    fn quantifier_normalization() {
        assert_eq!(a().star().star(), a().star());
        assert_eq!(a().plus().star(), a().star());
        assert_eq!(a().opt().star(), a().star());
        assert_eq!(a().star().opt(), a().star());
        assert_eq!(a().plus().opt(), a().star());
        assert_eq!(a().star().plus(), a().star());
        assert_eq!(Regex::Epsilon.star(), Regex::Epsilon);
    }

    #[test]
    fn nullable() {
        assert!(Regex::Epsilon.nullable());
        assert!(!a().nullable());
        assert!(a().star().nullable());
        assert!(a().opt().nullable());
        assert!(!a().plus().nullable());
        assert!(!Regex::seq([a().star(), b()]).nullable());
        assert!(Regex::seq([a().star(), b().opt()]).nullable());
        assert!(Regex::alt([a(), Regex::Epsilon]).nullable());
    }

    #[test]
    fn alphabet_dedups_in_order() {
        let r = Regex::seq([b(), a(), b().star()]);
        assert_eq!(r.alphabet(), vec!["b", "a"]);
    }

    #[test]
    fn display_roundtrip_shapes() {
        let r = Regex::seq([a(), Regex::alt([b(), Regex::elem("c")]).star()]);
        assert_eq!(r.to_string(), "a, (b | c)*");
        let r = Regex::alt([a(), Regex::seq([b(), Regex::elem("c")])]);
        assert_eq!(r.to_string(), "a | (b, c)");
    }

    #[test]
    fn simplified_collapses_eps_alternative() {
        let r = Regex::Alt(vec![a(), Regex::Epsilon]);
        assert_eq!(r.simplified(), a().opt());
        let r = Regex::Alt(vec![a(), b(), Regex::Epsilon]);
        assert_eq!(r.simplified(), Regex::Alt(vec![a(), b()]).opt());
    }

    #[test]
    fn rename_replaces_all_occurrences() {
        let r = Regex::seq([a(), b(), a().star()]);
        let renamed = r.rename("a", "z");
        assert_eq!(renamed.alphabet(), vec!["z", "b"]);
        assert!(!renamed.mentions("a"));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(a().size(), 1);
        assert_eq!(Regex::seq([a(), b()]).size(), 3);
        assert_eq!(a().star().size(), 2);
    }
}
