//! Parser for DTD declaration syntax (`<!ELEMENT …>` / `<!ATTLIST …>`).
//!
//! Supports the fragment of XML 1.0 DTD syntax used throughout the paper:
//! element declarations with `EMPTY`, `(#PCDATA)` or a regular-expression
//! content model built from `,` (concatenation), `|` (union) and the
//! quantifiers `*`, `+`, `?`; and attribute-list declarations (attribute
//! types and defaults are accepted and ignored — the paper's model only
//! needs the attribute *names*, all treated as `CDATA #REQUIRED`).
//!
//! Mixed content (`(#PCDATA | a)*`) and `ANY` are rejected: Definition 2
//! disallows mixed content. The root element type is the one named by the
//! first `<!ELEMENT …>` declaration, matching how the paper presents all of
//! its DTDs.

use crate::dtd::{ContentModel, Dtd};
use crate::regex::Regex;
use crate::{DtdError, Result};
use std::collections::HashMap;
use xnf_govern::Budget;

/// Hard limits guarding the parser against adversarial input. The
/// defaults are far above anything a real DTD needs, but low enough that
/// a hostile input (a 100MB declaration blob, a pathologically nested
/// content model) is rejected with a spanned [`DtdError::Syntax`] instead
/// of consuming unbounded time or stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum input size in bytes.
    pub max_input: usize,
    /// Maximum parenthesis-nesting depth in content models (the parser
    /// recurses once per group, so this bounds stack use).
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_input: 64 << 20, // 64 MiB
            max_depth: 256,
        }
    }
}

impl ParseLimits {
    /// Limits for *network-originated* input: what `xnf-serve` trusts
    /// from an authenticated but unknown client. Much stricter than
    /// [`ParseLimits::default`], which is tuned for local files the
    /// operator chose to open — a schema bigger than 1 MiB or nested
    /// past 64 groups over HTTP is hostile, not ambitious.
    pub fn untrusted() -> ParseLimits {
        ParseLimits {
            max_input: 1 << 20, // 1 MiB
            max_depth: 64,
        }
    }
}

struct Scanner<'a> {
    input: &'a [u8],
    pos: usize,
    limits: ParseLimits,
    /// Current content-model nesting depth (checked against
    /// `limits.max_depth`).
    depth: usize,
    budget: &'a Budget,
}

use crate::UNLIMITED;

impl<'a> Scanner<'a> {
    fn new(input: &'a str) -> Self {
        Scanner::with_limits(input, ParseLimits::default(), UNLIMITED)
    }

    fn with_limits(input: &'a str, limits: ParseLimits, budget: &'a Budget) -> Self {
        Scanner {
            input: input.as_bytes(),
            pos: 0,
            limits,
            depth: 0,
            budget,
        }
    }

    fn check_input_size(&self) -> Result<()> {
        if self.input.len() > self.limits.max_input {
            return Err(DtdError::syntax(
                self.input,
                0,
                format!(
                    "input is {} bytes, over the {}-byte limit",
                    self.input.len(),
                    self.limits.max_input
                ),
            ));
        }
        Ok(())
    }

    fn err(&self, message: impl Into<String>) -> DtdError {
        DtdError::syntax(self.input, self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.input[self.pos..].starts_with(b"<!--") {
                let start = self.pos;
                self.pos += 4;
                loop {
                    if self.pos >= self.input.len() {
                        self.pos = start;
                        return Err(self.err("unterminated comment"));
                    }
                    if self.input[self.pos..].starts_with(b"-->") {
                        self.pos += 3;
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("name bytes are ASCII")
            .to_string())
    }

    /// Parses a content-model regular expression at alternation precedence.
    fn regex_alt(&mut self) -> Result<Regex> {
        let mut parts = vec![self.regex_seq()?];
        loop {
            self.skip_ws_and_comments()?;
            if self.eat("|") {
                parts.push(self.regex_seq()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::alt(parts)
        })
    }

    fn regex_seq(&mut self) -> Result<Regex> {
        let mut parts = vec![self.regex_postfix()?];
        loop {
            self.skip_ws_and_comments()?;
            if self.eat(",") {
                parts.push(self.regex_postfix()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Regex::seq(parts)
        })
    }

    fn regex_postfix(&mut self) -> Result<Regex> {
        let mut atom = self.regex_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    atom = atom.star();
                }
                Some(b'+') => {
                    self.pos += 1;
                    atom = atom.plus();
                }
                Some(b'?') => {
                    self.pos += 1;
                    atom = atom.opt();
                }
                _ => return Ok(atom),
            }
        }
    }

    fn regex_atom(&mut self) -> Result<Regex> {
        self.budget.checkpoint("dtd.parse.atom")?;
        self.skip_ws_and_comments()?;
        if self.eat("(") {
            self.depth += 1;
            if self.depth > self.limits.max_depth {
                return Err(self.err(format!(
                    "content model nested deeper than {} groups",
                    self.limits.max_depth
                )));
            }
            let inner = self.regex_alt()?;
            self.skip_ws_and_comments()?;
            self.expect(")")?;
            self.depth -= 1;
            Ok(inner)
        } else if self.eat("#PCDATA") {
            Err(self.err(
                "#PCDATA may only appear alone as (#PCDATA); mixed content is not supported \
                 (Definition 2 disallows mixed content)",
            ))
        } else {
            Ok(Regex::elem(self.name()?))
        }
    }
}

/// Parses a bare content-model expression (the part between the element
/// name and `>`), e.g. `(title, taken_by)` or `EMPTY` or `(#PCDATA)`.
pub fn parse_content_model(input: &str) -> Result<ContentModel> {
    let mut s = Scanner::new(input);
    let cm = content_spec(&mut s)?;
    s.skip_ws_and_comments()?;
    if s.pos != s.input.len() {
        return Err(s.err("trailing input after content model"));
    }
    Ok(cm)
}

fn content_spec(s: &mut Scanner<'_>) -> Result<ContentModel> {
    s.skip_ws_and_comments()?;
    if s.eat("EMPTY") {
        return Ok(ContentModel::Regex(Regex::Epsilon));
    }
    if s.eat("ANY") {
        return Err(s.err("ANY content is not supported (Definition 1 has no ANY)"));
    }
    // (#PCDATA) — lookahead to distinguish from a parenthesized regex.
    let save = s.pos;
    if s.eat("(") {
        s.skip_ws_and_comments()?;
        if s.eat("#PCDATA") {
            s.skip_ws_and_comments()?;
            if s.eat(")") {
                return Ok(ContentModel::Text);
            }
            return Err(
                s.err("mixed content (#PCDATA | …) is not supported (Definition 2 disallows it)")
            );
        }
        s.pos = save;
    }
    let re = s.regex_alt()?;
    Ok(ContentModel::Regex(re))
}

/// Parses a sequence of `<!ELEMENT …>` and `<!ATTLIST …>` declarations into
/// a [`Dtd`]. The root is the first declared element.
///
/// Applies [`ParseLimits::default`] and no budget; use
/// [`parse_dtd_governed`] to tune either.
pub fn parse_dtd(input: &str) -> Result<Dtd> {
    parse_dtd_governed(input, ParseLimits::default(), UNLIMITED)
}

/// [`parse_dtd`] with explicit adversarial-input limits and a resource
/// [`Budget`] (checked once per declaration and once per content-model
/// atom).
pub fn parse_dtd_governed(input: &str, limits: ParseLimits, budget: &Budget) -> Result<Dtd> {
    let _span = budget.recorder().span("dtd.parse", "parse");
    let mut s = Scanner::with_limits(input, limits, budget);
    s.check_input_size()?;
    let mut decls: Vec<(String, ContentModel)> = Vec::new();
    let mut attlists: HashMap<String, Vec<String>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    loop {
        budget.checkpoint("dtd.parse.decl")?;
        s.skip_ws_and_comments()?;
        if s.pos == s.input.len() {
            break;
        }
        s.expect("<!")?;
        if s.eat("ELEMENT") {
            s.skip_ws_and_comments()?;
            let name = s.name()?;
            s.skip_ws_and_comments()?;
            let cm = content_spec(&mut s)?;
            s.skip_ws_and_comments()?;
            s.expect(">")?;
            if decls.iter().any(|(n, _)| *n == name) {
                return Err(DtdError::DuplicateElement(name));
            }
            order.push(name.clone());
            decls.push((name, cm));
        } else if s.eat("ATTLIST") {
            s.skip_ws_and_comments()?;
            let elem = s.name()?;
            let atts = attlists.entry(elem.clone()).or_default();
            loop {
                s.skip_ws_and_comments()?;
                if s.eat(">") {
                    break;
                }
                let att = s.name()?;
                s.skip_ws_and_comments()?;
                // Attribute type: a name (CDATA, ID, NMTOKEN, …) or an
                // enumeration `(a|b|c)`.
                if s.eat("(") {
                    loop {
                        s.skip_ws_and_comments()?;
                        s.name()?;
                        s.skip_ws_and_comments()?;
                        if s.eat(")") {
                            break;
                        }
                        s.expect("|")?;
                    }
                } else {
                    s.name()?;
                }
                s.skip_ws_and_comments()?;
                // Default declaration: #REQUIRED, #IMPLIED, #FIXED "…", "…".
                if s.eat("#REQUIRED") || s.eat("#IMPLIED") {
                } else {
                    let fixed = s.eat("#FIXED");
                    if fixed {
                        s.skip_ws_and_comments()?;
                    }
                    let quote = s.bump();
                    match quote {
                        Some(q @ (b'"' | b'\'')) => loop {
                            match s.bump() {
                                Some(c) if c == q => break,
                                Some(_) => {}
                                None => return Err(s.err("unterminated default value")),
                            }
                        },
                        _ => return Err(s.err("expected attribute default declaration")),
                    }
                }
                if atts.contains(&att) {
                    return Err(DtdError::DuplicateAttribute {
                        element: elem,
                        attribute: att,
                    });
                }
                atts.push(att);
            }
        } else {
            return Err(s.err("expected ELEMENT or ATTLIST"));
        }
    }

    let root = order
        .first()
        .ok_or_else(|| DtdError::syntax(s.input, 0, "no element declarations found"))?
        .clone();

    for elem in attlists.keys() {
        if !order.contains(elem) {
            return Err(DtdError::AttlistForUndeclared(elem.clone()));
        }
    }

    let mut b = Dtd::builder(root);
    for (name, cm) in decls {
        let attrs = attlists.remove(&name).unwrap_or_default();
        b = b.decl(name, cm, attrs);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    /// The university DTD of Example 1.1(a), verbatim from the paper.
    const UNIVERSITY: &str = r#"
        <!ELEMENT courses (course*)>
        <!ELEMENT course (title, taken_by)>
        <!ATTLIST course
            cno CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT taken_by (student*)>
        <!ELEMENT student (name, grade)>
        <!ATTLIST student
            sno CDATA #REQUIRED>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT grade (#PCDATA)>
    "#;

    /// The DBLP DTD of Example 1.2, verbatim from the paper.
    const DBLP: &str = r#"
        <!ELEMENT db (conf*)>
        <!ELEMENT conf (title, issue+)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT issue (inproceedings+)>
        <!ELEMENT inproceedings (author+, title, booktitle)>
        <!ATTLIST inproceedings
            key ID #REQUIRED
            pages CDATA #REQUIRED
            year CDATA #REQUIRED>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT booktitle (#PCDATA)>
    "#;

    #[test]
    fn parses_university_dtd() {
        let d = parse_dtd(UNIVERSITY).unwrap();
        assert_eq!(d.root_name(), "courses");
        assert_eq!(d.num_elements(), 7);
        let course = d.elem_id("course").unwrap();
        assert_eq!(d.attrs(course).collect::<Vec<_>>(), vec!["cno"]);
        let courses = d.elem_id("courses").unwrap();
        assert_eq!(
            d.content(courses).as_regex().unwrap(),
            &Regex::elem("course").star()
        );
    }

    #[test]
    fn parses_dblp_dtd() {
        let d = parse_dtd(DBLP).unwrap();
        assert_eq!(d.root_name(), "db");
        let inproc = d.elem_id("inproceedings").unwrap();
        assert_eq!(
            d.attrs(inproc).collect::<Vec<_>>(),
            vec!["key", "pages", "year"]
        );
        let ps = d.paths().unwrap();
        assert!(ps
            .resolve_str("db.conf.issue.inproceedings.@year")
            .is_some());
    }

    #[test]
    fn parses_attribute_defaults_and_enums() {
        let d = parse_dtd(
            r#"
            <!ELEMENT r (a)>
            <!ELEMENT a EMPTY>
            <!ATTLIST a
                kind (x | y | z) "x"
                id ID #IMPLIED
                fixed CDATA #FIXED "v"
                quoted CDATA 'w'>
        "#,
        )
        .unwrap();
        let a = d.elem_id("a").unwrap();
        let attrs: Vec<_> = d.attrs(a).collect();
        assert_eq!(attrs, vec!["kind", "id", "fixed", "quoted"]);
    }

    #[test]
    fn rejects_mixed_content() {
        let err = parse_dtd("<!ELEMENT r (#PCDATA | a)*>").unwrap_err();
        assert!(matches!(err, DtdError::Syntax { .. }), "{err}");
    }

    #[test]
    fn rejects_any_content() {
        assert!(parse_dtd("<!ELEMENT r ANY>").is_err());
    }

    #[test]
    fn rejects_attlist_for_undeclared() {
        let err = parse_dtd("<!ELEMENT r EMPTY> <!ATTLIST ghost a CDATA #REQUIRED>").unwrap_err();
        assert_eq!(err, DtdError::AttlistForUndeclared("ghost".into()));
    }

    #[test]
    fn parses_nested_groups_and_quantifiers() {
        let d = parse_dtd(
            "<!ELEMENT r ((a | b)*, c?, (d, e)+)>
             <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
             <!ELEMENT d EMPTY> <!ELEMENT e EMPTY>",
        )
        .unwrap();
        let r = d.elem_id("r").unwrap();
        let re = d.content(r).as_regex().unwrap();
        assert_eq!(re.to_string(), "(a | b)*, c?, (d, e)+");
    }

    #[test]
    fn parses_ebxml_fragment() {
        // Figure 5 (abridged to the declarations whose referenced elements
        // we also declare).
        let d = parse_dtd(r#"
            <!ELEMENT ProcessSpecification (Documentation*, SubstitutionSet*,
                (Include | BusinessDocument | Package | BinaryCollaboration)*)>
            <!ELEMENT Include (Documentation*)>
            <!ELEMENT BusinessDocument (ConditionExpression?, Documentation*)>
            <!ELEMENT SubstitutionSet (DocumentSubstitution | AttributeSubstitution | Documentation)*>
            <!ELEMENT BinaryCollaboration (Documentation*, InitiatingRole, RespondingRole)>
            <!ELEMENT Package EMPTY>
            <!ELEMENT Documentation (#PCDATA)>
            <!ELEMENT ConditionExpression (#PCDATA)>
            <!ELEMENT DocumentSubstitution EMPTY>
            <!ELEMENT AttributeSubstitution EMPTY>
            <!ELEMENT InitiatingRole EMPTY>
            <!ELEMENT RespondingRole EMPTY>
        "#)
        .unwrap();
        assert_eq!(d.root_name(), "ProcessSpecification");
        assert!(!d.is_recursive());
    }

    #[test]
    fn rejects_oversized_input() {
        // Satellite regression: a 100MB synthetic "DTD" must be rejected
        // up front (O(1), before any scanning) with a spanned error.
        let mut big = String::with_capacity(100 << 20);
        big.push_str("<!ELEMENT r EMPTY>\n<!-- ");
        while big.len() < 100 << 20 {
            big.push_str("padding padding padding padding padding padding padding\n");
        }
        big.push_str(" -->\n");
        let err = parse_dtd(&big).unwrap_err();
        match err {
            DtdError::Syntax { message, .. } => {
                assert!(message.contains("over the"), "{message}")
            }
            other => panic!("expected a spanned Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let mut src = String::from("<!ELEMENT r ");
        let depth = 50_000;
        for _ in 0..depth {
            src.push('(');
        }
        src.push('a');
        for _ in 0..depth {
            src.push(')');
        }
        src.push_str("> <!ELEMENT a EMPTY>");
        let err = parse_dtd(&src).unwrap_err();
        match err {
            DtdError::Syntax { message, .. } => {
                assert!(message.contains("nested deeper"), "{message}")
            }
            other => panic!("expected a spanned Syntax error, got {other:?}"),
        }
        // A custom limit admits what the default rejects.
        let shallow = "<!ELEMENT r (((a)))> <!ELEMENT a EMPTY>";
        let tight = ParseLimits {
            max_depth: 2,
            ..ParseLimits::default()
        };
        assert!(parse_dtd(shallow).is_ok());
        assert!(parse_dtd_governed(shallow, tight, UNLIMITED).is_err());
    }

    #[test]
    fn untrusted_limits_cap_input_size() {
        // One declaration padded past 1 MiB with comment bytes: fine for
        // a local file, rejected for network input.
        let mut src = String::from("<!ELEMENT r EMPTY>");
        src.push_str("<!-- ");
        src.push_str(&"x".repeat(ParseLimits::untrusted().max_input));
        src.push_str(" -->");
        assert!(parse_dtd(&src).is_ok());
        let err = parse_dtd_governed(&src, ParseLimits::untrusted(), UNLIMITED).unwrap_err();
        match err {
            DtdError::Syntax { message, .. } => {
                assert!(message.contains("byte limit"), "{message}")
            }
            other => panic!("expected a spanned Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn untrusted_limits_cap_nesting_depth() {
        let depth = ParseLimits::untrusted().max_depth + 1;
        let mut src = String::from("<!ELEMENT r ");
        for _ in 0..depth {
            src.push('(');
        }
        src.push('a');
        for _ in 0..depth {
            src.push(')');
        }
        src.push_str("> <!ELEMENT a EMPTY>");
        assert!(
            parse_dtd(&src).is_ok(),
            "default limits admit depth {depth}"
        );
        let err = parse_dtd_governed(&src, ParseLimits::untrusted(), UNLIMITED).unwrap_err();
        match err {
            DtdError::Syntax { message, .. } => {
                assert!(message.contains("nested deeper"), "{message}")
            }
            other => panic!("expected a spanned Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn governed_parse_surfaces_exhaustion() {
        let src = "<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>";
        let budget = Budget::builder().fuel(2).build();
        let err = parse_dtd_governed(src, ParseLimits::default(), &budget).unwrap_err();
        assert!(matches!(err, DtdError::Exhausted(_)), "{err:?}");
        // The same call under no budget parses fine.
        assert!(parse_dtd(src).is_ok());
    }

    #[test]
    fn comments_are_skipped() {
        let d = parse_dtd("<!-- header --> <!ELEMENT r EMPTY> <!-- trailing -->").unwrap();
        assert_eq!(d.root_name(), "r");
    }

    #[test]
    fn text_element_with_attributes() {
        let d =
            parse_dtd("<!ELEMENT r (t)> <!ELEMENT t (#PCDATA)> <!ATTLIST t lang CDATA #REQUIRED>")
                .unwrap();
        let t = d.elem_id("t").unwrap();
        assert!(d.content(t).is_text());
        assert!(d.has_attr(t, "lang"));
    }

    #[test]
    fn display_parse_fixpoint() {
        for src in [UNIVERSITY, DBLP] {
            let d = parse_dtd(src).unwrap();
            let once = d.to_string();
            let d2 = parse_dtd(&once).unwrap();
            assert_eq!(d, d2);
            assert_eq!(once, d2.to_string());
        }
    }
}
