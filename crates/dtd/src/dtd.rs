//! The DTD model — Definition 1: `D = (E, A, P, R, r)`.
//!
//! `E` is the set of declared element types, `A` the set of attribute names,
//! `P` maps each element type to its content model (either `S` = #PCDATA or
//! a regular expression over `E`), `R` maps each element type to its set of
//! attributes, and `r ∈ E` is the root element type, which (w.l.o.g. in the
//! paper, enforced here) does not occur in any content model.
//!
//! Element types are interned as dense [`ElemId`]s; the struct also exposes
//! the small mutation API (declare element, move attribute, replace content
//! model) that the XNF decomposition algorithm of Section 6 is built on.

use crate::nfa::Matcher;
use crate::paths::PathSet;
use crate::regex::Regex;
use crate::{DtdError, Result};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a declared element type within one [`Dtd`].
///
/// Ids are dense indices in declaration order; they are *not* stable across
/// DTD edits that remove elements (the current API never removes elements,
/// matching the paper's transformations, which only add).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElemId(pub(crate) u32);

impl ElemId {
    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The content model `P(τ)` of an element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// `S`, i.e. `#PCDATA`: the element contains exactly one string child.
    Text,
    /// A regular expression over element names. [`Regex::Epsilon`]
    /// corresponds to the DTD keyword `EMPTY`.
    Regex(Regex),
}

impl ContentModel {
    /// The regular expression, if this is a regex content model.
    pub fn as_regex(&self) -> Option<&Regex> {
        match self {
            ContentModel::Text => None,
            ContentModel::Regex(r) => Some(r),
        }
    }

    /// Whether this is the `#PCDATA` content model.
    pub fn is_text(&self) -> bool {
        matches!(self, ContentModel::Text)
    }

    /// Whether this is `EMPTY`.
    pub fn is_empty(&self) -> bool {
        matches!(self, ContentModel::Regex(Regex::Epsilon))
    }
}

/// One `<!ELEMENT …>` declaration together with its `<!ATTLIST …>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    name: Box<str>,
    content: ContentModel,
    /// Attribute names, stored without the leading `@`, in declaration
    /// order. Insertion order is *structural*: it survives element and
    /// attribute renames unchanged, so every ordering derived from it
    /// (path enumeration, tie-breaking in the normalizer) is
    /// rename-equivariant. A sorted set here would leak lexicographic
    /// name order into `paths(D)` and break that property.
    attrs: Vec<Box<str>>,
}

impl ElementDecl {
    /// The element type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The content model `P(τ)`.
    pub fn content(&self) -> &ContentModel {
        &self.content
    }

    /// The attribute set `R(τ)` (names without the leading `@`), in
    /// declaration order.
    pub fn attrs(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(|a| &**a)
    }

    /// Whether attribute `@att` is defined for this element.
    pub fn has_attr(&self, att: &str) -> bool {
        self.attrs.iter().any(|a| &**a == att)
    }
}

/// A DTD `D = (E, A, P, R, r)` (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    elems: Vec<ElementDecl>,
    by_name: HashMap<Box<str>, ElemId>,
    root: ElemId,
}

impl Dtd {
    /// Starts building a DTD with the given root element type name.
    pub fn builder(root: impl Into<String>) -> DtdBuilder {
        DtdBuilder {
            root: root.into(),
            decls: Vec::new(),
        }
    }

    /// The root element type `r`.
    pub fn root(&self) -> ElemId {
        self.root
    }

    /// The root element type name.
    pub fn root_name(&self) -> &str {
        self.name(self.root)
    }

    /// Number of declared element types `|E|`.
    pub fn num_elements(&self) -> usize {
        self.elems.len()
    }

    /// Iterates over all element ids in declaration order.
    pub fn elements(&self) -> impl Iterator<Item = ElemId> {
        (0..self.elems.len() as u32).map(ElemId)
    }

    /// Resolves an element type name to its id.
    pub fn elem_id(&self, name: &str) -> Option<ElemId> {
        self.by_name.get(name).copied()
    }

    /// The declaration of `id`.
    pub fn decl(&self, id: ElemId) -> &ElementDecl {
        &self.elems[id.index()]
    }

    /// The name of element type `id`.
    pub fn name(&self, id: ElemId) -> &str {
        &self.elems[id.index()].name
    }

    /// The content model `P(id)`.
    pub fn content(&self, id: ElemId) -> &ContentModel {
        &self.elems[id.index()].content
    }

    /// The attribute set `R(id)`, in declaration order, without leading `@`.
    pub fn attrs(&self, id: ElemId) -> impl Iterator<Item = &str> {
        self.elems[id.index()].attrs()
    }

    /// Whether `@att` is defined for element `id`.
    pub fn has_attr(&self, id: ElemId, att: &str) -> bool {
        self.elems[id.index()].has_attr(att)
    }

    /// Compiles an NFA matcher for the content model of `id` (callers that
    /// validate many nodes should cache the result per element type).
    pub fn matcher(&self, id: ElemId) -> Option<Matcher> {
        self.content(id).as_regex().map(Matcher::new)
    }

    /// The element types whose names occur in the content model of `id`
    /// (its possible children), in first-occurrence order.
    pub fn children(&self, id: ElemId) -> Vec<ElemId> {
        match self.content(id) {
            ContentModel::Text => Vec::new(),
            ContentModel::Regex(re) => re.alphabet().iter().map(|n| self.by_name[*n]).collect(),
        }
    }

    /// Whether the DTD is recursive, i.e. whether `paths(D)` is infinite
    /// (Section 2). Detected as a cycle in the element reference graph
    /// reachable from the root.
    pub fn is_recursive(&self) -> bool {
        self.find_cycle_witness().is_some()
    }

    /// Returns an element type on a reference cycle reachable from the
    /// root, if any.
    pub fn find_cycle_witness(&self) -> Option<ElemId> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.elems.len()];
        // Iterative DFS with an explicit stack of (node, child cursor).
        let mut stack: Vec<(ElemId, Vec<ElemId>, usize)> = Vec::new();
        marks[self.root.index()] = Mark::Grey;
        stack.push((self.root, self.children(self.root), 0));
        while let Some((node, kids, cursor)) = stack.last_mut() {
            if *cursor == kids.len() {
                marks[node.index()] = Mark::Black;
                stack.pop();
                continue;
            }
            let kid = kids[*cursor];
            *cursor += 1;
            match marks[kid.index()] {
                Mark::Grey => return Some(kid),
                Mark::Black => {}
                Mark::White => {
                    marks[kid.index()] = Mark::Grey;
                    let kid_children = self.children(kid);
                    stack.push((kid, kid_children, 0));
                }
            }
        }
        None
    }

    /// Computes `paths(D)` (Section 2). Fails with
    /// [`DtdError::RecursiveDtd`] if the DTD is recursive; use
    /// [`Dtd::paths_bounded`] in that case.
    pub fn paths(&self) -> Result<PathSet> {
        if let Some(w) = self.find_cycle_witness() {
            return Err(DtdError::RecursiveDtd {
                witness: self.name(w).to_string(),
            });
        }
        Ok(PathSet::enumerate(self, usize::MAX))
    }

    /// Computes the finite subset of `paths(D)` of length at most
    /// `max_len` steps. Suitable for recursive DTDs.
    pub fn paths_bounded(&self, max_len: usize) -> PathSet {
        PathSet::enumerate(self, max_len)
    }

    /// A size measure `|D|`: total AST nodes over all content models plus
    /// the number of element and attribute declarations. Used as the x-axis
    /// in the Theorem 3/4 scaling experiments.
    pub fn size(&self) -> usize {
        self.elems
            .iter()
            .map(|d| {
                1 + d.attrs.len()
                    + match &d.content {
                        ContentModel::Text => 1,
                        ContentModel::Regex(r) => r.size(),
                    }
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Mutation API used by the XNF decomposition algorithm (Section 6).
    // ------------------------------------------------------------------

    /// Declares a fresh element type. Fails if the name is already taken or
    /// if the content model references undeclared elements or the root.
    pub fn declare_element(
        &mut self,
        name: &str,
        content: ContentModel,
        attrs: impl IntoIterator<Item = String>,
    ) -> Result<ElemId> {
        if self.by_name.contains_key(name) {
            return Err(DtdError::DuplicateElement(name.to_string()));
        }
        // Note: the content model may reference elements declared *later*
        // during a multi-element edit; the normalizer declares leaves first,
        // so we check eagerly (all references must already exist, except a
        // self-reference, which would make the DTD recursive and is allowed
        // by Definition 1).
        if let ContentModel::Regex(re) = &content {
            for n in re.alphabet() {
                if n != name && !self.by_name.contains_key(n) {
                    return Err(DtdError::UndeclaredElement {
                        name: n.to_string(),
                        referenced_by: name.to_string(),
                    });
                }
                if n == self.root_name() {
                    return Err(DtdError::RootReferenced {
                        referenced_by: name.to_string(),
                    });
                }
            }
        }
        let mut list: Vec<Box<str>> = Vec::new();
        for a in attrs {
            if list.iter().any(|x| **x == *a) {
                return Err(DtdError::DuplicateAttribute {
                    element: name.to_string(),
                    attribute: a,
                });
            }
            list.push(a.into_boxed_str());
        }
        let id = ElemId(self.elems.len() as u32);
        self.elems.push(ElementDecl {
            name: name.into(),
            content,
            attrs: list,
        });
        self.by_name.insert(name.into(), id);
        Ok(id)
    }

    /// Replaces the content model of `id`. All referenced element names
    /// must be declared and must not include the root.
    pub fn set_content(&mut self, id: ElemId, content: ContentModel) -> Result<()> {
        if let ContentModel::Regex(re) = &content {
            for n in re.alphabet() {
                if !self.by_name.contains_key(n) {
                    return Err(DtdError::UndeclaredElement {
                        name: n.to_string(),
                        referenced_by: self.name(id).to_string(),
                    });
                }
                if n == self.root_name() {
                    return Err(DtdError::RootReferenced {
                        referenced_by: self.name(id).to_string(),
                    });
                }
            }
        }
        self.elems[id.index()].content = content;
        Ok(())
    }

    /// Adds attribute `@att` to element `id` (the `R'(last(q)) =
    /// R(last(q)) ∪ {@m}` half of the *moving attributes* transformation).
    /// The attribute is appended after the existing ones, giving it a
    /// structural position independent of its name.
    pub fn add_attribute(&mut self, id: ElemId, att: &str) -> Result<()> {
        if self.has_attr(id, att) {
            return Err(DtdError::DuplicateAttribute {
                element: self.name(id).to_string(),
                attribute: att.to_string(),
            });
        }
        self.elems[id.index()].attrs.push(att.into());
        Ok(())
    }

    /// Removes attribute `@att` from element `id` (the `R'(last(p)) =
    /// R(last(p)) \ {@l}` half of both Section 6 transformations). Returns
    /// whether the attribute was present. The relative order of the
    /// remaining attributes is preserved.
    pub fn remove_attribute(&mut self, id: ElemId, att: &str) -> bool {
        let attrs = &mut self.elems[id.index()].attrs;
        match attrs.iter().position(|a| &**a == att) {
            Some(i) => {
                attrs.remove(i);
                true
            }
            None => false,
        }
    }

    /// Renames element type `old` to `new` everywhere (declaration and
    /// every content model). Fails if `old` is undeclared or `new` is
    /// taken. Intended for presentation (e.g. matching a published
    /// figure's names); FD paths must be renamed alongside — see
    /// `xnf_core::normalize::rename_element`.
    pub fn rename_element(&mut self, old: &str, new: &str) -> Result<()> {
        let id = self
            .elem_id(old)
            .ok_or_else(|| DtdError::UndeclaredElement {
                name: old.to_string(),
                referenced_by: "<rename>".to_string(),
            })?;
        if self.by_name.contains_key(new) {
            return Err(DtdError::DuplicateElement(new.to_string()));
        }
        self.by_name.remove(old);
        self.by_name.insert(new.into(), id);
        self.elems[id.index()].name = new.into();
        for decl in &mut self.elems {
            if let ContentModel::Regex(re) = &decl.content {
                if re.mentions(old) {
                    decl.content = ContentModel::Regex(re.rename(old, new));
                }
            }
        }
        Ok(())
    }

    /// Picks an element type name not currently declared, derived from
    /// `stem` (`stem`, `stem2`, `stem3`, …).
    pub fn fresh_element_name(&self, stem: &str) -> String {
        if !self.by_name.contains_key(stem) {
            return stem.to_string();
        }
        for i in 2.. {
            let candidate = format!("{stem}{i}");
            if !self.by_name.contains_key(candidate.as_str()) {
                return candidate;
            }
        }
        unreachable!("u64 counter exhausted")
    }

    /// Picks an attribute name not defined for element `id`, derived from
    /// `stem`.
    pub fn fresh_attr_name(&self, id: ElemId, stem: &str) -> String {
        if !self.has_attr(id, stem) {
            return stem.to_string();
        }
        for i in 2.. {
            let candidate = format!("{stem}{i}");
            if !self.has_attr(id, &candidate) {
                return candidate;
            }
        }
        unreachable!("u64 counter exhausted")
    }
}

impl fmt::Display for Dtd {
    /// Serializes back to DTD declaration syntax. The output re-parses to
    /// an equal DTD via [`crate::parse_dtd`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for decl in &self.elems {
            match &decl.content {
                ContentModel::Text => writeln!(f, "<!ELEMENT {} (#PCDATA)>", decl.name)?,
                ContentModel::Regex(Regex::Epsilon) => {
                    writeln!(f, "<!ELEMENT {} EMPTY>", decl.name)?
                }
                ContentModel::Regex(re) => {
                    // Top level must be parenthesized in DTD syntax.
                    let body = re.to_string();
                    if body.starts_with('(') && body.ends_with(')') && balanced_outer(&body) {
                        writeln!(f, "<!ELEMENT {} {}>", decl.name, body)?
                    } else {
                        writeln!(f, "<!ELEMENT {} ({})>", decl.name, body)?
                    }
                }
            }
            if !decl.attrs.is_empty() {
                writeln!(f, "<!ATTLIST {}", decl.name)?;
                for (i, a) in decl.attrs.iter().enumerate() {
                    let sep = if i + 1 == decl.attrs.len() { ">" } else { "" };
                    writeln!(f, "    {a} CDATA #REQUIRED{sep}")?;
                }
            }
        }
        Ok(())
    }
}

/// Whether the outermost `(`…`)` pair of `s` wraps the entire string.
fn balanced_outer(s: &str) -> bool {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i == s.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

/// Builder for [`Dtd`]: collect declarations in any order, then validate.
#[derive(Debug, Clone)]
pub struct DtdBuilder {
    root: String,
    decls: Vec<(String, ContentModel, Vec<String>)>,
}

impl DtdBuilder {
    /// Declares an element with a regex content model and no attributes.
    pub fn elem(self, name: impl Into<String>, content: Regex) -> Self {
        self.elem_attrs(name, content, Vec::<String>::new())
    }

    /// Declares an element with a regex content model and attributes.
    pub fn elem_attrs(
        mut self,
        name: impl Into<String>,
        content: Regex,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.decls.push((
            name.into(),
            ContentModel::Regex(content),
            attrs.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Declares a `#PCDATA` element.
    pub fn text_elem(mut self, name: impl Into<String>) -> Self {
        self.decls
            .push((name.into(), ContentModel::Text, Vec::new()));
        self
    }

    /// Declares an `EMPTY` element with attributes (the common leaf shape
    /// in the paper's codings, e.g. `<!ELEMENT G EMPTY>` in Example 5.3).
    pub fn empty_elem(
        mut self,
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.decls.push((
            name.into(),
            ContentModel::Regex(Regex::Epsilon),
            attrs.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Declares an element with an explicit [`ContentModel`] and attribute
    /// names — the fully general form the other helpers delegate to.
    pub fn decl(
        mut self,
        name: impl Into<String>,
        content: ContentModel,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        self.decls.push((
            name.into(),
            content,
            attrs.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Validates and produces the [`Dtd`].
    ///
    /// Checks: no duplicate element or attribute declarations, every
    /// referenced element is declared, the root is declared, and the root
    /// is not referenced by any content model (Definition 1).
    pub fn build(self) -> Result<Dtd> {
        let mut by_name: HashMap<Box<str>, ElemId> = HashMap::new();
        let mut elems: Vec<ElementDecl> = Vec::new();
        for (name, content, attrs) in &self.decls {
            if by_name.contains_key(name.as_str()) {
                return Err(DtdError::DuplicateElement(name.clone()));
            }
            let mut list: Vec<Box<str>> = Vec::new();
            for a in attrs {
                if list.iter().any(|x| **x == **a) {
                    return Err(DtdError::DuplicateAttribute {
                        element: name.clone(),
                        attribute: a.clone(),
                    });
                }
                list.push(a.clone().into_boxed_str());
            }
            let id = ElemId(elems.len() as u32);
            by_name.insert(name.clone().into_boxed_str(), id);
            elems.push(ElementDecl {
                name: name.clone().into_boxed_str(),
                content: content.clone(),
                attrs: list,
            });
        }
        let root = *by_name
            .get(self.root.as_str())
            .ok_or_else(|| DtdError::UndeclaredElement {
                name: self.root.clone(),
                referenced_by: "<root declaration>".to_string(),
            })?;
        for decl in &elems {
            if let ContentModel::Regex(re) = &decl.content {
                for n in re.alphabet() {
                    if !by_name.contains_key(n) {
                        return Err(DtdError::UndeclaredElement {
                            name: n.to_string(),
                            referenced_by: decl.name.to_string(),
                        });
                    }
                    if n == self.root {
                        return Err(DtdError::RootReferenced {
                            referenced_by: decl.name.to_string(),
                        });
                    }
                }
            }
        }
        Ok(Dtd {
            elems,
            by_name,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The university DTD of Example 1.1(a).
    pub(crate) fn university() -> Dtd {
        Dtd::builder("courses")
            .elem("courses", Regex::elem("course").star())
            .elem_attrs(
                "course",
                Regex::seq([Regex::elem("title"), Regex::elem("taken_by")]),
                ["cno"],
            )
            .text_elem("title")
            .elem("taken_by", Regex::elem("student").star())
            .elem_attrs(
                "student",
                Regex::seq([Regex::elem("name"), Regex::elem("grade")]),
                ["sno"],
            )
            .text_elem("name")
            .text_elem("grade")
            .build()
            .expect("university DTD is well-formed")
    }

    #[test]
    fn build_university_dtd() {
        let d = university();
        assert_eq!(d.root_name(), "courses");
        assert_eq!(d.num_elements(), 7);
        let course = d.elem_id("course").unwrap();
        assert!(d.has_attr(course, "cno"));
        assert!(!d.has_attr(course, "sno"));
        assert!(!d.is_recursive());
    }

    #[test]
    fn duplicate_element_rejected() {
        let err = Dtd::builder("r")
            .elem("r", Regex::elem("a"))
            .text_elem("a")
            .text_elem("a")
            .build()
            .unwrap_err();
        assert_eq!(err, DtdError::DuplicateElement("a".into()));
    }

    #[test]
    fn undeclared_reference_rejected() {
        let err = Dtd::builder("r")
            .elem("r", Regex::elem("ghost"))
            .build()
            .unwrap_err();
        assert!(matches!(err, DtdError::UndeclaredElement { name, .. } if name == "ghost"));
    }

    #[test]
    fn root_reference_rejected() {
        let err = Dtd::builder("r")
            .elem("r", Regex::elem("a"))
            .elem("a", Regex::elem("r").opt())
            .build()
            .unwrap_err();
        assert!(matches!(err, DtdError::RootReferenced { .. }));
    }

    #[test]
    fn recursion_detected() {
        let d = Dtd::builder("r")
            .elem("r", Regex::elem("part"))
            .elem("part", Regex::elem("part").star())
            .build()
            .unwrap();
        assert!(d.is_recursive());
        assert!(matches!(d.paths(), Err(DtdError::RecursiveDtd { .. })));
    }

    #[test]
    fn self_loop_unreachable_from_root_is_not_recursion() {
        // A cycle among elements not reachable from the root keeps
        // paths(D) finite.
        let d = Dtd::builder("r")
            .elem("r", Regex::elem("a"))
            .text_elem("a")
            .elem("orphan", Regex::elem("orphan").star())
            .build()
            .unwrap();
        assert!(!d.is_recursive());
    }

    #[test]
    fn mutation_move_attribute_shape() {
        // Emulate the DBLP fix: move @year from inproceedings to issue.
        let mut d = Dtd::builder("db")
            .elem("db", Regex::elem("conf").star())
            .elem(
                "conf",
                Regex::seq([Regex::elem("title"), Regex::elem("issue").plus()]),
            )
            .text_elem("title")
            .elem("issue", Regex::elem("inproceedings").plus())
            .elem_attrs(
                "inproceedings",
                Regex::elem("author").plus(),
                ["key", "pages", "year"],
            )
            .text_elem("author")
            .build()
            .unwrap();
        let issue = d.elem_id("issue").unwrap();
        let inproc = d.elem_id("inproceedings").unwrap();
        assert!(d.remove_attribute(inproc, "year"));
        d.add_attribute(issue, "year").unwrap();
        assert!(d.has_attr(issue, "year"));
        assert!(!d.has_attr(inproc, "year"));
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let d = university();
        assert_eq!(d.fresh_element_name("info"), "info");
        assert_eq!(d.fresh_element_name("course"), "course2");
        let student = d.elem_id("student").unwrap();
        assert_eq!(d.fresh_attr_name(student, "sno"), "sno2");
        assert_eq!(d.fresh_attr_name(student, "x"), "x");
    }

    #[test]
    fn rename_element_updates_declaration_and_references() {
        let mut d = university();
        d.rename_element("student", "pupil").unwrap();
        assert!(d.elem_id("student").is_none());
        let pupil = d.elem_id("pupil").unwrap();
        assert!(d.has_attr(pupil, "sno"));
        // The referencing content model followed the rename.
        let taken_by = d.elem_id("taken_by").unwrap();
        assert_eq!(
            d.content(taken_by).as_regex().unwrap().to_string(),
            "pupil*"
        );
        // Errors: unknown source, taken destination.
        assert!(d.rename_element("ghost", "x").is_err());
        assert!(d.rename_element("pupil", "course").is_err());
        // The renamed DTD still validates and round-trips.
        let reparsed = crate::parse_dtd(&d.to_string()).unwrap();
        assert_eq!(d, reparsed);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let d = university();
        let text = d.to_string();
        let reparsed = crate::parse_dtd(&text).expect("serialized DTD parses");
        assert_eq!(d, reparsed);
    }

    #[test]
    fn size_is_positive_and_monotone() {
        let d = university();
        let s = d.size();
        assert!(s > 10);
        let mut bigger = d.clone();
        bigger
            .declare_element("extra", ContentModel::Text, [])
            .unwrap();
        assert!(bigger.size() > s);
    }
}
