//! Random FD sets over a DTD's paths.

use rand::prelude::IndexedRandom;
use rand::Rng;
use xnf_core::{XmlFd, XmlFdSet};
use xnf_dtd::Dtd;

/// Parameters for [`random_fds`].
#[derive(Debug, Clone)]
pub struct FdParams {
    /// Number of FDs to generate.
    pub count: usize,
    /// Maximum left-hand-side size (≥ 1); one element path plus attribute
    /// paths, mirroring the Section 6 normal form of FDs.
    pub max_lhs: usize,
}

impl Default for FdParams {
    fn default() -> Self {
        FdParams {
            count: 4,
            max_lhs: 2,
        }
    }
}

/// Generates a random FD set over the value paths (attributes and text)
/// and element paths of `dtd`. LHS: optionally one element path plus
/// attribute/text paths; RHS: a single path. Degenerate draws (RHS inside
/// LHS) are retried a bounded number of times.
pub fn random_fds(dtd: &Dtd, rng: &mut impl Rng, params: &FdParams) -> XmlFdSet {
    let paths = dtd.paths().expect("non-recursive DTD");
    let value_paths: Vec<_> = paths
        .iter()
        .filter(|&p| !paths.is_element_path(p))
        .collect();
    let elem_paths: Vec<_> = paths.iter().filter(|&p| paths.is_element_path(p)).collect();
    let mut fds = Vec::new();
    let mut attempts = 0;
    while fds.len() < params.count && attempts < params.count * 20 {
        attempts += 1;
        if value_paths.is_empty() {
            break;
        }
        let mut lhs = Vec::new();
        if rng.random_bool(0.5) {
            if let Some(&e) = elem_paths.choose(rng) {
                lhs.push(paths.path(e));
            }
        }
        let n_attrs = rng.random_range(if lhs.is_empty() { 1 } else { 0 }..=params.max_lhs);
        for _ in 0..n_attrs {
            if let Some(&a) = value_paths.choose(rng) {
                lhs.push(paths.path(a));
            }
        }
        if lhs.is_empty() {
            continue;
        }
        let rhs_pool: Vec<_> = if rng.random_bool(0.7) {
            value_paths.clone()
        } else {
            elem_paths.clone()
        };
        let Some(&r) = rhs_pool.choose(rng) else {
            continue;
        };
        let rhs = paths.path(r);
        if lhs.contains(&rhs) {
            continue;
        }
        if let Ok(fd) = XmlFd::new(lhs, [rhs]) {
            fds.push(fd);
        }
    }
    XmlFdSet::from_fds(fds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::{simple_dtd, SimpleDtdParams};

    #[test]
    fn random_fds_resolve_against_their_dtd() {
        for seed in 0..20u64 {
            let mut rng = crate::rng(seed);
            let d = simple_dtd(
                &mut rng,
                &SimpleDtdParams {
                    elements: 10,
                    ..SimpleDtdParams::default()
                },
            );
            let fds = random_fds(&d, &mut rng, &FdParams::default());
            let paths = d.paths().unwrap();
            assert!(fds.resolve(&paths).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn counts_are_respected_when_paths_exist() {
        let mut rng = crate::rng(1);
        let d = crate::dtd::wide_dtd(3);
        let fds = random_fds(
            &d,
            &mut rng,
            &FdParams {
                count: 6,
                max_lhs: 2,
            },
        );
        assert!(!fds.is_empty());
        assert!(fds.len() <= 6);
    }
}
