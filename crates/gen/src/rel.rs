//! Relational and nested schemas with planted normal-form violations.

use rand::Rng;
use xnf_relational::fd::{AttrSet, Fd, FdSet, RelSchema};
use xnf_relational::nested::NestedSchema;

/// A random relational schema over `arity` attributes with `n_fds` random
/// singleton-side FDs; roughly half the draws violate BCNF.
pub fn random_relational(rng: &mut impl Rng, arity: usize, n_fds: usize) -> (RelSchema, FdSet) {
    let arity = arity.clamp(2, 24);
    let schema =
        RelSchema::new("G", (0..arity).map(|i| format!("A{i}"))).expect("distinct attribute names");
    let mut fds = FdSet::new();
    for _ in 0..n_fds {
        let lhs_size = rng.random_range(1..=2usize.min(arity - 1));
        let mut lhs = AttrSet::empty();
        while lhs.len() < lhs_size {
            lhs.insert(rng.random_range(0..arity));
        }
        let mut rhs = rng.random_range(0..arity);
        if lhs.contains(rhs) {
            rhs = (rhs + 1) % arity;
        }
        fds.push(Fd::new(lhs, AttrSet::singleton(rhs)));
    }
    (schema, fds)
}

/// A relational schema with a *planted* BCNF violation: the canonical
/// student/course shape `R(K, A, B, C)` with `A → B` (non-key determinant)
/// and `{A, K} → C`.
pub fn planted_bcnf_violation() -> (RelSchema, FdSet) {
    let schema = RelSchema::new("G", ["K", "A", "B", "C"]).expect("distinct names");
    let fds = FdSet::from_fds([
        Fd::new(AttrSet::singleton(1), AttrSet::singleton(2)),
        Fd::new(
            {
                let mut s = AttrSet::singleton(1);
                s.insert(0);
                s
            },
            AttrSet::singleton(3),
        ),
    ]);
    (schema, fds)
}

/// A chain-nested schema of the Figure 3 shape with `depth` levels
/// (`L0 = A0 (L1)*`, `L1 = A1 (L2)*`, …).
pub fn chain_nested(depth: usize) -> NestedSchema {
    fn build(i: usize, depth: usize) -> NestedSchema {
        let children = if i + 1 < depth {
            vec![build(i + 1, depth)]
        } else {
            Vec::new()
        };
        NestedSchema::new(format!("L{i}"), [format!("A{i}")], children)
    }
    build(0, depth.max(1))
}

/// FDs over [`chain_nested`] that respect the nesting (child determines
/// ancestor attributes) — an NNF-positive family.
pub fn chain_nested_good_fds(schema: &NestedSchema, depth: usize) -> FdSet {
    let flat = schema.unnested_schema().expect("distinct attribute names");
    let mut fds = FdSet::new();
    for i in 1..depth {
        let lhs = flat.set([format!("A{i}")]).expect("attribute exists");
        let rhs = flat.set([format!("A{}", i - 1)]).expect("attribute exists");
        fds.push(Fd::new(lhs, rhs));
    }
    fds
}

/// An NNF-violating FD over [`chain_nested`] (needs `depth ≥ 3`): the
/// root attribute determines the deepest attribute, skipping the
/// intermediate levels — `A0 → ancestor(A_last)` then requires
/// `A0 → A1, …`, which does not follow.
pub fn chain_nested_bad_fd(schema: &NestedSchema, depth: usize) -> FdSet {
    let flat = schema.unnested_schema().expect("distinct attribute names");
    FdSet::from_fds([Fd::new(
        flat.set(["A0"]).expect("attribute exists"),
        flat.set([format!("A{}", depth.saturating_sub(1))])
            .expect("attribute exists"),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_relational::bcnf::is_bcnf;
    use xnf_relational::nested::is_nnf;

    #[test]
    fn planted_violation_is_not_bcnf() {
        let (schema, fds) = planted_bcnf_violation();
        assert!(!is_bcnf(&fds, schema.all()));
    }

    #[test]
    fn random_relational_wellformed() {
        let mut rng = crate::rng(9);
        for _ in 0..20 {
            let (schema, fds) = random_relational(&mut rng, 5, 3);
            // The test is only that everything is in range.
            let _ = is_bcnf(&fds, schema.all());
        }
    }

    #[test]
    fn chain_nested_nnf_split() {
        for depth in [2usize, 3, 4, 5] {
            let schema = chain_nested(depth);
            let flat = schema.unnested_schema().unwrap();
            let good = chain_nested_good_fds(&schema, depth);
            assert!(is_nnf(&schema, &flat, &good).unwrap(), "depth {depth}");
            let bad = chain_nested_bad_fd(&schema, depth);
            let expect_violation = depth >= 3;
            assert_eq!(
                !is_nnf(&schema, &flat, &bad).unwrap(),
                expect_violation,
                "depth {depth}"
            );
        }
    }
}
