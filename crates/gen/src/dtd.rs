//! Random DTD families.

use rand::prelude::IndexedRandom;
use rand::Rng;
use xnf_dtd::{ContentModel, Dtd, Regex};

/// Parameters for [`simple_dtd`].
#[derive(Debug, Clone)]
pub struct SimpleDtdParams {
    /// Number of element types (≥ 1).
    pub elements: usize,
    /// Maximum element children per content model.
    pub max_children: usize,
    /// Maximum attributes per element.
    pub max_attrs: usize,
    /// Probability that a childless element is `#PCDATA` (vs `EMPTY`).
    pub text_leaf_prob: f64,
}

impl Default for SimpleDtdParams {
    fn default() -> Self {
        SimpleDtdParams {
            elements: 10,
            max_children: 3,
            max_attrs: 2,
            text_leaf_prob: 0.5,
        }
    }
}

/// Generates a random non-recursive **simple** DTD: a tree-shaped element
/// hierarchy whose content models are trivial regular expressions
/// (`e₁?, e₂*, e₃`, …). Element `i` may only reference elements `> i`, so
/// the DTD is never recursive.
pub fn simple_dtd(rng: &mut impl Rng, params: &SimpleDtdParams) -> Dtd {
    let n = params.elements.max(1);
    let names: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    // Assign each element (except the root) a parent among the earlier
    // elements, so every element is reachable. A drawn parent that is
    // already at `max_children` is replaced by the lowest-numbered earlier
    // element with spare capacity — processing children in ascending order
    // guarantees one exists (parents `0..k` hold `k-1` children against
    // `k·max_children` slots). The overflow re-homing is deterministic and
    // draws no RNG, so seeds that never overflow generate byte-identical
    // DTDs to the previous scheme, which silently dropped overflow
    // children from the content model and left them declared but
    // unreachable (the E16 XNF007 generator quirk).
    let cap = params.max_children.max(1);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for k in 1..n {
        let drawn = rng.random_range(0..k);
        let parent = if children[drawn].len() < cap {
            drawn
        } else {
            (0..k)
                .find(|&j| children[j].len() < cap)
                .expect("parents 0..k always have a spare slot")
        };
        children[parent].push(k);
    }
    let mut b = Dtd::builder(names[0].clone());
    for i in 0..n {
        let kids: Vec<usize> = children[i].clone();
        let content = if kids.is_empty() {
            if rng.random_bool(params.text_leaf_prob) {
                ContentModel::Text
            } else {
                ContentModel::Regex(Regex::Epsilon)
            }
        } else {
            let factors: Vec<Regex> = kids
                .iter()
                .map(|&k| {
                    let leaf = Regex::elem(names[k].as_str());
                    match rng.random_range(0..4) {
                        0 => leaf,
                        1 => leaf.opt(),
                        2 => leaf.star(),
                        _ => leaf.plus(),
                    }
                })
                .collect();
            ContentModel::Regex(Regex::seq(factors))
        };
        let n_attrs = if matches!(content, ContentModel::Text) {
            0
        } else {
            rng.random_range(0..=params.max_attrs)
        };
        let attrs: Vec<String> = (0..n_attrs).map(|a| format!("a{i}_{a}")).collect();
        b = b.decl(names[i].clone(), content, attrs);
    }
    b.build().expect("generated simple DTDs are well-formed")
}

/// Generates a random non-recursive **disjunctive** DTD:
/// [`simple_dtd`]-style, but `n_disjunctions` of the content models get an
/// exclusive-disjunction factor of `group_size` fresh `EMPTY` elements.
pub fn disjunctive_dtd(
    rng: &mut impl Rng,
    params: &SimpleDtdParams,
    n_disjunctions: usize,
    group_size: usize,
) -> Dtd {
    let base = simple_dtd(rng, params);
    let mut b = Dtd::builder(base.root_name());
    let mut extra: Vec<(String, ContentModel, Vec<String>)> = Vec::new();
    // Pick the elements that receive a disjunction factor: prefer non-text
    // elements, deterministic order.
    let candidates: Vec<_> = base
        .elements()
        .filter(|&e| !base.content(e).is_text())
        .collect();
    let chosen: Vec<_> = candidates
        .choose_multiple(rng, n_disjunctions.min(candidates.len()))
        .copied()
        .collect();
    for e in base.elements() {
        let name = base.name(e).to_string();
        let mut content = base.content(e).clone();
        if chosen.contains(&e) {
            let letters: Vec<Regex> = (0..group_size.max(2))
                .map(|g| {
                    let dname = format!("d_{name}_{g}");
                    extra.push((
                        dname.clone(),
                        ContentModel::Regex(Regex::Epsilon),
                        vec![format!("v_{name}_{g}")],
                    ));
                    Regex::elem(dname)
                })
                .collect();
            let group = Regex::alt(letters);
            content = match content {
                ContentModel::Regex(re) => ContentModel::Regex(Regex::seq([re, group])),
                ContentModel::Text => ContentModel::Regex(group),
            };
        }
        let attrs: Vec<String> = base.attrs(e).map(str::to_string).collect();
        b = b.decl(name, content, attrs);
    }
    for (name, content, attrs) in extra {
        b = b.decl(name, content, attrs);
    }
    b.build()
        .expect("generated disjunctive DTDs are well-formed")
}

/// A layered chain DTD: `depth` levels, each level a starred child of the
/// previous one with `attrs_per_level` attributes — `paths(D)` grows
/// linearly with `depth × attrs_per_level`. Used for the Theorem 3 /
/// Corollary 1 scaling sweeps.
pub fn chain_dtd(depth: usize, attrs_per_level: usize) -> Dtd {
    let depth = depth.max(1);
    let mut b = Dtd::builder("l0");
    for i in 0..depth {
        let content = if i + 1 < depth {
            ContentModel::Regex(Regex::elem(format!("l{}", i + 1)).star())
        } else {
            ContentModel::Regex(Regex::Epsilon)
        };
        let attrs: Vec<String> = (0..attrs_per_level).map(|a| format!("a{i}_{a}")).collect();
        b = b.decl(format!("l{i}"), content, attrs);
    }
    b.build().expect("chain DTDs are well-formed")
}

/// A wide university-style DTD with `width` star-children under a hub
/// (each like `taken_by/student`), scaling `paths(D)` horizontally.
pub fn wide_dtd(width: usize) -> Dtd {
    let mut b = Dtd::builder("root");
    let hubs: Vec<Regex> = (0..width.max(1))
        .map(|i| Regex::elem(format!("hub{i}")).star())
        .collect();
    b = b.decl(
        "root",
        ContentModel::Regex(Regex::seq(hubs)),
        Vec::<String>::new(),
    );
    for i in 0..width.max(1) {
        b = b.decl(
            format!("hub{i}"),
            ContentModel::Regex(Regex::elem(format!("item{i}")).star()),
            vec![format!("k{i}")],
        );
        b = b.decl(
            format!("item{i}"),
            ContentModel::Regex(Regex::Epsilon),
            vec![format!("id{i}"), format!("val{i}")],
        );
    }
    b.build().expect("wide DTDs are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xnf_dtd::classify::{DtdClass, DtdShapes};

    #[test]
    fn simple_dtds_are_simple_and_nonrecursive() {
        let mut rng = crate::rng(7);
        for size in [1, 3, 10, 40] {
            let d = simple_dtd(
                &mut rng,
                &SimpleDtdParams {
                    elements: size,
                    ..SimpleDtdParams::default()
                },
            );
            assert!(!d.is_recursive());
            assert!(DtdShapes::analyze(&d).is_simple(), "size {size}");
            assert!(d.paths().is_ok());
        }
    }

    #[test]
    fn disjunctive_dtds_have_expected_class() {
        let mut rng = crate::rng(11);
        let d = disjunctive_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements: 8,
                ..SimpleDtdParams::default()
            },
            2,
            3,
        );
        assert!(!d.is_recursive());
        let shapes = DtdShapes::analyze(&d);
        match shapes.class() {
            DtdClass::Disjunctive { nd } => assert!(*nd >= 3),
            other => panic!("expected disjunctive, got {other:?}"),
        }
    }

    #[test]
    fn chain_and_wide_shapes() {
        let c = chain_dtd(5, 2);
        assert_eq!(c.num_elements(), 5);
        let ps = c.paths().unwrap();
        assert_eq!(ps.len(), 5 + 5 * 2);
        let w = wide_dtd(4);
        assert!(!w.is_recursive());
        assert!(DtdShapes::analyze(&w).is_simple());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d1 = simple_dtd(&mut crate::rng(42), &SimpleDtdParams::default());
        let d2 = simple_dtd(&mut crate::rng(42), &SimpleDtdParams::default());
        assert_eq!(d1, d2);
        let d3 = simple_dtd(&mut crate::rng(43), &SimpleDtdParams::default());
        assert!(d1 != d3 || d1.to_string() == d3.to_string());
    }
}
