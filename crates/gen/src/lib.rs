//! # `xnf-gen` — synthetic workload generators
//!
//! Deterministic (seeded) generators for the families of DTDs, documents
//! and FD sets used by the benches (`crates/bench`) and the cross-crate
//! validation tests:
//!
//! * [`dtd`] — random *simple* DTDs of a given size (Theorem 3 scaling),
//!   random *disjunctive* DTDs with a controlled number of unrestricted
//!   disjunctions (Theorem 4/5 scaling), and layered chain DTDs.
//! * [`doc`] — random conforming documents for any non-recursive DTD, plus
//!   scaled university-style (Example 1.1) and DBLP-style (Example 1.2)
//!   documents that *satisfy* the paper's FDs by construction.
//! * [`fd`] — random FD sets over a DTD's attribute paths.
//! * [`rel`] — relational schemas with planted BCNF violations and nested
//!   schemas with planted NNF violations (Propositions 4/5 experiments).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod doc;
pub mod dtd;
pub mod fd;
pub mod rel;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded RNG shared by all generators, for reproducible workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
