//! Random and scaled conforming documents.

use rand::Rng;
use xnf_dtd::{ContentModel, Dtd, ElemId, Regex};
use xnf_xml::{NodeId, XmlTree};

/// Parameters for [`random_document`].
#[derive(Debug, Clone)]
pub struct DocParams {
    /// Repetition count drawn for each `*` / `+` quantifier (min, max).
    pub reps: (usize, usize),
    /// Size of the attribute/text value alphabet — small values create
    /// agreement between nodes, which is what FD machinery cares about.
    pub value_alphabet: usize,
    /// Hard cap on generated nodes (generation stops descending).
    pub max_nodes: usize,
}

impl Default for DocParams {
    fn default() -> Self {
        DocParams {
            reps: (0, 3),
            value_alphabet: 4,
            max_nodes: 10_000,
        }
    }
}

/// Generates a random document conforming to a non-recursive DTD: for
/// each node, a word of the content model is sampled (quantifiers draw
/// from `params.reps`, alternations pick a uniform branch), attributes
/// and text get values from a small alphabet.
pub fn random_document(dtd: &Dtd, rng: &mut impl Rng, params: &DocParams) -> XmlTree {
    assert!(!dtd.is_recursive(), "random_document needs a finite DTD");
    let mut tree = XmlTree::new(dtd.root_name());
    let root = tree.root();
    fill(dtd, dtd.root(), &mut tree, root, rng, params);
    tree
}

fn fill(
    dtd: &Dtd,
    elem: ElemId,
    tree: &mut XmlTree,
    node: NodeId,
    rng: &mut impl Rng,
    params: &DocParams,
) {
    for attr in dtd.attrs(elem) {
        let v = rng.random_range(0..params.value_alphabet.max(1));
        tree.set_attr(node, attr, format!("v{v}"));
    }
    match dtd.content(elem) {
        ContentModel::Text => {
            let v = rng.random_range(0..params.value_alphabet.max(1));
            tree.set_text(node, format!("t{v}"));
        }
        ContentModel::Regex(re) => {
            let mut labels = Vec::new();
            sample_word(re, rng, params, &mut labels);
            for label in labels {
                if tree.num_nodes() >= params.max_nodes {
                    break;
                }
                let child_elem = dtd.elem_id(&label).expect("validated DTD");
                let child = tree.add_child(node, label);
                fill(dtd, child_elem, tree, child, rng, params);
            }
        }
    }
}

/// Samples a word from the language of `re` into `out`.
fn sample_word(re: &Regex, rng: &mut impl Rng, params: &DocParams, out: &mut Vec<String>) {
    match re {
        Regex::Epsilon => {}
        Regex::Elem(n) => out.push(n.to_string()),
        Regex::Seq(parts) => {
            for p in parts {
                sample_word(p, rng, params, out);
            }
        }
        Regex::Alt(parts) => {
            let ix = rng.random_range(0..parts.len());
            sample_word(&parts[ix], rng, params, out);
        }
        Regex::Star(r) => {
            let (lo, hi) = params.reps;
            let n = rng.random_range(lo..=hi.max(lo));
            for _ in 0..n {
                sample_word(r, rng, params, out);
            }
        }
        Regex::Opt(r) => {
            if rng.random_bool(0.5) {
                sample_word(r, rng, params, out);
            }
        }
        Regex::Plus(r) => {
            let (lo, hi) = params.reps;
            let n = rng.random_range(lo.max(1)..=hi.max(1));
            for _ in 0..n {
                sample_word(r, rng, params, out);
            }
        }
    }
}

/// Generates up to `count` documents that conform to `dtd` **and**
/// satisfy `sigma` — the precondition of the losslessness oracle
/// (`verify_lossless` checks `T ⊨ (D, Σ) ⇒ …`, so feeding it
/// Σ-violating documents tests nothing).
///
/// Each candidate starts as a [`random_document`] and goes through a few
/// rounds of *FD repair*:
///
/// * a violated FD whose right-hand side is all value paths is repaired by
///   rewriting each group's attribute/text values to the group's canonical
///   (first-seen) value;
/// * a violated FD with an element path on the right (a node-equality
///   constraint that value rewriting cannot establish) is repaired from
///   the *left*: the offending groups' left-hand-side attribute values are
///   renamed to fresh unique values, splitting the group.
///
/// Repair rounds can invalidate other FDs, so the document is re-checked
/// after each round; candidates still violating Σ after
/// `max_repair_rounds` are rejected and re-drawn. Returns the accepted
/// documents — possibly fewer than `count` if `max_attempts` candidates
/// are exhausted (callers report the shortfall).
pub fn satisfying_documents(
    dtd: &Dtd,
    sigma: &xnf_core::XmlFdSet,
    rng: &mut impl Rng,
    params: &DocParams,
    count: usize,
    max_attempts: usize,
) -> Vec<XmlTree> {
    let paths = dtd.paths().expect("satisfying_documents needs paths(D)");
    // Unresolvable Σ: no document applies.
    let Ok(resolved) = sigma.resolve(&paths) else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(count);
    let mut fresh = 0usize;
    const MAX_REPAIR_ROUNDS: usize = 4;
    for _ in 0..max_attempts {
        if out.len() >= count {
            break;
        }
        let mut doc = random_document(dtd, rng, params);
        for _ in 0..MAX_REPAIR_ROUNDS {
            match repair_round(&mut doc, dtd, &paths, &resolved, &mut fresh) {
                Ok(true) => {}               // something changed: another round
                Ok(false) | Err(_) => break, // fixpoint, or tuple enumeration failed: reject
            }
        }
        let satisfied = sigma.satisfied_by(&doc, dtd, &paths).unwrap_or(false);
        if satisfied {
            out.push(doc);
        }
    }
    out
}

/// One repair round over all FDs; returns whether anything was rewritten.
fn repair_round(
    doc: &mut XmlTree,
    dtd: &Dtd,
    paths: &xnf_dtd::PathSet,
    resolved: &[xnf_core::fd::ResolvedFd],
    fresh: &mut usize,
) -> Result<bool, xnf_core::CoreError> {
    use std::collections::HashMap;
    use xnf_relational::Value;
    let mut changed = false;
    for fd in resolved {
        let tuples = xnf_core::tuples_d(doc, dtd, paths)?;
        let ids: Vec<NodeId> = doc.node_ids().collect();
        // Group tuples with a fully non-null LHS by their LHS projection.
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, t) in tuples.iter().enumerate() {
            if fd.lhs.iter().any(|&p| t.get(p).is_null()) {
                continue;
            }
            let key: Vec<Value> = fd.lhs.iter().map(|&p| t.get(p).clone()).collect();
            groups.entry(key).or_default().push(i);
        }
        let rhs_is_value = fd
            .rhs
            .iter()
            .all(|&r| !matches!(paths.step(r), xnf_dtd::Step::Elem(_)));
        for members in groups.values() {
            let canon: Vec<&Value> = fd.rhs.iter().map(|&r| tuples[members[0]].get(r)).collect();
            let offenders: Vec<usize> = members[1..]
                .iter()
                .copied()
                .filter(|&i| {
                    fd.rhs
                        .iter()
                        .zip(&canon)
                        .any(|(&r, &c)| tuples[i].get(r) != c)
                })
                .collect();
            if offenders.is_empty() {
                continue;
            }
            if rhs_is_value {
                // Rewrite the offenders' RHS values to the canonical ones.
                for &i in &offenders {
                    for (&r, &c) in fd.rhs.iter().zip(&canon) {
                        let Value::Str(canon_str) = c else { continue };
                        let Some(parent) = paths.parent(r) else {
                            continue;
                        };
                        let Value::Vert(idx) = tuples[i].get(parent) else {
                            continue; // structurally null: not value-repairable
                        };
                        let node = ids[*idx as usize];
                        match paths.step(r) {
                            xnf_dtd::Step::Attr(name) => {
                                doc.set_attr(node, &**name, &**canon_str);
                            }
                            xnf_dtd::Step::Text => {
                                doc.set_text(node, &**canon_str);
                            }
                            xnf_dtd::Step::Elem(_) => unreachable!("rhs_is_value"),
                        }
                        changed = true;
                    }
                }
            } else {
                // Split the group: rename one LHS attribute/text value on
                // each offender to a fresh unique value.
                for &i in &offenders {
                    for &l in &fd.lhs {
                        if matches!(paths.step(l), xnf_dtd::Step::Elem(_)) {
                            continue;
                        }
                        let Some(parent) = paths.parent(l) else {
                            continue;
                        };
                        let Value::Vert(idx) = tuples[i].get(parent) else {
                            continue;
                        };
                        let node = ids[*idx as usize];
                        *fresh += 1;
                        let value = format!("u{fresh}");
                        match paths.step(l) {
                            xnf_dtd::Step::Attr(name) => {
                                doc.set_attr(node, &**name, value);
                            }
                            xnf_dtd::Step::Text => doc.set_text(node, value),
                            xnf_dtd::Step::Elem(_) => unreachable!("filtered"),
                        }
                        changed = true;
                        break; // one split per offender suffices
                    }
                }
            }
        }
    }
    Ok(changed)
}

/// A scaled Example 1.1 document: `courses` courses, `students_per_course`
/// students each; student numbers are drawn from a pool of
/// `student_pool` ids, and each id maps to one of `names` names — so the
/// paper's FDs (FD1)–(FD3) hold by construction.
pub fn university_document(
    courses: usize,
    students_per_course: usize,
    student_pool: usize,
    names: usize,
) -> XmlTree {
    let mut t = XmlTree::new("courses");
    let root = t.root();
    for c in 0..courses {
        let course = t.add_child(root, "course");
        t.set_attr(course, "cno", format!("c{c}"));
        let title = t.add_child(course, "title");
        t.set_text(title, format!("Course {c}"));
        let taken_by = t.add_child(course, "taken_by");
        // Distinct sno per course (FD2); the pool is widened if needed.
        let pool = student_pool.max(students_per_course).max(1);
        for s in 0..students_per_course {
            let sno = (c * 7 + s) % pool;
            let student = t.add_child(taken_by, "student");
            t.set_attr(student, "sno", format!("st{sno}"));
            let name = t.add_child(student, "name");
            t.set_text(name, format!("Name{}", sno % names.max(1)));
            let grade = t.add_child(student, "grade");
            t.set_text(grade, format!("g{c}_{s}"));
        }
    }
    t
}

/// A scaled Example 1.2 document: `confs` conferences with `issues_per`
/// issues of `papers_per` inproceedings each; every paper in an issue
/// shares the issue's year, so (FD4)–(FD5) hold by construction.
pub fn dblp_document(confs: usize, issues_per: usize, papers_per: usize) -> XmlTree {
    let mut t = XmlTree::new("db");
    let root = t.root();
    for c in 0..confs {
        let conf = t.add_child(root, "conf");
        let title = t.add_child(conf, "title");
        t.set_text(title, format!("Conf {c}"));
        for i in 0..issues_per.max(1) {
            let issue = t.add_child(conf, "issue");
            for p in 0..papers_per.max(1) {
                let paper = t.add_child(issue, "inproceedings");
                t.set_attr(paper, "key", format!("k{c}_{i}_{p}"));
                t.set_attr(paper, "pages", format!("{}-{}", p * 12 + 1, p * 12 + 12));
                t.set_attr(paper, "year", format!("{}", 1990 + i));
                let author = t.add_child(paper, "author");
                t.set_text(author, format!("Author {}", (c + p) % 5));
                let pt = t.add_child(paper, "title");
                t.set_text(pt, format!("Paper {c}.{i}.{p}"));
                let bt = t.add_child(paper, "booktitle");
                t.set_text(bt, format!("Conf {c} {}", 1990 + i));
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::{simple_dtd, SimpleDtdParams};
    use xnf_core::XmlFdSet;

    #[test]
    fn random_documents_conform() {
        let mut rng = crate::rng(3);
        for seed in 0..10u64 {
            let d = simple_dtd(
                &mut crate::rng(seed),
                &SimpleDtdParams {
                    elements: 8,
                    ..SimpleDtdParams::default()
                },
            );
            let doc = random_document(&d, &mut rng, &DocParams::default());
            assert!(
                xnf_xml::conforms(&doc, &d).is_ok(),
                "seed {seed}: {:?}",
                xnf_xml::conforms(&doc, &d)
            );
        }
    }

    #[test]
    fn university_documents_satisfy_paper_fds() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let doc = university_document(5, 4, 8, 3);
        assert!(xnf_xml::conforms(&doc, &dtd).is_ok());
        let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
        let ps = dtd.paths().unwrap();
        assert!(sigma.satisfied_by(&doc, &dtd, &ps).unwrap());
    }

    #[test]
    fn dblp_documents_satisfy_paper_fds() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .unwrap();
        let doc = dblp_document(3, 2, 3);
        assert!(xnf_xml::conforms(&doc, &dtd).is_ok());
        let sigma = XmlFdSet::parse(xnf_core::fd::DBLP_FDS).unwrap();
        let ps = dtd.paths().unwrap();
        assert!(sigma.satisfied_by(&doc, &dtd, &ps).unwrap());
    }

    #[test]
    fn satisfying_documents_conform_and_satisfy() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .unwrap();
        let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
        let ps = dtd.paths().unwrap();
        let mut rng = crate::rng(17);
        let docs = satisfying_documents(&dtd, &sigma, &mut rng, &DocParams::default(), 20, 200);
        assert!(docs.len() >= 15, "only {} / 20 accepted", docs.len());
        for doc in &docs {
            assert!(xnf_xml::conforms(doc, &dtd).is_ok());
            assert!(sigma.satisfied_by(doc, &dtd, &ps).unwrap());
        }
    }

    #[test]
    fn satisfying_documents_on_random_specs() {
        for seed in 0..10u64 {
            let dtd = simple_dtd(
                &mut crate::rng(seed),
                &SimpleDtdParams {
                    elements: 7,
                    ..SimpleDtdParams::default()
                },
            );
            let ps = dtd.paths().unwrap();
            let sigma = crate::fd::random_fds(
                &dtd,
                &mut crate::rng(seed + 1000),
                &crate::fd::FdParams::default(),
            );
            let mut rng = crate::rng(seed + 2000);
            let docs = satisfying_documents(&dtd, &sigma, &mut rng, &DocParams::default(), 5, 100);
            for doc in &docs {
                assert!(xnf_xml::conforms(doc, &dtd).is_ok(), "seed {seed}");
                assert!(sigma.satisfied_by(doc, &dtd, &ps).unwrap(), "seed {seed}");
            }
        }
    }

    #[test]
    fn node_cap_is_respected() {
        let d = crate::dtd::chain_dtd(3, 0);
        let mut rng = crate::rng(5);
        let doc = random_document(
            &d,
            &mut rng,
            &DocParams {
                reps: (5, 8),
                max_nodes: 20,
                ..DocParams::default()
            },
        );
        assert!(doc.num_nodes() <= 20);
    }
}
