//! Regression test for the E16 generator quirk: `simple_dtd` used to drop
//! children beyond `max_children` from the content model while keeping
//! their declarations, producing elements unreachable from the root
//! (lint code XNF007). Generated specs must now be lint-clean.

use xnf_gen::dtd::{disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_lint::{lint_dtd, Code};

fn assert_clean(dtd: &xnf_dtd::Dtd, context: &str) {
    let report = lint_dtd(&dtd.to_string());
    assert!(
        !report.codes().contains(&Code::UnreachableElement),
        "{context}: generated DTD has unreachable elements (XNF007)\n{}",
        report.render_human()
    );
    assert!(
        !report.has_errors(),
        "{context}: generated DTD has lint errors\n{}",
        report.render_human()
    );
}

#[test]
fn simple_dtds_are_lint_clean() {
    // Small max_children against many elements is exactly the overflowing
    // regime of the E16 quirk.
    for seed in 0..200u64 {
        for (elements, max_children) in [(10, 1), (16, 2), (24, 3), (40, 2)] {
            let params = SimpleDtdParams {
                elements,
                max_children,
                ..SimpleDtdParams::default()
            };
            let d = simple_dtd(&mut xnf_gen::rng(seed), &params);
            assert_clean(&d, &format!("seed {seed}, {elements}x{max_children}"));
        }
    }
}

#[test]
fn disjunctive_dtds_are_lint_clean() {
    for seed in 0..100u64 {
        let params = SimpleDtdParams {
            elements: 12,
            max_children: 2,
            ..SimpleDtdParams::default()
        };
        let d = disjunctive_dtd(&mut xnf_gen::rng(seed), &params, 2, 3);
        assert_clean(&d, &format!("seed {seed}"));
    }
}

#[test]
fn every_declared_element_is_referenced() {
    // Structural form of the same property, independent of the linter.
    for seed in 0..100u64 {
        let params = SimpleDtdParams {
            elements: 20,
            max_children: 1,
            ..SimpleDtdParams::default()
        };
        let d = simple_dtd(&mut xnf_gen::rng(seed), &params);
        let paths = d.paths().expect("simple DTDs enumerate paths");
        // Every element appears at some path reachable from the root.
        for e in d.elements() {
            let name = d.name(e);
            let reachable = paths
                .iter()
                .any(|p| paths.last_elem(p).is_some_and(|le| d.name(le) == name));
            assert!(reachable, "seed {seed}: element {name} unreachable");
        }
    }
}
