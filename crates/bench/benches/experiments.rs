//! Criterion benches for the experiment index of DESIGN.md (E1–E12).
//!
//! The paper has no wall-clock tables — its "evaluation" is worked
//! examples plus complexity theorems. These benches measure the *shapes*
//! those theorems predict: near-quadratic implication on simple DTDs
//! (Theorem 3, E8), polynomial behaviour on log-bounded disjunctive DTDs
//! (Theorem 4, E9), exponential exhaustive search vs the polynomial chase
//! (Theorem 5, E10), polynomial XNF testing (Corollary 1, E11), and the
//! costs of the constructive machinery on the paper's own workloads
//! (E1–E7, E12). `EXPERIMENTS.md` records the measured numbers.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xnf_core::implication::{CounterexampleSearch, Implication};
use xnf_core::lossless::verify_lossless;
use xnf_core::{
    is_xnf, normalize, tuples_d, tuples_relation, Chase, NormalizeOptions, XmlFd, XmlFdSet,
};
use xnf_dtd::classify::DtdShapes;
use xnf_dtd::Dtd;
use xnf_gen::doc::{dblp_document, university_document};
use xnf_gen::dtd::{chain_dtd, disjunctive_dtd, simple_dtd, SimpleDtdParams};
use xnf_gen::fd::{random_fds, FdParams};

fn university_dtd() -> Dtd {
    xnf_dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .expect("university DTD parses")
}

fn dblp_dtd() -> Dtd {
    xnf_dtd::parse_dtd(
        "<!ELEMENT db (conf*)>
         <!ELEMENT conf (title, issue+)>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT issue (inproceedings+)>
         <!ELEMENT inproceedings (author+, title, booktitle)>
         <!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
         <!ELEMENT author (#PCDATA)>
         <!ELEMENT booktitle (#PCDATA)>",
    )
    .expect("DBLP DTD parses")
}

/// E1 — the university pipeline: XNF check + full normalization.
fn exp1_university(c: &mut Criterion) {
    let dtd = university_dtd();
    let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
    c.bench_function("exp1_university/is_xnf", |b| {
        b.iter(|| is_xnf(black_box(&dtd), black_box(&sigma)).unwrap())
    });
    c.bench_function("exp1_university/normalize", |b| {
        b.iter(|| {
            normalize(
                black_box(&dtd),
                black_box(&sigma),
                &NormalizeOptions::default(),
            )
            .unwrap()
        })
    });
}

/// E2 — tree-tuple extraction on scaled Figure 1(a) documents.
fn exp2_tree_tuples(c: &mut Criterion) {
    let dtd = university_dtd();
    let paths = dtd.paths().unwrap();
    let mut group = c.benchmark_group("exp2_tree_tuples");
    for courses in [4usize, 16, 64] {
        let doc = university_document(courses, 4, 8, 3);
        group.bench_with_input(BenchmarkId::new("tuples_d", courses), &doc, |b, doc| {
            b.iter(|| tuples_d(black_box(doc), &dtd, &paths).unwrap().len())
        });
        group.bench_with_input(
            BenchmarkId::new("roundtrip_trees_d", courses),
            &doc,
            |b, doc| {
                let tuples = tuples_d(doc, &dtd, &paths).unwrap();
                b.iter(|| {
                    xnf_core::trees_d(black_box(&tuples), &paths)
                        .unwrap()
                        .num_nodes()
                })
            },
        );
    }
    group.finish();
}

/// E3 — nested-relation coding and NNF⇔XNF agreement at growing depth.
fn exp3_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp3_nested");
    for depth in [3usize, 6, 9] {
        let schema = xnf_gen::rel::chain_nested(depth);
        let flat = schema.unnested_schema().unwrap();
        let fds = xnf_gen::rel::chain_nested_bad_fd(&schema, depth);
        group.bench_with_input(BenchmarkId::new("nnf_vs_xnf", depth), &depth, |b, _| {
            b.iter(|| {
                let nnf = xnf_relational::nested::is_nnf(&schema, &flat, &fds).unwrap();
                let dtd = xnf_core::encode::nested_to_dtd(&schema).unwrap();
                let sigma = xnf_core::encode::nested_fds_to_xml(&schema, &flat, &fds).unwrap();
                let xnf = is_xnf(&dtd, &sigma).unwrap();
                assert_eq!(nnf, xnf);
                (nnf, xnf)
            })
        });
    }
    group.finish();
}

/// E4 — decomposition cost as the number of planted anomalies grows.
fn exp4_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_normalize");
    for anomalies in [1usize, 2, 4] {
        // A wide DTD with one anomalous FD per hub: idᵢ → valᵢ.
        let dtd = xnf_gen::dtd::wide_dtd(anomalies);
        let fd_text: String = (0..anomalies)
            .map(|i| format!("root.hub{i}.item{i}.@id{i} -> root.hub{i}.item{i}.@val{i}\n"))
            .collect();
        let sigma = XmlFdSet::parse(&fd_text).unwrap();
        assert!(!is_xnf(&dtd, &sigma).unwrap());
        group.bench_with_input(
            BenchmarkId::from_parameter(anomalies),
            &sigma,
            |b, sigma| {
                b.iter(|| {
                    let r = normalize(&dtd, sigma, &NormalizeOptions::default()).unwrap();
                    assert_eq!(*r.ap_trace.last().unwrap(), 0);
                    r.steps.len()
                })
            },
        );
    }
    group.finish();
}

/// E5 — classification (simple/disjunctive, N_D) of the ebXML fragment.
fn exp5_ebxml(c: &mut Criterion) {
    let dtd = xnf_dtd::parse_dtd(
        r#"<!ELEMENT ProcessSpecification (Documentation*, SubstitutionSet*,
              (Include | BusinessDocument | Package | BinaryCollaboration)*)>
           <!ELEMENT Include (Documentation*)>
           <!ELEMENT BusinessDocument (ConditionExpression?, Documentation*)>
           <!ELEMENT SubstitutionSet (DocumentSubstitution | AttributeSubstitution | Documentation)*>
           <!ELEMENT BinaryCollaboration (Documentation*, InitiatingRole, RespondingRole)>
           <!ELEMENT Package EMPTY>
           <!ELEMENT Documentation (#PCDATA)>
           <!ELEMENT ConditionExpression (#PCDATA)>
           <!ELEMENT DocumentSubstitution EMPTY>
           <!ELEMENT AttributeSubstitution EMPTY>
           <!ELEMENT InitiatingRole EMPTY>
           <!ELEMENT RespondingRole EMPTY>"#,
    )
    .unwrap();
    c.bench_function("exp5_ebxml/classify", |b| {
        b.iter(|| {
            let shapes = DtdShapes::analyze(black_box(&dtd));
            assert!(shapes.is_simple());
        })
    });
}

/// E6 — the DBLP pipeline: normalization + document transformation.
fn exp6_dblp(c: &mut Criterion) {
    let dtd = dblp_dtd();
    let sigma = XmlFdSet::parse(xnf_core::fd::DBLP_FDS).unwrap();
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
    let mut group = c.benchmark_group("exp6_dblp");
    group.bench_function("normalize", |b| {
        b.iter(|| {
            normalize(&dtd, &sigma, &NormalizeOptions::default())
                .unwrap()
                .steps
                .len()
        })
    });
    for confs in [2usize, 8] {
        let doc = dblp_document(confs, 3, 4);
        group.bench_with_input(
            BenchmarkId::new("verify_lossless", confs),
            &doc,
            |b, doc| b.iter(|| verify_lossless(&dtd, &result, black_box(doc)).unwrap().ok()),
        );
    }
    group.finish();
}

/// E7 — Proposition 4: BCNF test vs XNF test on coded relational schemas.
fn exp7_bcnf_xnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp7_bcnf_xnf");
    for arity in [3usize, 5, 8] {
        let mut rng = xnf_gen::rng(7);
        let (schema, fds) = xnf_gen::rel::random_relational(&mut rng, arity, arity - 1);
        let dtd = xnf_core::encode::relational_to_dtd(&schema).unwrap();
        let sigma = xnf_core::encode::relational_fds_to_xml(&schema, &fds).unwrap();
        group.bench_with_input(BenchmarkId::new("bcnf", arity), &arity, |b, _| {
            b.iter(|| xnf_relational::bcnf::is_bcnf(black_box(&fds), schema.all()))
        });
        group.bench_with_input(BenchmarkId::new("xnf_of_coding", arity), &arity, |b, _| {
            b.iter(|| is_xnf(black_box(&dtd), black_box(&sigma)).unwrap())
        });
    }
    group.finish();
}

/// E8 — Theorem 3: implication on simple DTDs is polynomial
/// (near-quadratic). The workload is an FD value chain
/// `@b₀ → @b₁ → … → @b_{n-1}` on the attributes of a starred element:
/// deciding `@b₀ → @b_{n-1}` makes the chase fire the FDs one round at a
/// time, re-scanning Σ between rounds — `O(n)` rounds × `O(n)` scan, the
/// quadratic Horn-closure shape of the paper's Theorem 3 algorithm.
fn exp8_implication_simple(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp8_implication_simple");
    for n in [8usize, 16, 32, 64] {
        let dtd = chain_dtd(2, n); // l0 = (l1*), n attributes per level
        let paths = dtd.paths().unwrap();
        let sigma_text: String = (0..n - 1)
            .map(|i| format!("l0.l1.@a1_{i} -> l0.l1.@a1_{}\n", i + 1))
            .collect();
        let sigma = XmlFdSet::parse(&sigma_text)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        // Implied: the whole chain must fire.
        let implied_fd = XmlFd::parse(&format!("l0.l1.@a1_0 -> l0.l1.@a1_{}", n - 1))
            .unwrap()
            .resolve(&paths)
            .unwrap();
        // Refuted: attribute values do not determine the (starred) node.
        let refuted_fd = XmlFd::parse("l0.l1.@a1_0 -> l0.l1")
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let chase = Chase::new(&dtd, &paths);
        assert!(chase.implies(&sigma, &implied_fd));
        assert!(!chase.implies(&sigma, &refuted_fd));
        group.bench_with_input(
            BenchmarkId::new("implied_chain", n),
            &implied_fd,
            |b, fd| b.iter(|| chase.implies(black_box(&sigma), black_box(fd))),
        );
        group.bench_with_input(BenchmarkId::new("refuted", n), &refuted_fd, |b, fd| {
            b.iter(|| chase.implies(black_box(&sigma), black_box(fd)))
        });
    }
    group.finish();
}

/// E9 — Theorem 4: disjunctive DTDs with few unrestricted disjunctions
/// stay fast for the chase.
fn exp9_disjunctive(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp9_disjunctive");
    for disjunctions in [1usize, 2, 4] {
        let mut rng = xnf_gen::rng(11);
        let dtd = disjunctive_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements: 12,
                ..SimpleDtdParams::default()
            },
            disjunctions,
            3,
        );
        let paths = dtd.paths().unwrap();
        let sigma = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 4,
                max_lhs: 2,
            },
        )
        .resolve(&paths)
        .unwrap();
        let candidates: Vec<_> = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 4,
                max_lhs: 2,
            },
        )
        .resolve(&paths)
        .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(disjunctions),
            &candidates,
            |b, candidates| {
                let chase = Chase::new(&dtd, &paths);
                b.iter(|| {
                    candidates
                        .iter()
                        .filter(|fd| chase.implies(&sigma, fd))
                        .count()
                })
            },
        );
    }
    group.finish();
}

/// E10 — Theorem 5: certifying an implication without the chase's
/// completeness rules means exhausting the space of exclusive-disjunction
/// choices — exponential in the number of disjunctions (what `N_D`
/// measures) — while the full chase stays polynomial. The query is the
/// swap-rule FD `{@a} → e1` under `Σ = {e2, @a} → e1` (implied; the
/// ablated chase cannot prove it), and each extra `(x|y|z)` group under
/// the root multiplies the candidate space by 9 (3 choices × 2 sides).
fn exp10_conp(c: &mut Criterion) {
    use xnf_core::ChaseConfig;
    let mut group = c.benchmark_group("exp10_conp");
    group.sample_size(10);
    for groups in [0usize, 1, 2, 3] {
        let mut decls = String::from("<!ELEMENT e0 (e1*, e2+");
        for g in 0..groups {
            decls.push_str(&format!(", (x{g} | y{g} | z{g})"));
        }
        decls.push_str(")>\n<!ATTLIST e0 a CDATA #REQUIRED>\n                        <!ELEMENT e1 (#PCDATA)>\n<!ELEMENT e2 (#PCDATA)>\n");
        for g in 0..groups {
            decls.push_str(&format!(
                "<!ELEMENT x{g} EMPTY>\n<!ELEMENT y{g} EMPTY>\n<!ELEMENT z{g} EMPTY>\n"
            ));
        }
        let dtd = xnf_dtd::parse_dtd(&decls).unwrap();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse("e0.e2, e0.@a -> e0.e1")
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let fd = XmlFd::parse("e0.@a -> e0.e1")
            .unwrap()
            .resolve(&paths)
            .unwrap();
        // Ground truth: the full chase proves the implication.
        let full = Chase::new(&dtd, &paths);
        assert!(full.implies(&sigma, &fd));
        group.bench_with_input(BenchmarkId::new("chase_full", groups), &fd, |b, fd| {
            b.iter(|| assert!(full.implies(black_box(&sigma), black_box(fd))))
        });
        // The ablated pipeline must exhaust all disjunction combinations
        // before it can report "no counterexample found".
        let minimal = CounterexampleSearch::with_config(
            &dtd,
            &paths,
            ChaseConfig {
                swap_rule: false,
                contrapositive_rule: false,
                split_budget: 0,
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exhaustive_ablated", groups),
            &fd,
            |b, fd| {
                b.iter(|| {
                    assert!(minimal
                        .find_exhaustive(black_box(&sigma), black_box(fd), 1 << 20)
                        .is_none())
                })
            },
        );
    }
    group.finish();
}

/// E11 — Corollary 1: XNF testing scales polynomially on simple DTDs.
fn exp11_xnf_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp11_xnf_check");
    for elements in [8usize, 16, 32, 64] {
        let mut rng = xnf_gen::rng(17);
        let dtd = simple_dtd(
            &mut rng,
            &SimpleDtdParams {
                elements,
                ..SimpleDtdParams::default()
            },
        );
        let sigma = random_fds(
            &dtd,
            &mut rng,
            &FdParams {
                count: 6,
                max_lhs: 2,
            },
        );
        let size = dtd.size();
        group.bench_with_input(BenchmarkId::from_parameter(size), &sigma, |b, sigma| {
            b.iter(|| is_xnf(black_box(&dtd), black_box(sigma)).unwrap())
        });
    }
    group.finish();
}

/// E12 — losslessness verification on the university pipeline, scaling
/// with document size.
fn exp12_lossless(c: &mut Criterion) {
    let dtd = university_dtd();
    let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).unwrap();
    let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
    let mut group = c.benchmark_group("exp12_lossless");
    for courses in [4usize, 16, 48] {
        let doc = university_document(courses, 4, 10, 4);
        group.bench_with_input(BenchmarkId::from_parameter(courses), &doc, |b, doc| {
            b.iter(|| {
                let report = verify_lossless(&dtd, &result, black_box(doc)).unwrap();
                assert!(report.ok());
            })
        });
        // The Q₂-style tuples projection used by the diagram check.
        let paths = dtd.paths().unwrap();
        group.bench_with_input(
            BenchmarkId::new("tuples_relation", courses),
            &doc,
            |b, doc| b.iter(|| tuples_relation(black_box(doc), &dtd, &paths).unwrap().len()),
        );
    }
    group.finish();
}

/// E13 — ablation: the chase with each completeness rule disabled, on
/// the randomized corpus. Measures the cost of the rules (they are
/// nearly free) and, via the returned counts, their effect on how many
/// implications are proven.
fn exp13_ablation(c: &mut Criterion) {
    use xnf_core::ChaseConfig;
    let mut rng = xnf_gen::rng(23);
    let dtd = simple_dtd(
        &mut rng,
        &SimpleDtdParams {
            elements: 12,
            ..SimpleDtdParams::default()
        },
    );
    let paths = dtd.paths().unwrap();
    let sigma = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 4,
            max_lhs: 2,
        },
    )
    .resolve(&paths)
    .unwrap();
    let candidates: Vec<_> = random_fds(
        &dtd,
        &mut rng,
        &FdParams {
            count: 8,
            max_lhs: 2,
        },
    )
    .resolve(&paths)
    .unwrap();
    let mut group = c.benchmark_group("exp13_ablation");
    for (name, cfg) in [
        ("full", ChaseConfig::default()),
        (
            "no_swap",
            ChaseConfig {
                swap_rule: false,
                ..ChaseConfig::default()
            },
        ),
        (
            "no_contrapositive",
            ChaseConfig {
                contrapositive_rule: false,
                ..ChaseConfig::default()
            },
        ),
        (
            "no_split",
            ChaseConfig {
                split_budget: 0,
                ..ChaseConfig::default()
            },
        ),
        (
            "minimal",
            ChaseConfig {
                swap_rule: false,
                contrapositive_rule: false,
                split_budget: 0,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            let chase = Chase::with_config(&dtd, &paths, cfg);
            b.iter(|| {
                candidates
                    .iter()
                    .filter(|fd| chase.implies(black_box(&sigma), fd))
                    .count()
            })
        });
    }
    group.finish();
}

/// E14 — implementation choice: hash-grouped FD satisfaction vs the
/// pairwise Codd-table check, on growing tuple sets.
fn exp14_fd_check(c: &mut Criterion) {
    let dtd = university_dtd();
    let paths = dtd.paths().unwrap();
    let fd = XmlFd::parse(
        "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S",
    )
    .unwrap();
    let resolved = fd.resolve(&paths).unwrap();
    let mut group = c.benchmark_group("exp14_fd_check");
    for courses in [8usize, 32, 128] {
        let doc = university_document(courses, 4, 16, 4);
        let tuples = tuples_d(&doc, &dtd, &paths).unwrap();
        let rel = tuples_relation(&doc, &dtd, &paths).unwrap();
        group.bench_with_input(
            BenchmarkId::new("hash_grouped", tuples.len()),
            &tuples,
            |b, tuples| b.iter(|| resolved.check_tuples(black_box(tuples))),
        );
        group.bench_with_input(
            BenchmarkId::new("codd_pairwise", rel.len()),
            &rel,
            |b, rel| {
                b.iter(|| {
                    rel.satisfies_fd(
                        &["courses.course.taken_by.student.@sno"],
                        &["courses.course.taken_by.student.name.S"],
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// E15 — the memoized, parallel implication engine: cached vs uncached
/// repeated-Σ query batteries on the E8 chain family, and 1-vs-N-thread
/// anomalous-FD search / full normalization on the chain and the paper's
/// Fig. 1 (university) and Fig. 5 (DBLP) DTDs.
fn exp15_implication_cache(c: &mut Criterion) {
    use xnf_core::fd::ResolvedFd;
    use xnf_core::{anomalous_fds_threaded, ImplicationCache};

    let mut group = c.benchmark_group("implication_cache");

    // (a) A repeated-Σ workload on the E8 chain family: the battery the
    // normalization loop actually issues (per-candidate node guards plus
    // triviality probes), asked REPEATS times against one fixed Σ — the
    // shape of the search → guard → minimize pipeline. Uncached pays a
    // chase run per query per repeat; cached pays one per *distinct*
    // query.
    const REPEATS: usize = 8;
    for n in [16usize, 32] {
        let dtd = chain_dtd(2, n);
        let paths = dtd.paths().unwrap();
        let sigma_text: String = (0..n - 1)
            .map(|i| format!("l0.l1.@a1_{i} -> l0.l1.@a1_{}\n", i + 1))
            .collect();
        let sigma = XmlFdSet::parse(&sigma_text)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let queries: Vec<ResolvedFd> = (1..n)
            .flat_map(|i| {
                [
                    XmlFd::parse(&format!("l0.l1.@a1_0 -> l0.l1.@a1_{i}")).unwrap(),
                    XmlFd::parse(&format!("l0.l1.@a1_{i} -> l0.l1")).unwrap(),
                ]
            })
            .map(|fd| fd.resolve(&paths).unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::new("uncached", n), &queries, |b, qs| {
            b.iter(|| {
                let chase = Chase::new(&dtd, &paths);
                (0..REPEATS)
                    .map(|_| {
                        qs.iter()
                            .filter(|q| chase.implies(black_box(&sigma), q))
                            .count()
                    })
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("cached", n), &queries, |b, qs| {
            b.iter(|| {
                let chase = Chase::new(&dtd, &paths);
                let cache = ImplicationCache::new(&chase, &sigma);
                (0..REPEATS)
                    .map(|_| {
                        qs.iter()
                            .filter(|q| cache.implies(black_box(&sigma), q))
                            .count()
                    })
                    .sum::<usize>()
            })
        });
    }

    // Multi-thread rows are honest only when the box can actually run
    // the workers in parallel: on a single hardware thread every
    // `threads > 1` row would time-slice to a misleading ~1.0x, so those
    // rows are skipped (correctness stays asserted) and the skip is
    // recorded alongside the measured parallelism.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("exp15: available_parallelism = {cpus}");

    // (b) The parallel anomalous-FD search, 1 vs N workers, on a chain
    // spec whose Σ makes every attribute a candidate.
    {
        let n = 24usize;
        let dtd = chain_dtd(2, n);
        let sigma_text: String = (0..n - 1)
            .map(|i| format!("l0.l1.@a1_{i} -> l0.l1.@a1_{}\n", i + 1))
            .collect();
        let sigma = XmlFdSet::parse(&sigma_text).unwrap();
        let baseline = anomalous_fds_threaded(&dtd, &sigma, 1).unwrap();
        for threads in [1usize, 2, 4] {
            assert_eq!(
                anomalous_fds_threaded(&dtd, &sigma, threads).unwrap(),
                baseline
            );
            if threads > 1 && cpus == 1 {
                eprintln!("exp15: search_chain24_threads/{threads} skipped (1 cpu)");
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new("search_chain24_threads", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        anomalous_fds_threaded(black_box(&dtd), black_box(&sigma), threads).unwrap()
                    })
                },
            );
        }
    }

    // (c) Full normalization of the paper's Fig. 1 / Fig. 5 specs with
    // the cached loop, sequential vs parallel search.
    for (name, dtd, fds) in [
        (
            "normalize_university_threads",
            university_dtd(),
            xnf_core::fd::UNIVERSITY_FDS,
        ),
        ("normalize_dblp_threads", dblp_dtd(), xnf_core::fd::DBLP_FDS),
    ] {
        let sigma = XmlFdSet::parse(fds).unwrap();
        for threads in [1usize, 4] {
            if threads > 1 && cpus == 1 {
                eprintln!("exp15: {name}/{threads} skipped (1 cpu)");
                continue;
            }
            let options = NormalizeOptions {
                threads,
                ..NormalizeOptions::default()
            };
            group.bench_with_input(BenchmarkId::new(name, threads), &options, |b, options| {
                b.iter(|| normalize(black_box(&dtd), black_box(&sigma), options).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    exp1_university,
    exp2_tree_tuples,
    exp3_nested,
    exp4_normalize,
    exp5_ebxml,
    exp6_dblp,
    exp7_bcnf_xnf,
    exp8_implication_simple,
    exp9_disjunctive,
    exp10_conp,
    exp11_xnf_check,
    exp12_lossless,
    exp13_ablation,
    exp14_fd_check,
    exp15_implication_cache
);
criterion_main!(benches);
