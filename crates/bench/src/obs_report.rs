//! The machine-readable perf artifact `reproduce` writes next to its
//! human output: `BENCH_obs.json`, one record per experiment run, so
//! every future change has a trajectory to diff against.
//!
//! Schema (stable; checked by [`check_schema`]):
//!
//! ```json
//! {
//!   "git_sha": "abc1234",
//!   "experiments": [
//!     {"id": "fig4", "wall_micros": 1234, "spans_dropped": 0,
//!      "counters": {"chase.runs": 17}}
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use xnf_obs::CounterSnapshot;

/// One experiment run: its id, wall time, and the counter totals the
/// run's recorder accumulated (empty for experiments that do not drive
/// the governed engine).
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// The dispatcher name of the experiment (`fig1` … `e19`).
    pub id: String,
    /// Wall-clock duration of the whole experiment, in microseconds.
    pub wall_micros: u64,
    /// Span events the run's recorder discarded at its cap — nonzero
    /// means the trace is incomplete and the record should be re-run
    /// with a larger span cap before being trusted for span-level diffs.
    pub spans_dropped: u64,
    /// Counter totals observed by the experiment's recorder.
    pub counters: CounterSnapshot,
}

/// The current commit's short SHA, or `"unknown"` outside a git checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the `BENCH_obs.json` document for one `reproduce` run.
pub fn render(git_sha: &str, records: &[ExperimentRecord]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"git_sha\":\"{}\",\"experiments\":[",
        escape(git_sha)
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"id\":\"{}\",\"wall_micros\":{},\"spans_dropped\":{},\"counters\":{{",
            escape(&r.id),
            r.wall_micros,
            r.spans_dropped
        );
        for (j, (name, value)) in r.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(name), value);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// A tiny schema check over a `BENCH_obs.json` document: well-formed
/// JSON quoting/nesting, the two top-level keys, and the three required
/// keys on every experiment record. Returns the first problem found.
pub fn check_schema(json: &str) -> Result<(), String> {
    // Structural well-formedness: balanced braces/brackets outside
    // strings, and strings themselves terminated.
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced closing brace/bracket".into());
                }
            }
            _ => {}
        }
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if depth != 0 {
        return Err(format!("unbalanced nesting (depth {depth} at end)"));
    }
    for key in ["\"git_sha\":", "\"experiments\":["] {
        if !json.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    // Every experiment record carries all four keys: equal counts.
    let count = |needle: &str| json.matches(needle).count();
    let ids = count("\"id\":");
    if ids != count("\"wall_micros\":")
        || ids != count("\"spans_dropped\":")
        || ids != count("\"counters\":{")
    {
        return Err("an experiment record is missing id/wall_micros/spans_dropped/counters".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut counters = CounterSnapshot::default();
        counters.record("chase.runs", 17);
        counters.record("cache.hits", 4);
        render(
            "abc1234",
            &[
                ExperimentRecord {
                    id: "fig4".into(),
                    wall_micros: 1234,
                    spans_dropped: 3,
                    counters,
                },
                ExperimentRecord {
                    id: "e19".into(),
                    wall_micros: 99,
                    spans_dropped: 0,
                    counters: CounterSnapshot::default(),
                },
            ],
        )
    }

    #[test]
    fn rendered_report_passes_the_schema_check() {
        let json = sample();
        check_schema(&json).unwrap();
        assert!(json.contains("\"git_sha\":\"abc1234\""));
        assert!(json.contains("\"id\":\"fig4\""));
        assert!(json.contains("\"spans_dropped\":3"));
        assert!(json.contains("\"chase.runs\":17"));
    }

    #[test]
    fn schema_check_rejects_malformed_documents() {
        assert!(check_schema("{\"git_sha\":\"x\"").is_err());
        assert!(check_schema("{\"experiments\":[]}").is_err());
        assert!(
            check_schema("{\"git_sha\":\"x\",\"experiments\":[{\"id\":\"a\"}]}").is_err(),
            "record missing wall_micros/counters must fail"
        );
        assert!(
            check_schema(
                "{\"git_sha\":\"x\",\"experiments\":[\
                 {\"id\":\"a\",\"wall_micros\":1,\"counters\":{}}]}"
            )
            .is_err(),
            "record missing spans_dropped must fail"
        );
    }

    #[test]
    fn git_sha_is_never_empty() {
        assert!(!git_sha().is_empty());
    }
}
