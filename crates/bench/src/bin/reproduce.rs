//! `reproduce` — regenerates every figure artifact of the paper and
//! prints the qualitative paper-vs-implementation comparison recorded in
//! `EXPERIMENTS.md`.
//!
//! Usage: `cargo run -p xnf-bench --bin reproduce [fig1|fig2|fig3|fig4|fig5|e17|e18|e19|e20|e21|e22|e23|e24|all]`
//!
//! Alongside the human output, every run writes `BENCH_obs.json` — one
//! record per experiment (id, wall time, counter snapshot, git SHA) —
//! so perf trajectories can be diffed across commits. Engine-driven
//! experiments run under a recorder-enabled budget; the self-timing
//! experiments (e18, e19, e20, e21, e22, e24, e25) manage their own budgets
//! and report empty counter snapshots.

#![forbid(unsafe_code)]

use xnf_bench::obs_report::{self, ExperimentRecord};
use xnf_core::lossless::{transform_document, verify_lossless};
use xnf_core::{normalize, tuples_d, NormalizeOptions, XmlFdSet};
use xnf_dtd::classify::{DtdClass, DtdShapes};
use xnf_govern::{Budget, Recorder};
use xnf_relational::nested::{unnest, NestedSchema, NestedTuple};

fn university() -> (xnf_dtd::Dtd, xnf_xml::XmlTree, XmlFdSet) {
    let dtd = xnf_dtd::parse_dtd(
        "<!ELEMENT courses (course*)>
         <!ELEMENT course (title, taken_by)>
         <!ATTLIST course cno CDATA #REQUIRED>
         <!ELEMENT title (#PCDATA)>
         <!ELEMENT taken_by (student*)>
         <!ELEMENT student (name, grade)>
         <!ATTLIST student sno CDATA #REQUIRED>
         <!ELEMENT name (#PCDATA)>
         <!ELEMENT grade (#PCDATA)>",
    )
    .expect("DTD parses");
    let doc = xnf_xml::parse(
        r#"<courses>
          <course cno="csc200"><title>Automata Theory</title><taken_by>
            <student sno="st1"><name>Deere</name><grade>A+</grade></student>
            <student sno="st2"><name>Smith</name><grade>B-</grade></student>
          </taken_by></course>
          <course cno="mat100"><title>Calculus I</title><taken_by>
            <student sno="st1"><name>Deere</name><grade>A-</grade></student>
            <student sno="st3"><name>Smith</name><grade>B+</grade></student>
          </taken_by></course>
        </courses>"#,
    )
    .expect("document parses");
    let sigma = XmlFdSet::parse(xnf_core::fd::UNIVERSITY_FDS).expect("FDs parse");
    (dtd, doc, sigma)
}

fn fig1(budget: &Budget) {
    println!("================ Figure 1 — the university example ================");
    let (dtd, doc, sigma) = university();
    println!("-- Figure 1(a): the original document --");
    print!("{}", xnf_xml::to_string_pretty(&doc));
    assert!(xnf_xml::conforms(&doc, &dtd).is_ok());
    println!("\n-- XNF analysis --");
    for v in xnf_core::anomalous_fds_governed(&dtd, &sigma, budget).expect("XNF test runs") {
        println!("anomalous FD: {}", v.fd);
    }
    let options = NormalizeOptions {
        budget: budget.clone(),
        ..NormalizeOptions::default()
    };
    let mut result = normalize(&dtd, &sigma, &options).expect("normalization succeeds");
    let transformed = transform_document(&dtd, &result, &doc).expect("transform succeeds");
    xnf_core::normalize::rename_element(&mut result.dtd, &mut result.sigma, "sno_ref", "number")
        .expect("rename succeeds");
    println!("\n-- revised DTD (paper prints name as a #PCDATA child of info;\n   the formal construction of Section 6 — and this output — makes it\n   an attribute) --");
    print!("{}", result.dtd);
    println!("\n-- Figure 1(b): the transformed document --");
    print!("{}", xnf_xml::to_string_pretty(&transformed));
    let pre_rename = normalize(&dtd, &sigma, &options).expect("normalization succeeds");
    let report = verify_lossless(&dtd, &pre_rename, &doc).expect("verification runs");
    println!("\nlossless: {report:?}");
    assert!(report.ok());
}

fn fig2() {
    println!("================ Figure 2 — a tree tuple and its tree ================");
    let (dtd, doc, _) = university();
    let paths = dtd.paths().expect("non-recursive");
    let tuples = tuples_d(&doc, &dtd, &paths).expect("compatible");
    println!(
        "tuples_D(T) has {} maximal tree tuples; the Figure 2 tuple:",
        tuples.len()
    );
    let cno = paths.resolve_str("courses.course.@cno").unwrap();
    let sno = paths
        .resolve_str("courses.course.taken_by.student.@sno")
        .unwrap();
    let t = tuples
        .iter()
        .find(|t| {
            t.get(cno) == &xnf_relational::Value::str("csc200")
                && t.get(sno) == &xnf_relational::Value::str("st1")
        })
        .expect("the Figure 2 tuple exists");
    for p in paths.iter() {
        println!("  t({}) = {}", paths.format(p), t.get(p));
    }
    let (tree, _) = t.tree(&paths).expect("valid tuple");
    println!("-- tree_D(t) (Figure 2(b)) --");
    print!("{}", xnf_xml::to_string_pretty(&tree));
}

fn fig3() {
    println!("================ Figure 3 — nested relation and its unnesting ================");
    let schema = NestedSchema::new(
        "H1",
        ["Country"],
        [NestedSchema::new(
            "H2",
            ["State"],
            [NestedSchema::leaf("H3", ["City"])],
        )],
    );
    let instance = vec![NestedTuple::new(
        ["United States"],
        [vec![
            NestedTuple::new(
                ["Texas"],
                [vec![
                    NestedTuple::leaf(["Houston"]),
                    NestedTuple::leaf(["Dallas"]),
                ]],
            ),
            NestedTuple::new(
                ["Ohio"],
                [vec![
                    NestedTuple::leaf(["Columbus"]),
                    NestedTuple::leaf(["Cleveland"]),
                ]],
            ),
        ]],
    )];
    println!("schema: {schema}");
    let flat = unnest(&schema, &instance).expect("arities match");
    println!("-- Figure 3(b): complete unnesting --\n{flat}");
    println!(
        "State -> Country holds: {}",
        flat.satisfies_fd(&["State"], &["Country"]).unwrap()
    );
    println!(
        "State -> City holds:    {}",
        flat.satisfies_fd(&["State"], &["City"]).unwrap()
    );
    let dtd = xnf_core::encode::nested_to_dtd(&schema).expect("coding succeeds");
    println!("-- coded DTD (Section 5) --\n{dtd}");
}

fn fig4(budget: &Budget) {
    println!("================ Figure 4 — the decomposition algorithm, traced ================");
    for (name, dtd_text, fds) in [
        (
            "university",
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
            xnf_core::fd::UNIVERSITY_FDS,
        ),
        (
            "dblp",
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
            xnf_core::fd::DBLP_FDS,
        ),
    ] {
        let dtd = xnf_dtd::parse_dtd(dtd_text).expect("DTD parses");
        let sigma = XmlFdSet::parse(fds).expect("FDs parse");
        let options = NormalizeOptions {
            budget: budget.clone(),
            ..NormalizeOptions::default()
        };
        let r = normalize(&dtd, &sigma, &options).expect("normalizes");
        println!(
            "-- {name}: |AP| trace {:?} (Proposition 6: strictly decreasing) --",
            r.ap_trace
        );
        for s in &r.steps {
            println!("   {s:?}");
        }
        assert!(xnf_core::is_xnf_governed(&r.dtd, &r.sigma, budget).expect("XNF test runs"));
        println!("   result is in XNF ✓");
    }
}

fn fig5() {
    println!("================ Figure 5 — the ebXML BPSS fragment ================");
    let dtd = xnf_dtd::parse_dtd(
        r#"<!ELEMENT ProcessSpecification (Documentation*, SubstitutionSet*,
              (Include | BusinessDocument | Package | BinaryCollaboration)*)>
           <!ELEMENT Include (Documentation*)>
           <!ELEMENT BusinessDocument (ConditionExpression?, Documentation*)>
           <!ELEMENT SubstitutionSet (DocumentSubstitution | AttributeSubstitution | Documentation)*>
           <!ELEMENT BinaryCollaboration (Documentation*, InitiatingRole, RespondingRole)>
           <!ELEMENT Package EMPTY>
           <!ELEMENT Documentation (#PCDATA)>
           <!ELEMENT ConditionExpression (#PCDATA)>
           <!ELEMENT DocumentSubstitution EMPTY>
           <!ELEMENT AttributeSubstitution EMPTY>
           <!ELEMENT InitiatingRole EMPTY>
           <!ELEMENT RespondingRole EMPTY>"#,
    )
    .expect("fragment parses");
    let shapes = DtdShapes::analyze(&dtd);
    println!("elements: {}, |D| = {}", dtd.num_elements(), dtd.size());
    match shapes.class() {
        DtdClass::Simple => println!(
            "class: SIMPLE — as the paper asserts (\"the Business Process\n\
             Specification Schema of ebXML … is a simple DTD\"); implication\n\
             over it is tractable (Theorem 3)"
        ),
        other => println!("class: {other:?}"),
    }
}

fn e17(budget: &Budget) {
    println!("================ E17 — end-to-end verification oracle ================");
    // The same battery `xnf-tool verify` runs, over the paper's university
    // spec plus a randomized differential sample, with the headline
    // numbers printed for EXPERIMENTS.md.
    let (dtd, _, sigma) = university();
    let config = xnf_oracle::SpecOracleConfig {
        budget: budget.clone(),
        ..xnf_oracle::SpecOracleConfig::default()
    };
    let report = xnf_oracle::check_spec(&dtd, &sigma, &config).expect("spec oracle runs");
    println!(
        "university spec: output in XNF: {}, {} step(s); losslessness on \
         {}/{} generated documents ({} skipped), {} failure(s)",
        report.output_is_xnf,
        report.steps,
        report.docs_checked,
        report.docs_requested,
        report.docs_skipped,
        report.failures.len()
    );

    let mut instances = 0usize;
    let mut refuted = 0usize;
    for seed in 0..100u64 {
        let (d, s) = xnf_oracle::fuzz::spec_for_seed(seed, &xnf_oracle::FuzzConfig::default());
        let mut rng = xnf_gen::rng(seed ^ 0xd1ff);
        let candidates = xnf_gen::fd::random_fds(
            &d,
            &mut rng,
            &xnf_gen::fd::FdParams {
                count: 4,
                max_lhs: 2,
            },
        );
        let paths = d.paths().expect("simple DTDs are non-recursive");
        let resolved = s.resolve(&paths).expect("generated FDs resolve");
        let chase = xnf_core::Chase::new(&d, &paths);
        let Ok(brute) = xnf_oracle::BruteForce::new(
            &d,
            &s,
            seed,
            4,
            &xnf_gen::doc::DocParams {
                reps: (0, 2),
                value_alphabet: 2,
                max_nodes: 150,
            },
        ) else {
            continue;
        };
        for fd in candidates.iter() {
            use xnf_core::Implication;
            let r = fd.resolve(&paths).expect("candidate resolves");
            instances += 1;
            if let Some(_witness) = brute.refutes(fd).expect("pool relations are well-formed") {
                refuted += 1;
                assert!(
                    !chase.implies(&resolved, &r),
                    "brute-force witness contradicts the chase on seed {seed}, fd {fd}"
                );
            }
        }
    }
    println!(
        "differential sample: {instances} (D, Σ, φ) instances, {refuted} \
         brute-force refutations, 0 disagreements with the chase"
    );
    println!("(full sweep: cargo test -q --test oracle_differential)");
}

fn e18() {
    use std::time::{Duration, Instant};
    println!("================ E18 — governed execution overhead ================");
    // The implication-heavy workload every budget checkpoint rides on:
    // a full `normalize` plus the XNF test of its output, on the paper's
    // university spec. Three budget flavors: the zero-cost ungoverned
    // handle, a governed handle with no limits (every checkpoint takes
    // the slow path but nothing can trip), and a governed handle with
    // all three limits metered (fuel CAS + memory + amortized deadline —
    // the worst case a `--timeout/--fuel/--max-memory` user pays).
    let (dtd, _, sigma) = university();
    let workload = |budget: &Budget| {
        let options = NormalizeOptions {
            budget: budget.clone(),
            ..NormalizeOptions::default()
        };
        let result = normalize(&dtd, &sigma, &options).expect("normalization succeeds");
        assert!(result.exhausted.is_none(), "generous budgets cannot trip");
        let in_xnf =
            xnf_core::is_xnf_governed(&result.dtd, &result.sigma, budget).expect("XNF test runs");
        assert!(in_xnf, "normalization reaches XNF");
    };
    const BATCH: usize = 20;
    let time = |mk: &dyn Fn() -> Budget| -> Duration {
        for _ in 0..3 {
            workload(&mk());
        }
        // Best-of-7 batches: the minimum is the stablest estimator for a
        // short CPU-bound workload on a possibly noisy machine.
        (0..7)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..BATCH {
                    workload(&mk());
                }
                t0.elapsed()
            })
            .min()
            .expect("seven batches ran")
    };
    let ungoverned = time(&Budget::unlimited);
    let governed = time(&|| Budget::builder().build());
    let metered = time(&|| {
        Budget::builder()
            .fuel(1 << 60)
            .memory(1 << 60)
            .deadline(Duration::from_secs(3600))
            .build()
    });
    let pct = |d: Duration| (d.as_secs_f64() / ungoverned.as_secs_f64() - 1.0) * 100.0;
    println!("workload: normalize + is-xnf on the university spec, batches of {BATCH}");
    println!("  ungoverned (Budget::unlimited) : {ungoverned:>12.3?}");
    println!(
        "  governed, no limits            : {governed:>12.3?}  ({:+.2}%)",
        pct(governed)
    );
    println!(
        "  governed, all limits metered   : {metered:>12.3?}  ({:+.2}%)",
        pct(metered)
    );
    println!("acceptance: metered overhead < 3% (see EXPERIMENTS.md E18)");
}

fn e19() {
    use std::time::{Duration, Instant};
    println!("================ E19 — observability overhead ================");
    // The same implication-heavy workload as E18, but varying the
    // *recorder*: the ungoverned baseline, a governed budget whose
    // recorder stays disabled (the default — every checkpoint pays one
    // extra `Option` test), and a governed budget with an enabled
    // recorder capturing every span, counter, and site tally.
    let (dtd, _, sigma) = university();
    let workload = |budget: &Budget| {
        let options = NormalizeOptions {
            budget: budget.clone(),
            ..NormalizeOptions::default()
        };
        let result = normalize(&dtd, &sigma, &options).expect("normalization succeeds");
        assert!(result.exhausted.is_none(), "generous budgets cannot trip");
        let in_xnf =
            xnf_core::is_xnf_governed(&result.dtd, &result.sigma, budget).expect("XNF test runs");
        assert!(in_xnf, "normalization reaches XNF");
    };
    const BATCH: usize = 20;
    const ROUNDS: usize = 120;
    // A fresh recorder per enabled round: one round models one CLI
    // `--trace` run (a process-lifetime recorder observing a bounded
    // number of engine runs). Sharing a single recorder across the
    // whole series would instead measure appending to an ever-growing
    // multi-megabyte span buffer, a steady state no real run reaches.
    let enabled_round_mk = || {
        let recorder = Recorder::enabled();
        move || Budget::builder().recorder(recorder.clone()).build()
    };
    // Interleaved median-of-N: each round times one batch of every
    // config back to back; each config reports the median of its round
    // times. Round-robin interleaving (instead of E18's per-config
    // batch runs) cancels slow machine-load drift, and the median (not
    // the minimum) shrugs off the occasional preempted batch — on a
    // shared box both effects dwarf the few-percent cost being
    // measured here.
    let mut times: [Vec<Duration>; 3] = [const { Vec::new() }; 3];
    let warm_enabled = enabled_round_mk();
    for mk in [
        &Budget::unlimited as &dyn Fn() -> Budget,
        &|| Budget::builder().build(),
        &warm_enabled,
    ] {
        for _ in 0..3 {
            workload(&mk());
        }
    }
    for _ in 0..ROUNDS {
        let enabled_mk = enabled_round_mk();
        let configs: [&dyn Fn() -> Budget; 3] = [
            &Budget::unlimited,
            &|| Budget::builder().build(),
            &enabled_mk,
        ];
        for (slot, mk) in times.iter_mut().zip(configs) {
            let t0 = Instant::now();
            for _ in 0..BATCH {
                workload(&mk());
            }
            slot.push(t0.elapsed());
        }
    }
    let median = |series: &mut Vec<Duration>| {
        series.sort_unstable();
        series[series.len() / 2]
    };
    let [ungoverned, disabled, enabled] = times.each_mut().map(median);
    // One factor at a time: the disabled-recorder cost is measured
    // against the ungoverned baseline (it adds one `Option` test per
    // checkpoint), and the recording cost against the disabled-recorder
    // governed baseline (the run a `--trace` user would otherwise do).
    let pct = |d: Duration, base: Duration| (d.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
    let probe = Recorder::enabled();
    workload(&Budget::builder().recorder(probe.clone()).build());
    let visits: u64 = probe.sites().iter().map(|(_, t)| t.visits).sum();
    println!("workload: normalize + is-xnf on the university spec, batches of {BATCH} (median of {ROUNDS} interleaved rounds)");
    println!(
        "  one workload records {} spans and {} checkpoint visits",
        probe.span_count(),
        visits
    );
    println!("  ungoverned (Budget::unlimited) : {ungoverned:>12.3?}");
    println!(
        "  governed, recorder disabled    : {disabled:>12.3?}  ({:+.2}% vs ungoverned)",
        pct(disabled, ungoverned)
    );
    println!(
        "  governed, recorder enabled     : {enabled:>12.3?}  ({:+.2}% vs disabled)",
        pct(enabled, disabled)
    );
    // The disabled row re-measures E18's quantity (the governed tick
    // itself — its config is E18's, minus explicit limits); the
    // recorder's own probe is the difference against that envelope.
    println!("acceptance: disabled within the ±3% E18 governance envelope, enabled < +10% vs disabled (see EXPERIMENTS.md E19)");
}

fn e20() {
    use std::time::{Duration, Instant};
    println!(
        "================ E20 — shard × thread scaling of the candidate search ================"
    );
    // The sharded anomalous-FD sweep on a wide spec: one anomalous FD
    // per root-child hub, so the shard plan has one fragment shard per
    // hub and the work divides cleanly. Every (shard, thread) cell is
    // first checked byte-identical to the sequential sweep, then timed.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available_parallelism: {cpus}");
    const WIDTH: usize = 12;
    let dtd = xnf_gen::dtd::wide_dtd(WIDTH);
    let fd_text: String = (0..WIDTH)
        .map(|i| format!("root.hub{i}.item{i}.@id{i} -> root.hub{i}.item{i}.@val{i}\n"))
        .collect();
    let sigma = XmlFdSet::parse(&fd_text).expect("FDs parse");
    let baseline = xnf_core::anomalous_fds(&dtd, &sigma).expect("sequential sweep runs");
    assert_eq!(baseline.len(), WIDTH, "one planted anomaly per hub");
    const BATCH: usize = 10;
    let time = |shards: usize, threads: usize| -> Duration {
        // Best-of-5 batches, as in E18: the minimum is the stablest
        // estimator for a short CPU-bound workload.
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..BATCH {
                    let got = xnf_core::anomalous_fds_sharded(&dtd, &sigma, shards, threads)
                        .expect("sharded sweep runs");
                    assert_eq!(got, baseline, "shards={shards} threads={threads}");
                }
                t0.elapsed()
            })
            .min()
            .expect("five batches ran")
    };
    println!("workload: anomalous-FD sweep on wide_dtd({WIDTH}), batches of {BATCH}");
    let base_time = time(1, 1);
    println!("  shards= 1 threads=1 : {base_time:>12.3?}  (baseline)");
    for shards in [2usize, 4] {
        for threads in [1usize, 2, 4] {
            // Correctness is asserted on every cell regardless; but a
            // speedup quoted from time-slicing one core would be noise,
            // so those rows are marked instead of reported.
            if threads > 1 && cpus == 1 {
                let got = xnf_core::anomalous_fds_sharded(&dtd, &sigma, shards, threads)
                    .expect("sharded sweep runs");
                assert_eq!(got, baseline);
                println!("  shards={shards:>2} threads={threads} : skipped (1 cpu) — output verified identical");
                continue;
            }
            let t = time(shards, threads);
            println!(
                "  shards={shards:>2} threads={threads} : {t:>12.3?}  ({:.2}x vs sequential)",
                base_time.as_secs_f64() / t.as_secs_f64()
            );
        }
    }
    println!(
        "acceptance: every cell byte-identical to the sequential sweep (see EXPERIMENTS.md E20)"
    );
}

fn e21() {
    use std::time::{Duration, Instant};
    use xnf_core::{DtdDelta, IncrementalCache, SigmaDelta, XmlFd};
    println!("================ E21 — incremental re-check vs from-scratch ================");
    // A wide spec with a chain of FDs inside each hub; each edit adds a
    // fresh attribute to one hub's item element — a small declaration
    // delta that dirties exactly one fragment. The incremental cache
    // must re-chase only that hub's entries; the from-scratch runner
    // pays the full query battery per step.
    const HUBS: usize = 6;
    const ATTRS: usize = 24;
    let mut dtd_text = String::from("<!ELEMENT root (");
    dtd_text.push_str(
        &(0..HUBS)
            .map(|i| format!("hub{i}*"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    dtd_text.push_str(")>\n");
    for i in 0..HUBS {
        dtd_text.push_str(&format!(
            "<!ELEMENT hub{i} (item{i}*)>\n<!ELEMENT item{i} EMPTY>\n"
        ));
        dtd_text.push_str(&format!("<!ATTLIST item{i}"));
        for a in 0..ATTRS {
            dtd_text.push_str(&format!(" a{a} CDATA #REQUIRED"));
        }
        dtd_text.push_str(">\n");
    }
    let dtd = xnf_dtd::parse_dtd(&dtd_text).expect("DTD parses");
    // Each hub carries a *descending* attribute chain a{j+1} -> a{j}:
    // canonical Σ order sorts the links against the propagation
    // direction, so a query saturates in one fixpoint pass per link —
    // a genuinely expensive chase, the regime an incremental cache is
    // for. (An ascending chain closes in a single pass and the chase
    // becomes as cheap as the cache's own bookkeeping.)
    let link = |hub: usize, a: usize| {
        XmlFd::parse(&format!(
            "root.hub{hub}.item{hub}.@a{} -> root.hub{hub}.item{hub}.@a{a}",
            a + 1
        ))
        .expect("chain link parses")
    };
    let pool: Vec<XmlFd> = (0..HUBS)
        .flat_map(|h| (0..ATTRS - 1).map(move |a| link(h, a)))
        .collect();
    // All queries are implied via the chain, so each run is a pure
    // saturation whose footprint stays inside its hub. (A refuted query
    // would run the counterexample split search, whose tuple placements
    // touch paths across the whole tree — such entries conservatively
    // invalidate on *any* declaration edit, by design.)
    let queries: Vec<XmlFd> = (0..HUBS)
        .flat_map(|h| {
            (0..ATTRS - 1).step_by(2).map(move |to| {
                XmlFd::parse(&format!(
                    "root.hub{h}.item{h}.@a{} -> root.hub{h}.item{h}.@a{to}",
                    ATTRS - 1
                ))
                .unwrap()
            })
        })
        .collect();
    let sigma = XmlFdSet::from_fds(pool.iter().cloned());
    // The edit script: three round-robin sweeps over the hubs, each step
    // adding one fresh attribute to one hub's item element. `steps[i]`
    // is the DTD after `i` edits.
    let item_ids: Vec<_> = dtd
        .elements()
        .filter(|&id| dtd.name(id).starts_with("item"))
        .collect();
    let mut steps = vec![dtd.clone()];
    for round in 0..3 {
        for &id in &item_ids {
            let mut next = steps.last().expect("seeded").clone();
            let name = next.fresh_attr_name(id, &format!("e21r{round}"));
            next.add_attribute(id, &name).expect("fresh attribute adds");
            steps.push(next);
        }
    }

    // Verification pass (untimed): every transferred verdict must match
    // a from-scratch fill, and the transfer must actually happen.
    let mut kept = 0usize;
    let mut invalidated = 0usize;
    {
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&queries).expect("initial fill runs");
        for pair in steps.windows(2) {
            let report = cache
                .apply_delta(
                    &DtdDelta::between(&pair[0], &pair[1]),
                    &SigmaDelta::unchanged(&sigma),
                )
                .expect("delta applies");
            kept += report.kept;
            invalidated += report.invalidated;
            let scratch = IncrementalCache::new(pair[1].clone(), sigma.clone())
                .implies_all(&queries)
                .expect("from-scratch fill runs");
            assert_eq!(
                cache.implies_all(&queries).expect("incremental answers"),
                scratch,
                "incremental diverged from from-scratch"
            );
        }
    }
    println!(
        "edit script: {} one-attribute DTD edits over {} hubs; {} verdicts kept, {} invalidated",
        steps.len() - 1,
        HUBS,
        kept,
        invalidated
    );
    assert!(kept > invalidated, "deltas this small must mostly transfer");

    // Timed passes, best-of-5 full sequences each.
    let time = |run: &dyn Fn()| -> Duration {
        run();
        (0..5)
            .map(|_| {
                let t0 = Instant::now();
                run();
                t0.elapsed()
            })
            .min()
            .expect("five rounds ran")
    };
    let incremental = time(&|| {
        let mut cache = IncrementalCache::new(dtd.clone(), sigma.clone());
        cache.implies_all(&queries).expect("initial fill runs");
        for pair in steps.windows(2) {
            cache
                .apply_delta(
                    &DtdDelta::between(&pair[0], &pair[1]),
                    &SigmaDelta::unchanged(&sigma),
                )
                .expect("delta applies");
            cache.implies_all(&queries).expect("incremental answers");
        }
    });
    let scratch = time(&|| {
        for dtd in &steps {
            IncrementalCache::new(dtd.clone(), sigma.clone())
                .implies_all(&queries)
                .expect("from-scratch fill runs");
        }
    });
    let speedup = scratch.as_secs_f64() / incremental.as_secs_f64();
    println!("  from-scratch, full edit sequence : {scratch:>12.3?}");
    println!("  incremental, full edit sequence  : {incremental:>12.3?}  ({speedup:.2}x)");
    println!(
        "acceptance: incremental >= 2x on small-delta edit sequences (see EXPERIMENTS.md E21)"
    );
    assert!(
        speedup >= 2.0,
        "incremental re-check is only {speedup:.2}x over from-scratch"
    );
}

fn e22() {
    use xnf_core::analyze::{analyze, e22_family, AnalyzeOptions};
    println!("================ E22 — static analysis vs executed normalization ================");
    // The static planner predicts the full Figure-4 run — plan, AP
    // trace, revised (D, Σ), chase/cache counters, governed tick bill —
    // without executing it. On specs whose iterations keep re-asking
    // overlapping implication queries, its cross-iteration incremental
    // caches transfer verdicts where the real run's per-iteration memo
    // re-chases, so the analysis runs several times cheaper than the
    // normalization it predicts. `e22_family(k)` pins that regime: k
    // key FDs plus k reversed value FDs force k MoveAttribute repairs,
    // one per fixpoint iteration, with heavily overlapping queries.
    for k in [5, 10, 25] {
        let (dtd, sigma) = e22_family(k);
        let a = analyze(&dtd, &sigma, &AnalyzeOptions::default()).expect("analysis succeeds");
        let budget = Budget::builder().build();
        let r = normalize(
            &dtd,
            &sigma,
            &NormalizeOptions {
                budget: budget.clone(),
                ..NormalizeOptions::default()
            },
        )
        .expect("normalization succeeds");
        let ticks = budget.ticks();
        assert_eq!(a.plan, r.steps, "the predicted plan must be byte-exact");
        assert_eq!(a.plan.len(), k, "one MoveAttribute per family member");
        let saving = ticks as f64 / a.cost.analyze_fuel as f64;
        println!(
            "  k={k:>2}: plan {:>2} step(s), analyze fuel {:>8}, normalize fuel {:>8}  ({saving:.2}x cheaper)",
            a.plan.len(),
            a.cost.analyze_fuel,
            ticks
        );
        if k == 25 {
            println!(
                "acceptance: analyze >= 5x cheaper than normalize at k=25 (see EXPERIMENTS.md E22)"
            );
            assert!(
                a.cost.analyze_fuel * 5 <= ticks,
                "analyze spent {} vs normalize {ticks} — less than the 5x saving",
                a.cost.analyze_fuel
            );
        }
    }
}

fn e23(budget: &Budget) {
    use xnf_core::{compile_schema, shred_document, unshred_document};
    println!("================ E23 — relational shredding: throughput & BCNF ================");
    // Side A: the anomalous-vs-normalized schema comparison. The paper's
    // two flagship redundancies surface as non-BCNF tables on the input
    // schema; after the Figure-4 normalization the same compiler emits
    // an all-BCNF design (Proposition 4's correspondence, end to end).
    for name in ["university", "dblp"] {
        let base = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
        let dtd = xnf_dtd::parse_dtd(
            &std::fs::read_to_string(format!("{base}/{name}.dtd")).expect("spec DTD exists"),
        )
        .expect("spec DTD parses");
        let sigma = XmlFdSet::parse(
            &std::fs::read_to_string(format!("{base}/{name}.fds")).expect("spec FDs exist"),
        )
        .expect("spec FDs parse");
        let anomalous = compile_schema(&dtd, &sigma, budget).expect("input schema compiles");
        let violations = anomalous.non_bcnf_tables();
        assert!(
            !violations.is_empty(),
            "{name}: the anomalous input spec must have a non-BCNF table"
        );
        let result = normalize(&dtd, &sigma, &NormalizeOptions::default()).expect("normalizes");
        let normalized =
            compile_schema(&result.dtd, &result.sigma, budget).expect("output schema compiles");
        assert!(
            normalized.non_bcnf_tables().is_empty(),
            "{name}: the normalized output schema must be all-BCNF"
        );
        println!(
            "  {name:<10}: input {} table(s), {} non-BCNF ({}); normalized {} table(s), 0 non-BCNF",
            anomalous.num_tables(),
            violations.len(),
            violations
                .iter()
                .map(|(ix, t, fd)| format!(
                    "{t}: {}",
                    anomalous
                        .violation_as_xml_fd(*ix, fd)
                        .map_or_else(|| fd.to_string(), |x| x.to_string())
                ))
                .collect::<Vec<_>>()
                .join("; "),
            normalized.num_tables(),
        );
    }

    // Side B: shred → rebuild throughput on generated Σ-satisfying
    // university documents, round trip asserted on every one.
    let (dtd, _, sigma) = university();
    let schema = compile_schema(&dtd, &sigma, budget).expect("schema compiles");
    let docs: Vec<xnf_xml::XmlTree> = (0..50)
        .map(|i| xnf_gen::doc::university_document(4, 5, 12, 4 + i % 3))
        .collect();
    let t0 = std::time::Instant::now();
    let mut rows_total = 0usize;
    for doc in &docs {
        let rows = shred_document(&schema, doc, budget).expect("document shreds");
        rows_total += rows.row_count();
        let rebuilt = unshred_document(&schema, &rows, budget).expect("rows rebuild");
        assert!(
            xnf_xml::ordered_eq(doc, &rebuilt),
            "the shred round trip must be the identity"
        );
    }
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "  throughput: {} documents, {rows_total} rows shredded + rebuilt in {:.1} ms  ({:.0} rows/s, round trip exact)",
        docs.len(),
        secs * 1e3,
        rows_total as f64 / secs
    );
    println!("acceptance: anomalies visible as non-BCNF tables, normalized schemas all-BCNF, every round trip exact (see EXPERIMENTS.md E23)");
}

/// E24's tiny HTTP client: one POST, returns (status, latency).
fn e24_post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, std::time::Duration) {
    use std::io::{Read as _, Write as _};
    let t0 = std::time::Instant::now();
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to server");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("well-formed status line");
    (status, t0.elapsed())
}

/// A university-spec variant with all element names suffixed, so each
/// index is a distinct canonical spec (cache and estimate-book miss).
fn e24_variant(i: usize) -> String {
    let base = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/specs");
    let dtd = std::fs::read_to_string(format!("{base}/university.dtd")).expect("spec DTD exists");
    let fds = std::fs::read_to_string(format!("{base}/university.fds")).expect("spec FDs exist");
    let tag = format!("courses{i}");
    let mut body = String::from("{\"dtd\":");
    xnf_serve::json::write_str(&mut body, &dtd.replace("courses", &tag));
    body.push_str(",\"fds\":");
    xnf_serve::json::write_str(&mut body, &fds.replace("courses", &tag));
    body.push('}');
    body
}

fn e24() {
    use xnf_serve::{ServeConfig, Server};
    println!(
        "================ E24 — service under load: latency, shedding, caching ================"
    );

    // Phase 1 — steady mixed load within capacity: 8 clients, 96
    // requests over 12 distinct specs (each hit 8 times), so both the
    // miss path and the single-flight/cache path are measured.
    let server = Server::spawn(ServeConfig {
        threads: 4,
        queue_depth: 256,
        ..ServeConfig::default()
    })
    .expect("spawn phase-1 server");
    let addr = server.addr();
    let mut clients = Vec::new();
    for c in 0..8usize {
        clients.push(std::thread::spawn(move || {
            for r in 0..12usize {
                let body = e24_variant(r);
                let path = if (c + r) % 2 == 0 {
                    "/v1/is-xnf"
                } else {
                    "/v1/normalize"
                };
                let (status, _) = e24_post(addr, path, &body);
                assert_eq!(status, 200, "phase 1 must stay within capacity");
            }
        }));
    }
    for c in clients {
        c.join().expect("phase-1 client");
    }
    let stats = server.cache_stats();
    let queries = stats.hits + stats.joined + stats.misses;
    let hit_rate = if queries == 0 {
        0.0
    } else {
        100.0 * (stats.hits + stats.joined) as f64 / queries as f64
    };
    let (p50, p99) = server
        .recorder()
        .histograms()
        .into_iter()
        .find(|(name, _)| *name == "serve.request.micros")
        .map(|(_, h)| (h.quantile(0.5).unwrap_or(0), h.quantile(0.99).unwrap_or(0)))
        .expect("request histogram recorded");
    println!(
        "  phase 1 (steady): 96 requests, p50 ≤ {p50} µs, p99 ≤ {p99} µs (power-of-two bucket bounds)"
    );
    println!(
        "  cache: {} hits + {} joined / {queries} lookups ({hit_rate:.0}% served without recompute), {} evictions",
        stats.hits, stats.joined, stats.evictions
    );
    assert!(
        stats.hits + stats.joined > 0,
        "repeated specs must land on the shared cache"
    );
    server.shutdown();

    // Phase 2 — overload: a queue of 2 and a near-zero fuel watermark
    // against 24 concurrent clients. The service must shed (429), keep
    // serving (some 200s), and keep latency bounded — degradation, not
    // collapse.
    let server = Server::spawn(ServeConfig {
        threads: 2,
        queue_depth: 2,
        fuel_watermark: 1,
        ..ServeConfig::default()
    })
    .expect("spawn phase-2 server");
    let addr = server.addr();
    let mut clients = Vec::new();
    for c in 0..24usize {
        clients.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for r in 0..4usize {
                let body = e24_variant(100 + (c * 4 + r) % 16);
                let (status, latency) = e24_post(addr, "/v1/normalize", &body);
                outcomes.push((status, latency));
            }
            outcomes
        }));
    }
    let mut latencies = Vec::new();
    let (mut ok, mut shed, mut other) = (0usize, 0usize, 0usize);
    for c in clients {
        for (status, latency) in c.join().expect("phase-2 client") {
            latencies.push(latency);
            match status {
                200 => ok += 1,
                429 => shed += 1,
                _ => other += 1,
            }
        }
    }
    latencies.sort();
    let total = latencies.len();
    let p99_wall = latencies[(total * 99 / 100).min(total - 1)];
    let shed_rate = 100.0 * shed as f64 / total as f64;
    println!(
        "  phase 2 (overload): {total} requests → {ok} served, {shed} shed with Retry-After ({shed_rate:.0}%), {other} other"
    );
    println!(
        "  phase 2 client-side p99: {:.1} ms (bounded — shedding, not queue collapse)",
        p99_wall.as_secs_f64() * 1e3
    );
    assert!(shed > 0, "overload must shed some load (shed rate > 0)");
    assert!(
        ok > 0,
        "overload must not collapse into shedding everything"
    );
    assert!(
        p99_wall < std::time::Duration::from_secs(10),
        "p99 under overload must stay bounded"
    );
    server.shutdown();
    println!("acceptance: steady-state served from cache with bucketed p50/p99 reported; overload degrades by shedding 429s while still serving and holding p99 bounded (see EXPERIMENTS.md E24)");
}

/// E25's HTTP client: one POST, returns (status, body) — the body is
/// compared byte-for-byte between the traced and untraced servers.
fn e25_post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to server");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read full response");
    let status: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .expect("well-formed status line");
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

fn e25() {
    use std::time::{Duration, Instant};
    use xnf_serve::{ServeConfig, Server};
    println!("================ E25 — request observability overhead ================");
    // Two otherwise-identical servers: one with full per-request
    // observability (per-request recorder, absorb-on-completion, flight
    // ring, labeled latency histograms, access-log formatting skipped —
    // no file configured), one with `--no-request-obs`. The workload is
    // steady-state cache-hit traffic: the compute path is identical and
    // near-free, so the measured difference is the per-request
    // observability machinery itself — the most adverse realistic case.
    let traced = Server::spawn(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("spawn traced server");
    let untraced = Server::spawn(ServeConfig {
        threads: 2,
        request_recording: false,
        ..ServeConfig::default()
    })
    .expect("spawn untraced server");
    const SPECS: usize = 6;
    let bodies: Vec<String> = (0..SPECS).map(e24_variant).collect();
    // Warm both caches and pin byte-identity: with and without request
    // recording, every response body must match exactly.
    for (r, body) in bodies.iter().enumerate() {
        for path in ["/v1/is-xnf", "/v1/normalize"] {
            let (st_t, body_t) = e25_post(traced.addr(), path, body);
            let (st_u, body_u) = e25_post(untraced.addr(), path, body);
            assert_eq!((st_t, st_u), (200, 200), "warmup spec {r} on {path}");
            assert_eq!(
                body_t, body_u,
                "spec {r} on {path}: traced and untraced responses must be byte-identical"
            );
        }
    }
    // Interleaved median-of-N rounds, as in E19: each round times one
    // batch against each server back to back, cancelling load drift;
    // the median shrugs off preempted rounds.
    const BATCH: usize = 24;
    const ROUNDS: usize = 80;
    let run_batch = |addr: std::net::SocketAddr| {
        for i in 0..BATCH {
            let (status, _) = e24_post(addr, "/v1/is-xnf", &bodies[i % SPECS]);
            assert_eq!(status, 200, "steady-state batch must hit the cache");
        }
    };
    let mut times: [Vec<Duration>; 2] = [const { Vec::new() }; 2];
    for _ in 0..3 {
        run_batch(traced.addr());
        run_batch(untraced.addr());
    }
    for _ in 0..ROUNDS {
        for (slot, addr) in times.iter_mut().zip([traced.addr(), untraced.addr()]) {
            let t0 = Instant::now();
            run_batch(addr);
            slot.push(t0.elapsed());
        }
    }
    let median = |series: &mut Vec<Duration>| {
        series.sort_unstable();
        series[series.len() / 2]
    };
    let [on, off] = times.each_mut().map(median);
    let pct = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    let retained = traced.flight().retained();
    println!(
        "workload: cache-hit is-xnf over {SPECS} specs, batches of {BATCH} (median of {ROUNDS} interleaved rounds)"
    );
    println!("  request obs disabled : {off:>12.3?}");
    println!("  request obs enabled  : {on:>12.3?}  ({pct:+.2}% vs disabled)");
    println!(
        "  flight ring after the sweep: {retained} retained, {} sampled out, {} evicted",
        traced.flight().sampled_out(),
        traced.flight().evicted()
    );
    assert!(
        retained > 0,
        "the traced server must retain a sample of the boring 200s"
    );
    traced.shutdown();
    untraced.shutdown();
    println!("acceptance: enabled < +10% vs disabled, responses byte-identical either way (see EXPERIMENTS.md E25)");
}

/// Builds the BENCH_obs counter snapshot for one experiment: the
/// recorder's named counters plus per-site checkpoint visit tallies
/// (names never collide — counters are plural, sites singular).
fn snapshot(recorder: &Recorder) -> xnf_obs::CounterSnapshot {
    let mut s = xnf_obs::CounterSnapshot::default();
    for (name, value) in recorder.counters() {
        s.record(name, value);
    }
    for (site, tally) in recorder.sites() {
        s.record(site, tally.visits);
    }
    s
}

/// One dispatchable experiment: its id and entry point.
type Experiment = (&'static str, fn(&Budget));

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    // Every experiment takes the run's recorder-enabled budget; the
    // self-measuring ones (e18, e19) ignore it and manage their own.
    let experiments: Vec<Experiment> = vec![
        ("fig1", fig1),
        ("fig2", |_| fig2()),
        ("fig3", |_| fig3()),
        ("fig4", fig4),
        ("fig5", |_| fig5()),
        ("e17", e17),
        ("e18", |_| e18()),
        ("e19", |_| e19()),
        ("e20", |_| e20()),
        ("e21", |_| e21()),
        ("e22", |_| e22()),
        ("e23", e23),
        ("e24", |_| e24()),
        ("e25", |_| e25()),
    ];
    let selected: Vec<&Experiment> = if arg == "all" {
        experiments.iter().collect()
    } else {
        let Some(exp) = experiments.iter().find(|(id, _)| *id == arg) else {
            eprintln!(
                "unknown figure `{arg}`; use fig1..fig5, e17, e18, e19, e20, e21, e22, e23, e24, e25, or all"
            );
            std::process::exit(1);
        };
        vec![exp]
    };
    let mut records = Vec::new();
    for (i, (id, f)) in selected.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let recorder = Recorder::enabled();
        let budget = Budget::builder().recorder(recorder.clone()).build();
        let t0 = std::time::Instant::now();
        f(&budget);
        records.push(ExperimentRecord {
            id: (*id).to_string(),
            wall_micros: u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
            spans_dropped: recorder.spans_dropped(),
            counters: snapshot(&recorder),
        });
    }
    let json = obs_report::render(&obs_report::git_sha(), &records);
    obs_report::check_schema(&json).expect("rendered BENCH_obs.json passes its own schema");
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => println!(
            "\nwrote BENCH_obs.json ({} experiment record(s))",
            records.len()
        ),
        Err(e) => eprintln!("\ncould not write BENCH_obs.json: {e}"),
    }
}
