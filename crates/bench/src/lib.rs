//! Criterion benches and experiment binaries for the xnf workspace.
