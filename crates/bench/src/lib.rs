//! Criterion benches and experiment binaries for the xnf workspace.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod obs_report;
