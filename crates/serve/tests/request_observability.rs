//! Process-level pinning of the request-observability contract
//! (DESIGN.md §14): the real `xnf-serve` binary is spawned and the id
//! plumbing is checked end to end — a supplied `x-request-id` comes
//! back on every status class (200, 4xx, 5xx, 429), lands in the
//! JSONL access log, and two concurrent requests never swap ids.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FLAT_DTD: &str = "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a id CDATA #REQUIRED>";
const FLAT_FDS: &str = "r.a.@id -> r.a";

/// A running server child; killed on drop so a failing assert never
/// leaks a process.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra_args: &[&str]) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xnf-serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xnf-serve");
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "no listening line in 30s");
        match stdout.read(&mut byte) {
            Ok(1) if byte[0] == b'\n' => break,
            Ok(1) => line.push(byte[0]),
            _ => panic!("server exited before printing its address"),
        }
    }
    let line = String::from_utf8(line).expect("UTF-8 listening line");
    let addr = line
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("malformed listening line `{line}`"));
    ServerProc { child, addr }
}

fn raw(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn status_of(response: &str) -> u16 {
    response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response {response:?}"))
}

fn echoed_id(response: &str) -> String {
    let head = response.split("\r\n\r\n").next().unwrap_or_default();
    head.lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("x-request-id")
                .then(|| v.trim().to_string())
        })
        .unwrap_or_else(|| panic!("no x-request-id in {head:?}"))
}

fn post_with_id(addr: SocketAddr, path: &str, body: &str, id: &str) -> String {
    raw(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nx-request-id: {id}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn spec_body() -> String {
    format!(
        "{{\"dtd\":\"{}\",\"fds\":\"{}\"}}",
        FLAT_DTD.replace('"', "\\\""),
        FLAT_FDS
    )
}

fn access_log_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("xnf-serve-obs-{tag}-{}.jsonl", std::process::id()))
}

/// Polls the access log until `want` lines mentioning our ids appear;
/// the server flushes per line, so this converges immediately in
/// practice — the loop only absorbs process scheduling.
fn wait_for_log_lines(path: &std::path::Path, needles: &[&str]) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let log = std::fs::read_to_string(path).unwrap_or_default();
        if needles.iter().all(|n| log.contains(n)) {
            return log;
        }
        assert!(
            Instant::now() < deadline,
            "access log never gained {needles:?}: {log}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn supplied_ids_are_echoed_on_every_status_class_and_logged() {
    let log = access_log_path("statuses");
    let _ = std::fs::remove_file(&log);
    // --default-fuel 5 makes every spec op exhaust: the 503 row.
    let server = spawn_server(&[
        "--access-log",
        &log.to_string_lossy(),
        "--default-fuel",
        "5",
    ]);
    let addr = server.addr;
    let body = spec_body();

    // 200 (health has no budget to exhaust is not a POST; use lint with
    // a malformed body for 400, the spec op for 503, and /metrics-level
    // GETs go without ids here — POSTs carry them).
    let resp = post_with_id(addr, "/v1/lint", "{not json", "obs-400");
    assert_eq!(status_of(&resp), 400, "{resp}");
    assert_eq!(echoed_id(&resp), "obs-400");

    let resp = post_with_id(addr, "/v1/normalize", &body, "obs-503");
    assert_eq!(status_of(&resp), 503, "{resp}");
    assert_eq!(echoed_id(&resp), "obs-503");

    let resp = post_with_id(addr, "/no-such", "", "obs-404");
    assert_eq!(status_of(&resp), 404, "{resp}");
    assert_eq!(echoed_id(&resp), "obs-404");

    // Every request above appears in the access log with its id and
    // final status.
    let text = wait_for_log_lines(&log, &["obs-400", "obs-503", "obs-404"]);
    for (id, status) in [("obs-400", 400), ("obs-503", 503), ("obs-404", 404)] {
        let line = text
            .lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no log line for {id}: {text}"));
        assert!(
            line.contains(&format!("\"status\":{status}")),
            "wrong status for {id}: {line}"
        );
    }
    let _ = std::fs::remove_file(&log);
}

#[test]
fn a_200_and_a_quota_429_echo_supplied_ids_and_inline_sheds_mint_one() {
    let log = access_log_path("quota");
    let _ = std::fs::remove_file(&log);
    // Burst 1 at a negligible refill: the second keyed request sheds
    // 429 through the full request path, so the supplied id must come
    // back on it just like on the 200.
    let server = spawn_server(&[
        "--access-log",
        &log.to_string_lossy(),
        "--tenant",
        "secret:acme:100000:5000:0.0001:1",
    ]);
    let addr = server.addr;
    let body = spec_body();
    let with_key = |id: &str| {
        raw(
            addr,
            &format!(
                "POST /v1/lint HTTP/1.1\r\nHost: t\r\nX-Api-Key: secret\r\n\
                 x-request-id: {id}\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    };
    let resp = with_key("obs-200");
    assert_eq!(status_of(&resp), 200, "{resp}");
    assert_eq!(echoed_id(&resp), "obs-200");
    let resp = with_key("obs-429");
    assert_eq!(status_of(&resp), 429, "{resp}");
    assert_eq!(echoed_id(&resp), "obs-429");
    let text = wait_for_log_lines(&log, &["obs-200", "obs-429"]);
    let ok_line = text
        .lines()
        .find(|l| l.contains("\"id\":\"obs-200\""))
        .expect("200 logged");
    assert!(ok_line.contains("\"status\":200"), "{ok_line}");
    assert!(ok_line.contains("\"tenant\":\"acme\""), "{ok_line}");
    let shed_line = text
        .lines()
        .find(|l| l.contains("\"id\":\"obs-429\""))
        .expect("429 logged");
    assert!(shed_line.contains("\"status\":429"), "{shed_line}");
    assert!(shed_line.contains("\"shed\":\"quota\""), "{shed_line}");
    drop(server);
    let _ = std::fs::remove_file(&log);

    // Queue depth 0: the accept thread sheds before the request is ever
    // read, so no client id can be propagated — the shed still gets a
    // minted 32-hex id and a `"shed":"queue"` access-log line.
    let log = access_log_path("queue");
    let _ = std::fs::remove_file(&log);
    let server = spawn_server(&["--access-log", &log.to_string_lossy(), "--queue", "0"]);
    let resp = post_with_id(server.addr, "/v1/lint", &spec_body(), "obs-ignored");
    assert_eq!(status_of(&resp), 429, "{resp}");
    let minted = echoed_id(&resp);
    assert_eq!(minted.len(), 32, "{minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
    let text = wait_for_log_lines(&log, &[&format!("\"id\":\"{minted}\"")]);
    let line = text
        .lines()
        .find(|l| l.contains(&minted))
        .expect("queue shed logged");
    assert!(line.contains("\"status\":429"), "{line}");
    assert!(line.contains("\"shed\":\"queue\""), "{line}");
    drop(server);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn concurrent_requests_never_swap_ids() {
    let server = spawn_server(&["--threads", "4"]);
    let addr = server.addr;
    let body = spec_body();
    // 4 worker threads × 8 client threads × 16 sequential requests,
    // every one asserting its own id round-trips. A swap anywhere
    // (shared mutable id, response written to the wrong socket) fails
    // loudly.
    let mut clients = Vec::new();
    for c in 0..8u32 {
        let body = body.clone();
        clients.push(std::thread::spawn(move || {
            for r in 0..16u32 {
                let id = format!("swap-{c:02}-{r:02}");
                let resp = post_with_id(addr, "/v1/lint", &body, &id);
                assert_eq!(status_of(&resp), 200, "{resp}");
                assert_eq!(echoed_id(&resp), id, "ids swapped under concurrency");
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
}
