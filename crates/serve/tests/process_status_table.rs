//! Process-level pinning of the documented status/exit-code table
//! (DESIGN.md §13): the real `xnf-serve` binary is spawned, driven
//! over real sockets, and drained over stdin — the service analogue of
//! the CLI's exit-code contract (0 clean drain, 2 usage; HTTP statuses
//! per endpoint outcome).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const FLAT_DTD: &str = "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a id CDATA #REQUIRED>";
const FLAT_FDS: &str = "r.a.@id -> r.a";

/// A running server child; killed on drop so a failing assert never
/// leaks a process.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra_args: &[&str]) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xnf-serve"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra_args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xnf-serve");
    // The supervisor contract: first stdout line carries the resolved
    // ephemeral address.
    let stdout = child.stdout.as_mut().expect("stdout piped");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "no listening line in 30s");
        match stdout.read(&mut byte) {
            Ok(1) if byte[0] == b'\n' => break,
            Ok(1) => line.push(byte[0]),
            _ => panic!("server exited before printing its address"),
        }
    }
    let line = String::from_utf8(line).expect("UTF-8 listening line");
    let addr = line
        .rsplit(' ')
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("malformed listening line `{line}`"));
    ServerProc { child, addr }
}

fn raw(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn status_of(response: &str) -> u16 {
    response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response {response:?}"))
}

fn post(addr: SocketAddr, path: &str, body: &str, headers: &[(&str, &str)]) -> (u16, String) {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    let response = raw(addr, &req);
    (status_of(&response), response)
}

fn get(addr: SocketAddr, path: &str) -> u16 {
    status_of(&raw(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"),
    ))
}

fn spec_body() -> String {
    format!(
        "{{\"dtd\":\"{}\",\"fds\":\"{}\"}}",
        FLAT_DTD.replace('"', "\\\""),
        FLAT_FDS
    )
}

/// Waits for exit, with a deadline so a hung drain fails the test
/// rather than the harness.
fn wait_exit(mut server: ServerProc) -> i32 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            // Forget the child so Drop does not kill a reaped pid.
            let code = status.code().unwrap_or(-1);
            std::mem::forget(server);
            return code;
        }
        assert!(
            Instant::now() < deadline,
            "server did not exit within 30s of drain"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn the_status_table_holds_and_stdin_eof_drains_to_exit_0() {
    let mut server = spawn_server(&["--max-body", "4096"]);
    let addr = server.addr;

    // 200s: health, readiness, every operation, metrics.
    assert_eq!(get(addr, "/healthz"), 200);
    assert_eq!(get(addr, "/readyz"), 200);
    let body = spec_body();
    for path in ["/v1/lint", "/v1/is-xnf", "/v1/normalize", "/v1/analyze"] {
        let (status, response) = post(addr, path, &body, &[]);
        assert_eq!(status, 200, "{path}: {response}");
    }
    let batch = format!(
        "{{\"requests\":[{},{}]}}",
        body.replacen('{', "{\"op\":\"lint\",", 1),
        body.replacen('{', "{\"op\":\"is-xnf\",", 1)
    );
    assert_eq!(post(addr, "/v1/batch", &batch, &[]).0, 200);
    assert_eq!(get(addr, "/metrics"), 200);

    // 4xx: routing, framing, body, and spec errors.
    assert_eq!(get(addr, "/no-such"), 404);
    assert_eq!(
        status_of(&raw(addr, "PUT /v1/lint HTTP/1.1\r\nHost: t\r\n\r\n")),
        405
    );
    assert_eq!(post(addr, "/v1/lint", "{not json", &[]).0, 400);
    assert_eq!(post(addr, "/v1/lint", "{}", &[]).0, 400);
    assert_eq!(
        post(
            addr,
            "/v1/is-xnf",
            "{\"dtd\":\"<!ELEMENT broken\",\"fds\":\"\"}",
            &[]
        )
        .0,
        422
    );
    let oversized = format!("{{\"dtd\":\"{}\"}}", "x".repeat(8192));
    assert_eq!(post(addr, "/v1/lint", &oversized, &[]).0, 413);
    assert_eq!(
        status_of(&raw(
            addr,
            "POST /v1/lint HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"
        )),
        411
    );

    // Clean drain: close stdin, expect exit code 0.
    drop(server.child.stdin.take());
    assert_eq!(wait_exit(server), 0);
}

#[test]
fn budget_exhaustion_maps_to_503_with_a_partial_body() {
    // A 5-tick budget cannot finish any spec op: the table's 503 row.
    let server = spawn_server(&["--default-fuel", "5"]);
    let (status, response) = post(server.addr, "/v1/normalize", &spec_body(), &[]);
    assert_eq!(status, 503, "{response}");
    assert!(response.contains("\"status\":\"exhausted\""), "{response}");
}

#[test]
fn a_zero_depth_queue_sheds_429_with_retry_after() {
    let server = spawn_server(&["--queue", "0"]);
    let (status, response) = post(server.addr, "/v1/lint", &spec_body(), &[]);
    assert_eq!(status, 429, "{response}");
    assert!(response.contains("Retry-After:"), "{response}");
}

#[test]
fn tenants_gate_on_api_keys_and_quotas() {
    let server = spawn_server(&["--tenant", "secret:acme:100000:5000:0.0001:1"]);
    let addr = server.addr;
    let body = spec_body();
    assert_eq!(post(addr, "/v1/lint", &body, &[]).0, 401);
    assert_eq!(
        post(addr, "/v1/lint", &body, &[("X-Api-Key", "wrong")]).0,
        401
    );
    assert_eq!(
        post(addr, "/v1/lint", &body, &[("X-Api-Key", "secret")]).0,
        200
    );
    // Burst 1 at a negligible refill: the second request sheds.
    let (status, response) = post(addr, "/v1/lint", &body, &[("X-Api-Key", "secret")]);
    assert_eq!(status, 429, "{response}");
    assert!(response.contains("Retry-After:"), "{response}");
}

#[test]
fn drain_endpoint_also_exits_0_and_bad_usage_exits_2() {
    let server = spawn_server(&[]);
    let (status, _) = post(server.addr, "/admin/drain", "", &[]);
    assert_eq!(status, 200);
    assert_eq!(wait_exit(server), 0);

    let out = Command::new(env!("CARGO_BIN_EXE_xnf-serve"))
        .arg("--no-such-flag")
        .output()
        .expect("run with bad args");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
