//! `xnf-serve` — the HTTP front end; see the crate docs of `xnf-serve`
//! for the endpoints and the robustness stack.
//!
//! Exit codes: `0` after a graceful drain (stdin EOF or
//! `POST /admin/drain`), `1` on a bind failure, `2` on bad arguments.
//! There is no SIGTERM handler — the workspace forbids `unsafe`, so no
//! signal can be hooked std-only; supervisors should close stdin or
//! call the drain endpoint, then wait for exit.

use xnf_serve::{ServeConfig, Server, TenantConfig};

const USAGE: &str = "\
usage: xnf-serve [options]
  --addr HOST:PORT       bind address (default 127.0.0.1:0; port 0 = ephemeral)
  --threads N            worker threads (default 4)
  --queue N              accept-queue depth; beyond it requests shed 429 (default 64)
  --fuel-watermark N     estimated-fuel-in-flight admission cap (default 4000000)
  --unknown-cost N       fuel estimate for unseen specs (default 20000)
  --default-fuel N       per-request fuel cap without tenants (default 2000000)
  --deadline-ms N        per-request wall deadline without tenants (default 10000)
  --max-body N           request-body byte cap (default 8388608)
  --cache-bytes N        result-cache resident byte cap (default 33554432)
  --io-timeout-ms N      socket read/write timeout (default 5000)
  --access-log FILE      append one JSON object per request to FILE
  --flight-cap N         flight-recorder ring capacity (default 256)
  --flight-sample N      keep 1 in N boring 200s in the ring (default 8; 0 keeps none)
  --no-request-obs       disable per-request recording (flight ring stays empty)
  --tenant SPEC          KEY:NAME:FUEL:DEADLINE_MS:RATE_PER_SEC:BURST (repeatable)
  --quiet                do not print the listening line

The process drains gracefully on stdin EOF or POST /admin/drain and
then exits 0.";

struct Args {
    config: ServeConfig,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ServeConfig::default();
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => config.threads = parse_num(&value("--threads")?, "--threads")?,
            "--queue" => config.queue_depth = parse_num(&value("--queue")?, "--queue")?,
            "--fuel-watermark" => {
                config.fuel_watermark = parse_num(&value("--fuel-watermark")?, "--fuel-watermark")?;
            }
            "--unknown-cost" => {
                config.unknown_cost = parse_num(&value("--unknown-cost")?, "--unknown-cost")?;
            }
            "--default-fuel" => {
                config.default_fuel = parse_num(&value("--default-fuel")?, "--default-fuel")?;
            }
            "--deadline-ms" => {
                config.default_deadline_ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
            }
            "--max-body" => config.max_body = parse_num(&value("--max-body")?, "--max-body")?,
            "--cache-bytes" => {
                config.cache_bytes = parse_num(&value("--cache-bytes")?, "--cache-bytes")?;
            }
            "--io-timeout-ms" => {
                config.io_timeout_ms = parse_num(&value("--io-timeout-ms")?, "--io-timeout-ms")?;
            }
            "--access-log" => config.access_log = Some(value("--access-log")?),
            "--flight-cap" => {
                config.flight_cap = parse_num(&value("--flight-cap")?, "--flight-cap")?
            }
            "--flight-sample" => {
                config.flight_sample = parse_num(&value("--flight-sample")?, "--flight-sample")?;
            }
            "--no-request-obs" => config.request_recording = false,
            "--tenant" => config.tenants.push(parse_tenant(&value("--tenant")?)?),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Args { config, quiet })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse::<T>()
        .map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

/// `KEY:NAME:FUEL:DEADLINE_MS:RATE_PER_SEC:BURST`.
fn parse_tenant(spec: &str) -> Result<TenantConfig, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [key, name, fuel, deadline_ms, rate, burst] = parts.as_slice() else {
        return Err(format!(
            "--tenant `{spec}`: expected KEY:NAME:FUEL:DEADLINE_MS:RATE_PER_SEC:BURST"
        ));
    };
    Ok(TenantConfig {
        key: (*key).to_string(),
        name: (*name).to_string(),
        fuel: parse_num(fuel, "--tenant FUEL")?,
        deadline_ms: parse_num(deadline_ms, "--tenant DEADLINE_MS")?,
        memory: 0,
        rate_per_sec: parse_num(rate, "--tenant RATE_PER_SEC")?,
        burst: parse_num(burst, "--tenant BURST")?,
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("xnf-serve: {message}");
            }
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::spawn(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xnf-serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    if !args.quiet {
        // The supervisor contract: one line, the resolved address.
        println!("xnf-serve listening on {}", server.addr());
    }
    // Stdin EOF is the drain signal a std-only binary can observe
    // (no signal handlers without `unsafe`); CI and supervisors keep
    // the pipe open for the server's lifetime.
    let drain = server.drain_handle();
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        drain.drain();
    });
    server.join();
}
