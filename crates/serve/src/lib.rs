//! # `xnf-serve` — the normalization library as a governed service
//!
//! A std-only threaded HTTP/1.1 server (no external dependencies — the
//! build environment is offline) exposing the spec-level operations of
//! `xnf-cli::ops` over JSON:
//!
//! | endpoint          | operation                                    |
//! |-------------------|----------------------------------------------|
//! | `POST /v1/lint`     | [`xnf_cli::ops::lint_sources`]             |
//! | `POST /v1/is-xnf`   | [`xnf_cli::ops::is_xnf`]                   |
//! | `POST /v1/normalize`| [`xnf_cli::ops::normalize_spec`]           |
//! | `POST /v1/analyze`  | [`xnf_cli::ops::analyze_spec`]             |
//! | `POST /v1/batch`    | a sequence of the above in one request     |
//! | `GET /healthz`      | liveness                                   |
//! | `GET /readyz`       | readiness (`503` once draining)            |
//! | `GET /metrics`      | Prometheus text ([`Recorder::prometheus`]) |
//! | `GET /debug/requests` | recent request summaries (flight ring)   |
//! | `GET /debug/trace/{id}` | one request's span tree, Chrome-trace JSON |
//! | `POST /admin/drain` | graceful drain (see below)                 |
//!
//! ## Layered robustness
//!
//! The service composes the governance primitives grown in earlier PRs
//! into an overload-safe stack:
//!
//! 1. **Bounded accept queue** — the accept thread pushes connections
//!    into a fixed-depth queue; past the watermark it answers `429`
//!    with `Retry-After` *before* reading a byte of body (load is shed
//!    at the cheapest possible point).
//! 2. **Cost-model admission** — spec operations are admitted against
//!    an estimated-fuel-in-flight watermark. The estimate book is
//!    seeded by the static planner's fuel forecast
//!    ([`xnf_cli::ops::AnalyzeOutcome::predicted_fuel`]) and refined
//!    with each request's observed [`Budget::ticks`], so the admission
//!    controller learns the true cost of hot specs.
//! 3. **Per-tenant quotas** — API keys map to [`TokenBucket`] request
//!    rates and per-request budget caps (wall clock, fuel, memory).
//!    Budget exhaustion mid-request answers `503` carrying the partial
//!    step trace — never a hung connection.
//! 4. **Shared single-flight cache** — results are cached in a
//!    [`ShardedCache`] keyed by the *canonical* parsed spec
//!    ([`xnf_core::spec_cache_key`]), so formatting-different but
//!    semantically identical requests coalesce, concurrent identical
//!    requests compute once, and failed computations are never cached.
//! 5. **Graceful drain** — `POST /admin/drain` (or stdin EOF on the
//!    binary, the no-`libc` stand-in for SIGTERM; the workspace
//!    forbids `unsafe`, so no signal handler can be installed) stops
//!    the accept loop, finishes every queued request, and lets the
//!    process exit 0.
//!
//! With the `fault-injection` feature, [`Server::set_fault`] installs a
//! deterministic [`FaultPlan`] on every admitted request's budget; the
//! chaos suite sweeps each service-reachable checkpoint ordinal and
//! asserts a well-formed HTTP error every time — no panic, no dropped
//! connection, no partially cached entry.
//!
//! ## Request observability
//!
//! Every request carries a request id — minted, or propagated from a
//! client `x-request-id`/`traceparent` header — echoed back in the
//! `x-request-id` response header on every status, stamped into the
//! optional JSONL access log ([`ServeConfig::access_log`], one line per
//! request, schema `docs/access_log.schema.json`), and bound to a
//! per-request [`Recorder`] whose span tree lands in a bounded
//! [`FlightRecorder`](xnf_obs::FlightRecorder) ring with tail-sampling
//! retention (errors, sheds, and the slow tail always; boring 200s
//! sampled). On completion the per-request recorder is absorbed into
//! the shared one, so fleet metrics see every request while `/metrics`
//! and `--stats` stay O(1) in request count. `GET /debug/requests`
//! lists the retained ring; `GET /debug/trace/{id}` replays one
//! request's span tree as Chrome-trace JSON.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod http;
pub mod json;

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::http::{HttpError, Request};
use crate::json::Json;
use xnf_cli::ops::{
    self, AnalyzeFormat, AnalyzeSpecOptions, IsXnfOptions, LintSpecOptions, NormalizeSpecOptions,
    Trust,
};
use xnf_cli::CliError;
#[cfg(feature = "fault-injection")]
use xnf_govern::FaultPlan;
use xnf_govern::{Budget, TokenBucket};
use xnf_obs::{FlightRecorder, LabeledHistograms, Recorder, RequestRecord};

/// One tenant: an API key, a display name, per-request budget caps,
/// and a request-rate quota.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The value clients present in `X-Api-Key`.
    pub key: String,
    /// Display name (used in quota counters and error bodies).
    pub name: String,
    /// Per-request fuel cap (checkpoint ticks).
    pub fuel: u64,
    /// Per-request wall-clock deadline, milliseconds.
    pub deadline_ms: u64,
    /// Per-request memory cap (budget units; 0 = unmetered).
    pub memory: u64,
    /// Sustained requests per second.
    pub rate_per_sec: f64,
    /// Burst capacity (token-bucket size).
    pub burst: f64,
}

/// Server configuration; [`ServeConfig::default`] is a sane local
/// profile with an ephemeral port.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` (0 = ephemeral).
    pub addr: String,
    /// Worker threads.
    pub threads: usize,
    /// Accept-queue depth; connections beyond it are shed with `429`.
    pub queue_depth: usize,
    /// Estimated-fuel-in-flight watermark for spec-op admission.
    pub fuel_watermark: u64,
    /// Fuel estimate for a spec the book has never seen.
    pub unknown_cost: u64,
    /// Per-request fuel cap for anonymous requests (no tenants
    /// configured).
    pub default_fuel: u64,
    /// Per-request deadline for anonymous requests, milliseconds.
    pub default_deadline_ms: u64,
    /// Request-body byte cap (`413` beyond it).
    pub max_body: usize,
    /// Result-cache capacity in payload bytes.
    pub cache_bytes: usize,
    /// Result-cache shard count.
    pub cache_shards: usize,
    /// Socket read/write timeout, milliseconds.
    pub io_timeout_ms: u64,
    /// Completed-span retention on the shared recorder.
    pub span_cap: usize,
    /// Flight-recorder ring capacity (retained request records).
    pub flight_cap: usize,
    /// Keep one in this many boring 200s in the flight ring (0 keeps
    /// none; errors, sheds, and the slow tail are always kept).
    pub flight_sample: u64,
    /// Completed-span retention on each per-request recorder.
    pub request_span_cap: usize,
    /// Per-request recording (request recorder + flight ring + shared
    /// absorb). Disabling it is the E25 baseline; responses are
    /// byte-identical either way.
    pub request_recording: bool,
    /// JSONL access-log path (append; one object per request). `None`
    /// disables the log.
    pub access_log: Option<String>,
    /// Tenants; empty means anonymous access under the defaults.
    pub tenants: Vec<TenantConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_depth: 64,
            fuel_watermark: 4_000_000,
            unknown_cost: 20_000,
            default_fuel: 2_000_000,
            default_deadline_ms: 10_000,
            max_body: 8 << 20,
            cache_bytes: 32 << 20,
            cache_shards: 8,
            io_timeout_ms: 5_000,
            span_cap: 4_096,
            flight_cap: 256,
            flight_sample: 8,
            request_span_cap: 512,
            request_recording: true,
            access_log: None,
            tenants: Vec::new(),
        }
    }
}

struct Tenant {
    name: String,
    fuel: u64,
    deadline_ms: u64,
    memory: u64,
    bucket: TokenBucket,
}

/// A fully rendered response, one step before the socket.
#[derive(Debug, Clone)]
struct Reply {
    status: u16,
    reason: &'static str,
    body: String,
    retry_after: Option<u64>,
    cache: Option<&'static str>,
    /// Which admission layer shed this request (`queue`, `fuel`,
    /// `quota`), for the access log and flight ring.
    shed: Option<&'static str>,
}

impl Reply {
    fn json(status: u16, reason: &'static str, body: String) -> Reply {
        Reply {
            status,
            reason,
            body,
            retry_after: None,
            cache: None,
            shed: None,
        }
    }

    fn ok_output(output: &str, status_word: &str) -> Reply {
        let mut body = String::with_capacity(output.len() + 32);
        body.push_str("{\"status\":");
        json::write_str(&mut body, status_word);
        body.push_str(",\"output\":");
        json::write_str(&mut body, output);
        body.push_str("}\n");
        Reply::json(200, "OK", body)
    }

    fn error(status: u16, reason: &'static str, kind: &str, message: &str) -> Reply {
        let mut body = String::with_capacity(message.len() + 48);
        body.push_str("{\"status\":\"error\",\"kind\":");
        json::write_str(&mut body, kind);
        body.push_str(",\"message\":");
        json::write_str(&mut body, message);
        body.push_str("}\n");
        Reply::json(status, reason, body)
    }

    fn exhausted(partial: &str) -> Reply {
        let mut body = String::with_capacity(partial.len() + 48);
        body.push_str("{\"status\":\"exhausted\",\"partial\":");
        json::write_str(&mut body, partial);
        body.push_str("}\n");
        Reply::json(503, "Service Unavailable", body)
    }

    fn shed(kind: &str, layer: &'static str, message: &str, retry_after: u64) -> Reply {
        let mut reply = Reply::error(429, "Too Many Requests", kind, message);
        reply.retry_after = Some(retry_after.max(1));
        reply.shed = Some(layer);
        reply
    }
}

struct Inner {
    config: ServeConfig,
    addr: SocketAddr,
    recorder: Recorder,
    /// Tail-sampling ring of recent request records (`/debug/…`).
    flight: FlightRecorder,
    /// Route × tenant × cache-outcome latency histograms (`/metrics`).
    labeled: LabeledHistograms,
    /// The JSONL access log, when configured.
    access_log: Option<Mutex<std::fs::File>>,
    cache: xnf_core::ShardedCache<String>,
    /// Spec → learned fuel cost, feeding the admission controller.
    estimates: Mutex<HashMap<String, u64>>,
    fuel_in_flight: AtomicU64,
    draining: AtomicBool,
    tenants: HashMap<String, Tenant>,
    epoch: Instant,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    #[cfg(feature = "fault-injection")]
    fault: Mutex<Option<FaultPlan>>,
}

/// Recovers a possibly poisoned mutex: the protected structures
/// (queue, estimate book) stay consistent under any interleaving of
/// their short critical sections, so continuing after a panicking
/// holder is sound — and a robustness service must not turn one bad
/// request into a permanently failed lock.
fn relock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Request-scoped observability state, minted per connection and
/// threaded through routing: the request id, the per-request recorder
/// the op budget installs, and the labels the access log and flight
/// ring need once the reply is known.
struct RequestObs {
    id: String,
    /// Whether the id came from the client (`x-request-id` /
    /// `traceparent`) — such requests are pinned into the flight ring:
    /// supplying an id is an explicit ask to trace.
    propagated: bool,
    recorder: Recorder,
    tenant: Option<String>,
    route: &'static str,
    fuel: u64,
}

impl RequestObs {
    /// Fresh state for a request about to be read: a minted id (later
    /// replaced by a propagated one) and, when per-request recording is
    /// on, a span-capped recorder of its own.
    fn begin(inner: &Inner) -> RequestObs {
        RequestObs {
            id: xnf_obs::mint_request_id(),
            propagated: false,
            recorder: if inner.config.request_recording {
                Recorder::with_span_cap(inner.config.request_span_cap)
            } else {
                Recorder::disabled()
            },
            tenant: None,
            route: "other",
            fuel: 0,
        }
    }

    /// State for a connection that never reaches a worker (inline shed
    /// and drain answers): an id to echo, nothing to record spans into.
    fn unread() -> RequestObs {
        RequestObs {
            id: xnf_obs::mint_request_id(),
            propagated: false,
            recorder: Recorder::disabled(),
            tenant: None,
            route: "other",
            fuel: 0,
        }
    }

    /// Adopts a client-supplied request id, if the request carries an
    /// acceptable one.
    fn adopt_id(&mut self, req: &Request) {
        if let Some(id) = propagated_id(req) {
            self.id = id;
            self.propagated = true;
        }
    }
}

/// Extracts a propagated request id: `x-request-id` (1–128 printable
/// ASCII characters) wins; otherwise the 32-hex trace-id field of a
/// W3C `traceparent` header. Anything else is ignored and the minted
/// id stands — a hostile header must not corrupt the access log.
fn propagated_id(req: &Request) -> Option<String> {
    if let Some(v) = req.header("x-request-id") {
        let v = v.trim();
        if (1..=128).contains(&v.len()) && v.bytes().all(|b| b.is_ascii_graphic()) {
            return Some(v.to_string());
        }
    }
    if let Some(v) = req.header("traceparent") {
        // version-format: `00-<32 hex trace-id>-<16 hex parent-id>-<flags>`.
        let mut parts = v.trim().split('-');
        let trace = parts.nth(1)?;
        if trace.len() == 32
            && trace.bytes().all(|b| b.is_ascii_hexdigit())
            && trace.bytes().any(|b| b != b'0')
        {
            return Some(trace.to_ascii_lowercase());
        }
    }
    None
}

/// Collapses a request path onto the bounded route-label set used by
/// the labeled histograms and the access log (dynamic trace-id
/// segments and unknown paths must not mint unbounded label values).
fn route_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/metrics" => "/metrics",
        "/admin/drain" => "/admin/drain",
        "/v1/lint" => "/v1/lint",
        "/v1/is-xnf" => "/v1/is-xnf",
        "/v1/normalize" => "/v1/normalize",
        "/v1/analyze" => "/v1/analyze",
        "/v1/batch" => "/v1/batch",
        "/debug/requests" => "/debug/requests",
        p if p.starts_with("/debug/trace/") => "/debug/trace",
        _ => "other",
    }
}

impl Inner {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn tenant_for(&self, req: &Request) -> Result<Option<&Tenant>, Reply> {
        if self.tenants.is_empty() {
            return Ok(None);
        }
        let Some(key) = req.header("x-api-key") else {
            return Err(Reply::error(
                401,
                "Unauthorized",
                "auth",
                "missing X-Api-Key header",
            ));
        };
        match self.tenants.get(key) {
            Some(t) => Ok(Some(t)),
            None => Err(Reply::error(401, "Unauthorized", "auth", "unknown API key")),
        }
    }

    /// Builds the per-request budget from the tenant (or anonymous)
    /// caps and an optional client deadline header, never looser than
    /// the server-side profile. `recorder` is the per-request recorder
    /// (or the shared one when per-request recording is off).
    fn budget_for(&self, tenant: Option<&Tenant>, req: &Request, recorder: Recorder) -> Budget {
        let (fuel, deadline_ms, memory) = match tenant {
            Some(t) => (t.fuel, t.deadline_ms, t.memory),
            None => (self.config.default_fuel, self.config.default_deadline_ms, 0),
        };
        let requested_ms = req
            .header("x-deadline-ms")
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&ms| ms > 0);
        let deadline_ms = requested_ms.map_or(deadline_ms, |ms| ms.min(deadline_ms));
        let mut b = Budget::builder()
            .fuel(fuel)
            .deadline(Duration::from_millis(deadline_ms))
            .recorder(recorder);
        if memory > 0 {
            b = b.memory(memory);
        }
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = *relock(&self.fault) {
            b = b.fault(plan);
        }
        b.build()
    }

    fn estimate_for(&self, spec_key: &str) -> u64 {
        relock(&self.estimates)
            .get(spec_key)
            .copied()
            .unwrap_or(self.config.unknown_cost)
    }

    fn learn_estimate(&self, spec_key: &str, observed: u64) {
        let mut book = relock(&self.estimates);
        // Bound the book: it is keyed by canonical specs, which are
        // attacker-controlled; past 4096 entries, forget arbitrary
        // ones (admission then falls back to `unknown_cost`).
        if book.len() >= 4096 && !book.contains_key(spec_key) {
            let victim = book.keys().next().cloned();
            if let Some(v) = victim {
                book.remove(&v);
            }
        }
        book.insert(spec_key.to_string(), observed.max(1));
    }
}

/// An RAII debit against the estimated-fuel-in-flight gauge, released
/// even if the computation panics.
struct FuelInFlight<'a> {
    inner: &'a Inner,
    amount: u64,
}

impl<'a> FuelInFlight<'a> {
    fn admit(inner: &'a Inner, amount: u64) -> Option<FuelInFlight<'a>> {
        let current = inner.fuel_in_flight.load(Ordering::SeqCst);
        // A lone oversized request is admitted when the gauge is
        // empty — otherwise a spec pricier than the watermark could
        // never run at all.
        if current > 0 && current.saturating_add(amount) > inner.config.fuel_watermark {
            return None;
        }
        inner.fuel_in_flight.fetch_add(amount, Ordering::SeqCst);
        Some(FuelInFlight { inner, amount })
    }
}

impl Drop for FuelInFlight<'_> {
    fn drop(&mut self) {
        self.inner
            .fuel_in_flight
            .fetch_sub(self.amount, Ordering::SeqCst);
    }
}

/// A running server: an accept thread, a worker pool, and the shared
/// state behind them. Dropping the handle does not stop the server —
/// call [`Server::drain`] then [`Server::join`] (or
/// [`Server::shutdown`]).
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A cloneable handle that can drain a [`Server`] from another thread
/// (the binary's stdin watcher) or from a request handler
/// (`POST /admin/drain`).
#[derive(Clone)]
pub struct DrainHandle {
    inner: Arc<Inner>,
}

impl DrainHandle {
    /// Initiates a graceful drain: stop accepting, finish queued and
    /// in-flight requests. Idempotent.
    pub fn drain(&self) {
        initiate_drain(&self.inner);
    }
}

fn initiate_drain(inner: &Arc<Inner>) {
    if inner.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.recorder.bump("serve.drain");
    // Wake the blocking accept loop with a throwaway connection; it
    // observes the flag and exits. Failure to connect means the loop
    // is already gone.
    if let Ok(stream) = TcpStream::connect(inner.addr) {
        drop(stream);
    }
    inner.queue_cv.notify_all();
}

impl Server {
    /// Binds `config.addr` and starts the accept loop and worker pool.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn spawn(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let tenants = config
            .tenants
            .iter()
            .map(|t| {
                (
                    t.key.clone(),
                    Tenant {
                        name: t.name.clone(),
                        fuel: t.fuel,
                        deadline_ms: t.deadline_ms,
                        memory: t.memory,
                        bucket: TokenBucket::new(t.burst, t.rate_per_sec, Instant::now()),
                    },
                )
            })
            .collect();
        let access_log = match &config.access_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        let inner = Arc::new(Inner {
            recorder: Recorder::with_span_cap(config.span_cap),
            flight: FlightRecorder::new(config.flight_cap, config.flight_sample),
            labeled: LabeledHistograms::new(512),
            access_log,
            cache: xnf_core::ShardedCache::new(config.cache_shards, config.cache_bytes),
            estimates: Mutex::new(HashMap::new()),
            fuel_in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            tenants,
            epoch: Instant::now(),
            addr,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            #[cfg(feature = "fault-injection")]
            fault: Mutex::new(None),
            config,
        });

        let mut workers = Vec::new();
        for _ in 0..inner.config.threads.max(1) {
            let worker_inner = Arc::clone(&inner);
            workers.push(std::thread::spawn(move || worker_loop(&worker_inner)));
        }
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_inner));

        Ok(Server {
            inner,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral port request).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A handle that can initiate a drain from elsewhere.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The shared recorder (counters, site tallies, histograms).
    pub fn recorder(&self) -> &Recorder {
        &self.inner.recorder
    }

    /// The flight recorder (retained request records and sampler
    /// counters).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Point-in-time counters of the shared result cache.
    pub fn cache_stats(&self) -> xnf_core::CacheStats {
        self.inner.cache.stats()
    }

    /// Initiates a graceful drain (idempotent; see
    /// [`DrainHandle::drain`]).
    pub fn drain(&self) {
        initiate_drain(&self.inner);
    }

    /// Waits for the accept loop and every worker to exit (they do so
    /// only after a drain).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// [`Server::drain`] + [`Server::join`].
    pub fn shutdown(self) {
        self.drain();
        self.join();
    }

    /// Installs (or clears) a deterministic fault plan applied to every
    /// subsequently admitted request's budget.
    #[cfg(feature = "fault-injection")]
    pub fn set_fault(&self, plan: Option<FaultPlan>) {
        *relock(&self.inner.fault) = plan;
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshake);
            // during drain any error simply ends the loop.
            if inner.is_draining() {
                return;
            }
            continue;
        };
        if inner.is_draining() {
            // The wake-up connection (or a late client): answer 503
            // and stop accepting. The listener closes on return, so
            // later connects are refused by the OS.
            answer_inline(
                stream,
                inner,
                &Reply::error(503, "Service Unavailable", "draining", "server is draining"),
            );
            return;
        }
        let mut queue = relock(&inner.queue);
        if queue.len() >= inner.config.queue_depth {
            drop(queue);
            inner.recorder.bump("serve.shed.queue");
            answer_inline(
                stream,
                inner,
                &Reply::shed("overload", "queue", "accept queue is full", 1),
            );
            continue;
        }
        queue.push_back(stream);
        drop(queue);
        inner.queue_cv.notify_one();
    }
}

/// Writes `reply` on a connection that never reached a worker (shed or
/// drain paths) without blocking the accept loop for long. Even these
/// requests get an id, an access-log line, and a flight record — the
/// tail sampler's always-keep rule covers inline 429s too.
fn answer_inline(mut stream: TcpStream, inner: &Arc<Inner>, reply: &Reply) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        inner.config.io_timeout_ms.max(1),
    )));
    let obs = RequestObs::unread();
    finish_request(inner, &obs, reply, 0);
    respond_reply(&mut stream, reply, Some(&obs.id));
    http::finish(&mut stream);
}

fn respond_reply(stream: &mut TcpStream, reply: &Reply, request_id: Option<&str>) {
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(id) = request_id {
        extra.push(("x-request-id", id.to_string()));
    }
    if let Some(secs) = reply.retry_after {
        extra.push(("Retry-After", secs.to_string()));
    }
    if let Some(verdict) = reply.cache {
        extra.push(("X-Cache", verdict.to_string()));
    }
    let content_type = if reply.body.starts_with('{') {
        "application/json"
    } else {
        "text/plain; version=0.0.4"
    };
    let _ = http::respond(
        stream,
        reply.status,
        reply.reason,
        content_type,
        &extra,
        reply.body.as_bytes(),
    );
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let stream = {
            let mut queue = relock(&inner.queue);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if inner.is_draining() {
                    break None;
                }
                queue = inner
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(mut stream) = stream else {
            return;
        };
        let started = Instant::now();
        let mut obs = RequestObs::begin(inner);
        let reply = handle_connection(inner, &mut stream, &mut obs);
        observe_reply(inner, &reply, started);
        let wall_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Record before responding, so a trace is queryable the moment
        // the client sees its response.
        finish_request(inner, &obs, &reply, wall_micros);
        respond_reply(&mut stream, &reply, Some(&obs.id));
        http::finish(&mut stream);
    }
}

/// The off-hot-path epilogue of every request: one labeled-histogram
/// observation, one access-log line, and — when per-request recording
/// is on — absorbing the request recorder into the shared one and
/// offering the record to the flight ring.
fn finish_request(inner: &Inner, obs: &RequestObs, reply: &Reply, wall_micros: u64) {
    let tenant = obs.tenant.as_deref().unwrap_or("-");
    let cache = reply.cache.unwrap_or("none");
    let shed = reply.shed.unwrap_or("");
    inner.labeled.observe(obs.route, tenant, cache, wall_micros);
    if let Some(log) = &inner.access_log {
        let line = access_log_line(inner, obs, reply, tenant, cache, shed, wall_micros);
        let mut file = relock(log);
        let _ = std::io::Write::write_all(&mut *file, line.as_bytes());
        let _ = std::io::Write::flush(&mut *file);
    }
    if inner.config.request_recording {
        inner.recorder.absorb(&obs.recorder);
        inner.flight.record(
            RequestRecord {
                id: obs.id.clone(),
                tenant: tenant.to_string(),
                route: obs.route.to_string(),
                status: reply.status,
                cache: cache.to_string(),
                shed: shed.to_string(),
                fuel: obs.fuel,
                wall_micros,
                spans: obs.recorder.spans(),
            },
            obs.propagated,
        );
    }
}

/// One JSONL access-log line (schema: `docs/access_log.schema.json`).
fn access_log_line(
    inner: &Inner,
    obs: &RequestObs,
    reply: &Reply,
    tenant: &str,
    cache: &str,
    shed: &str,
    wall_micros: u64,
) -> String {
    let ts = u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut line = String::with_capacity(160);
    line.push_str("{\"ts_micros\":");
    line.push_str(&ts.to_string());
    line.push_str(",\"id\":");
    json::write_str(&mut line, &obs.id);
    line.push_str(",\"tenant\":");
    json::write_str(&mut line, tenant);
    line.push_str(",\"route\":");
    json::write_str(&mut line, obs.route);
    line.push_str(",\"status\":");
    line.push_str(&reply.status.to_string());
    line.push_str(",\"cache\":");
    json::write_str(&mut line, cache);
    line.push_str(",\"shed\":");
    json::write_str(&mut line, shed);
    line.push_str(",\"fuel\":");
    line.push_str(&obs.fuel.to_string());
    line.push_str(",\"wall_micros\":");
    line.push_str(&wall_micros.to_string());
    line.push_str("}\n");
    line
}

fn observe_reply(inner: &Arc<Inner>, reply: &Reply, started: Instant) {
    let class = match reply.status {
        200..=299 => "serve.responses.2xx",
        429 => "serve.responses.429",
        400..=499 => "serve.responses.4xx",
        _ => "serve.responses.5xx",
    };
    inner.recorder.bump(class);
    inner.recorder.bump("serve.requests");
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    inner.recorder.observe("serve.request.micros", micros);
}

fn handle_connection(inner: &Arc<Inner>, stream: &mut TcpStream, obs: &mut RequestObs) -> Reply {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        inner.config.io_timeout_ms.max(1),
    )));
    let request = match http::read_request(
        stream,
        inner.config.max_body,
        Duration::from_millis(inner.config.io_timeout_ms.max(1)),
    ) {
        Ok(r) => r,
        Err(e) => return http_error_reply(&e),
    };
    obs.adopt_id(&request);
    obs.route = route_label(&request.path);
    // A handler panic must become a `500`, not a dead worker. The
    // shared state reached from here is lock-protected and
    // poison-recovering (`relock`), so crossing the unwind boundary
    // cannot leave it inconsistent; `obs` mutations made before the
    // panic (tenant, route, fuel) stay valid for the epilogue.
    match std::panic::catch_unwind(AssertUnwindSafe(|| route(inner, &request, obs))) {
        Ok(reply) => reply,
        Err(_) => {
            inner.recorder.bump("serve.panics");
            Reply::error(
                500,
                "Internal Server Error",
                "internal",
                "request handler panicked; the fault is contained to this request",
            )
        }
    }
}

fn http_error_reply(e: &HttpError) -> Reply {
    let (status, reason) = e.status();
    Reply::error(status, reason, "http", &e.message())
}

fn route(inner: &Arc<Inner>, req: &Request, obs: &mut RequestObs) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Reply::json(200, "OK", "ok\n".to_string()),
        ("GET", "/readyz") => {
            if inner.is_draining() {
                Reply::error(503, "Service Unavailable", "draining", "server is draining")
            } else {
                Reply::json(200, "OK", "ready\n".to_string())
            }
        }
        ("GET", "/metrics") => metrics_reply(inner),
        ("GET", "/debug/requests") => Reply::json(200, "OK", inner.flight.requests_json()),
        ("GET", path) if path.starts_with("/debug/trace/") => {
            let id = &path["/debug/trace/".len()..];
            match inner.flight.trace(id) {
                Some(trace) => Reply::json(200, "OK", trace),
                None => Reply::error(
                    404,
                    "Not Found",
                    "trace",
                    &format!("no retained trace for request id `{id}`"),
                ),
            }
        }
        ("POST", "/admin/drain") => {
            initiate_drain(inner);
            Reply::json(200, "OK", "{\"status\":\"draining\"}\n".to_string())
        }
        ("POST", "/v1/lint" | "/v1/is-xnf" | "/v1/normalize" | "/v1/analyze" | "/v1/batch") => {
            dispatch_op(inner, req, obs)
        }
        (_, path) if path == "/debug/requests" || path.starts_with("/debug/trace/") => {
            Reply::error(
                405,
                "Method Not Allowed",
                "http",
                &format!("`{}` accepts GET only", req.path),
            )
        }
        (_, "/healthz" | "/readyz" | "/metrics") | (_, "/admin/drain") => Reply::error(
            405,
            "Method Not Allowed",
            "http",
            &format!("`{}` does not accept {}", req.path, req.method),
        ),
        (_, "/v1/lint" | "/v1/is-xnf" | "/v1/normalize" | "/v1/analyze" | "/v1/batch") => {
            Reply::error(
                405,
                "Method Not Allowed",
                "http",
                &format!("`{}` accepts POST only", req.path),
            )
        }
        _ => Reply::error(
            404,
            "Not Found",
            "http",
            &format!("no such endpoint `{}`", req.path),
        ),
    }
}

fn metrics_reply(inner: &Arc<Inner>) -> Reply {
    let mut text = inner.recorder.prometheus();
    inner
        .labeled
        .prometheus("xnf_serve_request_duration_microseconds", &mut text);
    let stats = inner.cache.stats();
    let gauges = [
        ("xnf_serve_cache_hits_total", stats.hits),
        ("xnf_serve_cache_misses_total", stats.misses),
        ("xnf_serve_cache_joined_total", stats.joined),
        ("xnf_serve_cache_evictions_total", stats.evictions),
        ("xnf_serve_cache_resident_bytes", stats.resident_bytes),
        ("xnf_serve_cache_entries", stats.entries),
        (
            "xnf_serve_fuel_in_flight",
            inner.fuel_in_flight.load(Ordering::SeqCst),
        ),
        (
            "xnf_serve_spans_dropped_total",
            inner.recorder.spans_dropped(),
        ),
        (
            "xnf_serve_flight_retained",
            u64::try_from(inner.flight.retained()).unwrap_or(u64::MAX),
        ),
        (
            "xnf_serve_flight_sampled_out_total",
            inner.flight.sampled_out(),
        ),
        ("xnf_serve_flight_evicted_total", inner.flight.evicted()),
        ("xnf_serve_uptime_seconds", inner.epoch.elapsed().as_secs()),
    ];
    for (name, value) in gauges {
        text.push_str(name);
        text.push(' ');
        text.push_str(&value.to_string());
        text.push('\n');
    }
    Reply::json(200, "OK", text)
}

/// The five JSON operations share one pipeline: authenticate, debit
/// the tenant bucket, parse the body, then run (batch loops over its
/// items, re-entering the single-op path without re-authenticating).
fn dispatch_op(inner: &Arc<Inner>, req: &Request, obs: &mut RequestObs) -> Reply {
    if inner.is_draining() {
        return Reply::error(503, "Service Unavailable", "draining", "server is draining");
    }
    let tenant = match inner.tenant_for(req) {
        Ok(t) => t,
        Err(reply) => return reply,
    };
    if let Some(t) = tenant {
        // The access log and flight ring label by tenant from here on —
        // including quota sheds, which are per-tenant by nature.
        obs.tenant = Some(t.name.clone());
        if let Err(wait) = t.bucket.try_take(1.0, Instant::now()) {
            inner.recorder.bump("serve.shed.quota");
            let secs = wait.map_or(1, |d| d.as_secs().saturating_add(1));
            return Reply::shed(
                "quota",
                "quota",
                &format!("tenant `{}` is over its request rate", t.name),
                secs,
            );
        }
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Reply::error(400, "Bad Request", "body", "request body is not UTF-8");
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return Reply::error(400, "Bad Request", "body", &e.to_string()),
    };
    if req.path == "/v1/batch" {
        return run_batch(inner, tenant, req, &parsed, obs);
    }
    let Some(op) = op_of_path(&req.path) else {
        return Reply::error(404, "Not Found", "http", "no such operation");
    };
    run_op(inner, tenant, req, op, &parsed, obs)
}

fn op_of_path(path: &str) -> Option<&'static str> {
    match path {
        "/v1/lint" => Some("lint"),
        "/v1/is-xnf" => Some("is-xnf"),
        "/v1/normalize" => Some("normalize"),
        "/v1/analyze" => Some("analyze"),
        _ => None,
    }
}

const BATCH_CAP: usize = 64;

fn run_batch(
    inner: &Arc<Inner>,
    tenant: Option<&Tenant>,
    req: &Request,
    body: &Json,
    obs: &mut RequestObs,
) -> Reply {
    let Some(items) = body.get("requests").and_then(Json::as_arr) else {
        return Reply::error(
            400,
            "Bad Request",
            "body",
            "batch body needs a `requests` array",
        );
    };
    if items.len() > BATCH_CAP {
        return Reply::error(
            400,
            "Bad Request",
            "body",
            &format!("batch holds {} items; the cap is {BATCH_CAP}", items.len()),
        );
    }
    let mut out = String::from("{\"status\":\"ok\",\"results\":[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let reply = match item.get("op").and_then(Json::as_str) {
            Some(op) if op_known(op) => run_op(inner, tenant, req, op, item, obs),
            Some(op) => Reply::error(400, "Bad Request", "body", &format!("unknown op `{op}`")),
            None => Reply::error(400, "Bad Request", "body", "batch item needs an `op`"),
        };
        out.push_str("{\"http\":");
        out.push_str(&reply.status.to_string());
        out.push_str(",\"response\":");
        // Reply bodies are complete JSON documents; embed verbatim.
        out.push_str(reply.body.trim_end());
        out.push('}');
    }
    out.push_str("]}\n");
    Reply::json(200, "OK", out)
}

fn op_known(op: &str) -> bool {
    matches!(op, "lint" | "is-xnf" | "normalize" | "analyze")
}

/// String field `name` of the request object.
fn field<'a>(body: &'a Json, name: &str) -> Option<&'a str> {
    body.get(name).and_then(Json::as_str)
}

fn flag(body: &Json, name: &str) -> bool {
    body.get(name).and_then(Json::as_bool).unwrap_or(false)
}

fn run_op(
    inner: &Arc<Inner>,
    tenant: Option<&Tenant>,
    req: &Request,
    op: &str,
    body: &Json,
    obs: &mut RequestObs,
) -> Reply {
    let endpoint_counter = match op {
        "lint" => "serve.lint.requests",
        "is-xnf" => "serve.is_xnf.requests",
        "normalize" => "serve.normalize.requests",
        _ => "serve.analyze.requests",
    };
    inner.recorder.bump(endpoint_counter);
    // The op budget carries the per-request recorder (or the shared
    // one when per-request recording is off): every span the engine
    // brackets under `budget.recorder()` lands in this request's tree.
    let recorder = if inner.config.request_recording {
        obs.recorder.clone()
    } else {
        inner.recorder.clone()
    };
    let budget = inner.budget_for(tenant, req, recorder);
    let reply = run_spec_op(inner, op, body, &budget);
    // The per-request tick snapshot: what the access log and flight
    // ring report as `fuel` (batch items accumulate).
    obs.fuel = obs.fuel.saturating_add(budget.usage().ticks);
    reply
}

/// The governed body of one spec op, after the budget (and its
/// recorder) exist.
fn run_spec_op(inner: &Arc<Inner>, op: &str, body: &Json, budget: &Budget) -> Reply {
    let Some(dtd_src) = field(body, "dtd") else {
        return Reply::error(400, "Bad Request", "body", "missing string field `dtd`");
    };
    // The service boundary is itself a checkpoint: fault sweeps can
    // trip a request before any engine work, and every admitted
    // request pays at least one tick.
    if let Err(e) = budget.checkpoint("serve.request") {
        return Reply::exhausted(&format!("budget exhausted: {e}\n"));
    }

    if op == "lint" {
        return run_lint(body, dtd_src, budget);
    }

    let Some(fds_src) = field(body, "fds") else {
        return Reply::error(400, "Bad Request", "body", "missing string field `fds`");
    };

    // Parse once, canonically, for the cache key and the admission
    // estimate; the parse is governed by the same request budget.
    let (dtd, sigma) = match parse_spec_for_key(dtd_src, fds_src, budget) {
        Ok(pair) => pair,
        Err(reply) => return reply,
    };
    let options_key = options_fingerprint(op, body);
    let cache_key = xnf_core::spec_cache_key(op, &dtd, &sigma, &options_key);
    let spec_key = xnf_core::spec_cache_key("spec", &dtd, &sigma, "");
    drop((dtd, sigma));

    // Admission: refuse work that would push estimated fuel in flight
    // past the watermark.
    let estimate = inner.estimate_for(&spec_key);
    let Some(_in_flight) = FuelInFlight::admit(inner, estimate) else {
        inner.recorder.bump("serve.shed.fuel");
        return Reply::shed(
            "overload",
            "fuel",
            "estimated fuel in flight is over the watermark",
            1,
        );
    };

    let cacheable = op != "normalize" || field(body, "doc").is_none();
    let mut outcome_fuel: Option<u64> = None;
    let computed = if cacheable {
        inner.cache.get_or_compute(&cache_key, || {
            compute_op(op, body, dtd_src, fds_src, budget, &mut outcome_fuel).map(|s| {
                let bytes = s.len();
                (s, bytes)
            })
        })
    } else {
        compute_op(op, body, dtd_src, fds_src, budget, &mut outcome_fuel)
            .map(|s| (Arc::new(s), false))
    };

    match computed {
        Ok((output, hit)) => {
            if !hit {
                // Learn the real cost for the next admission decision:
                // the observed ticks, or the planner's forecast when it
                // is the better signal (analyze runs are cheaper than
                // the normalize they predict).
                let observed = outcome_fuel.unwrap_or(0).max(budget.ticks());
                inner.learn_estimate(&spec_key, observed);
            }
            let mut reply = Reply::ok_output(&output, "ok");
            reply.cache = Some(if hit { "hit" } else { "miss" });
            reply
        }
        Err(reply) => *reply,
    }
}

/// Runs the engine for one spec op, mapping every failure to its
/// response. Boxed error keeps the cache's value path lean.
fn compute_op(
    op: &str,
    body: &Json,
    dtd_src: &str,
    fds_src: &str,
    budget: &Budget,
    outcome_fuel: &mut Option<u64>,
) -> Result<String, Box<Reply>> {
    let trust = Some(Trust::Network);
    match op {
        "is-xnf" => {
            let options = IsXnfOptions {
                no_lint: flag(body, "no_lint"),
                trust,
            };
            ops::is_xnf(dtd_src, fds_src, &options, budget).map_err(|e| Box::new(cli_reply(&e)))
        }
        "normalize" => {
            let threads = body.get("threads").and_then(Json::as_u64).unwrap_or(0);
            if threads > 16 {
                return Err(Box::new(Reply::error(
                    400,
                    "Bad Request",
                    "body",
                    "`threads` is capped at 16",
                )));
            }
            let options = NormalizeSpecOptions {
                sigma_only: flag(body, "sigma_only"),
                threads: threads as usize,
                stats: flag(body, "stats"),
                no_lint: flag(body, "no_lint"),
                doc_src: field(body, "doc"),
                trust,
            };
            ops::normalize_spec(dtd_src, fds_src, &options, budget, budget.recorder())
                .map_err(|e| Box::new(cli_reply(&e)))
        }
        _ => {
            let format = match field(body, "format") {
                None | Some("human") => AnalyzeFormat::Human,
                Some("json") => AnalyzeFormat::Json,
                Some("dot") => AnalyzeFormat::Dot,
                Some(other) => {
                    return Err(Box::new(Reply::error(
                        400,
                        "Bad Request",
                        "body",
                        &format!("unknown analyze format `{other}`"),
                    )))
                }
            };
            let options = AnalyzeSpecOptions {
                format,
                sigma_only: flag(body, "sigma_only"),
                trust,
            };
            ops::analyze_spec(dtd_src, fds_src, &options, budget)
                .map(|outcome| {
                    *outcome_fuel = Some(outcome.predicted_fuel);
                    outcome.rendered
                })
                .map_err(|e| Box::new(cli_reply(&e)))
        }
    }
}

fn run_lint(body: &Json, dtd_src: &str, budget: &Budget) -> Reply {
    let options = LintSpecOptions {
        json: flag(body, "json"),
        predictive: flag(body, "predictive"),
    };
    let fds_src = field(body, "fds");
    match ops::lint_sources(dtd_src, fds_src, &options, budget) {
        Ok(rendered) => Reply::ok_output(&rendered, "ok"),
        // A report with errors is the endpoint's product, exactly as
        // the CLI prints it to stdout: 200, status "diagnostics".
        Err(CliError::Lint(rendered)) => Reply::ok_output(&rendered, "diagnostics"),
        Err(e) => cli_reply(&e),
    }
}

/// Parses `(D, Σ)` for cache keying; failures map to `422` (the spec
/// is syntactically valid JSON but not a valid spec) or `503`
/// (exhaustion during parse).
fn parse_spec_for_key(
    dtd_src: &str,
    fds_src: &str,
    budget: &Budget,
) -> Result<(xnf_dtd::Dtd, xnf_core::XmlFdSet), Reply> {
    let dtd = match ops::parse_dtd(dtd_src, Trust::Network, budget) {
        Ok(d) => d,
        Err(e) => return Err(cli_reply(&e)),
    };
    let sigma = match xnf_core::XmlFdSet::parse(fds_src) {
        Ok(s) => s,
        Err(e) => {
            return Err(Reply::error(
                422,
                "Unprocessable Content",
                "spec",
                &e.to_string(),
            ))
        }
    };
    Ok((dtd, sigma))
}

/// The CLI error → HTTP status mapping (the service half of the
/// documented exit-code table; see DESIGN.md §13).
fn cli_reply(e: &CliError) -> Reply {
    match e {
        CliError::Usage(m) => Reply::error(400, "Bad Request", "usage", m),
        CliError::Lint(report) => Reply::error(422, "Unprocessable Content", "lint", report),
        CliError::Lib(m) => Reply::error(422, "Unprocessable Content", "spec", m),
        CliError::Exhausted(partial) => Reply::exhausted(partial),
        CliError::Verify(report) => Reply::error(422, "Unprocessable Content", "verify", report),
        CliError::Io(path, err) => Reply::error(
            500,
            "Internal Server Error",
            "internal",
            &format!("unexpected file access `{path}`: {err}"),
        ),
    }
}

/// Options fingerprint for the result-cache key: every request field
/// that changes the rendered output, in a fixed order.
fn options_fingerprint(op: &str, body: &Json) -> String {
    match op {
        "is-xnf" => format!("no_lint={}", flag(body, "no_lint")),
        "normalize" => format!(
            "sigma_only={},threads={},stats={},no_lint={}",
            flag(body, "sigma_only"),
            body.get("threads").and_then(Json::as_u64).unwrap_or(0),
            flag(body, "stats"),
            flag(body, "no_lint"),
        ),
        _ => format!(
            "format={},sigma_only={}",
            field(body, "format").unwrap_or("human"),
            flag(body, "sigma_only"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};

    fn post(addr: SocketAddr, path: &str, body: &str, headers: &[(&str, &str)]) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut req = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);
        stream.write_all(req.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status = response
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    const DTD: &str = "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>";

    fn lint_body() -> String {
        let mut b = String::from("{\"dtd\":");
        json::write_str(&mut b, DTD);
        b.push('}');
        b
    }

    #[test]
    fn health_metrics_and_lint_round_trip() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        assert_eq!(get(addr, "/healthz").0, 200);
        assert_eq!(get(addr, "/readyz").0, 200);
        let (status, body) = post(addr, "/v1/lint", &lint_body(), &[]);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(metrics.contains("xnf_serve_cache_entries"), "{metrics}");
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(post(addr, "/healthz", "", &[]).0, 405);
        server.shutdown();
    }

    #[test]
    fn drain_answers_readyz_and_refuses_new_work() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        let (status, _) = post(addr, "/admin/drain", "", &[]);
        assert_eq!(status, 200);
        server.join();
        // The listener is gone: connects are refused.
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn unknown_api_keys_are_401_and_quotas_shed_with_retry_after() {
        let config = ServeConfig {
            tenants: vec![TenantConfig {
                key: "k1".to_string(),
                name: "t1".to_string(),
                fuel: 100_000,
                deadline_ms: 5_000,
                memory: 0,
                rate_per_sec: 0.0001,
                burst: 1.0,
            }],
            ..ServeConfig::default()
        };
        let server = Server::spawn(config).expect("spawn");
        let addr = server.addr();
        assert_eq!(post(addr, "/v1/lint", &lint_body(), &[]).0, 401);
        assert_eq!(
            post(addr, "/v1/lint", &lint_body(), &[("X-Api-Key", "nope")]).0,
            401
        );
        let first = post(addr, "/v1/lint", &lint_body(), &[("X-Api-Key", "k1")]);
        assert_eq!(first.0, 200, "{}", first.1);
        // Burst of 1 at a negligible refill rate: the second request
        // sheds with a Retry-After hint.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let body = lint_body();
        stream
            .write_all(
                format!(
                    "POST /v1/lint HTTP/1.1\r\nHost: t\r\nX-Api-Key: k1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After:"), "{response}");
        server.shutdown();
    }

    #[test]
    fn identical_requests_hit_the_shared_cache() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        let mut body = String::from("{\"dtd\":");
        json::write_str(&mut body, DTD);
        body.push_str(",\"fds\":\"r.a -> r.a.S\"}");
        let miss = post(addr, "/v1/is-xnf", &body, &[]);
        assert_eq!(miss.0, 200, "{}", miss.1);
        // Same spec, different whitespace in the DTD: still a hit,
        // because the key is the canonical parsed form.
        let mut body2 = String::from("{\"dtd\":");
        json::write_str(&mut body2, "<!ELEMENT r (a*)>\n<!ELEMENT a (#PCDATA)>");
        body2.push_str(",\"fds\":\"r.a -> r.a.S\"}");
        let hit = post(addr, "/v1/is-xnf", &body2, &[]);
        assert_eq!(hit.0, 200);
        assert_eq!(hit.1, miss.1, "cached response must be byte-identical");
        let stats = server.inner.cache.stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        server.shutdown();
    }

    fn post_full(addr: SocketAddr, path: &str, body: &str, headers: &[(&str, &str)]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut req = format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str("\r\n");
        req.push_str(body);
        stream.write_all(req.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn header_value(response: &str, name: &str) -> Option<String> {
        let head = response.split("\r\n\r\n").next()?;
        for line in head.lines().skip(1) {
            let (k, v) = line.split_once(':')?;
            if k.eq_ignore_ascii_case(name) {
                return Some(v.trim().to_string());
            }
        }
        None
    }

    fn normalize_body() -> String {
        let mut b = String::from("{\"dtd\":");
        json::write_str(
            &mut b,
            include_str!("../../../examples/specs/university.dtd"),
        );
        b.push_str(",\"fds\":");
        json::write_str(
            &mut b,
            include_str!("../../../examples/specs/university.fds"),
        );
        b.push('}');
        b
    }

    #[test]
    fn request_ids_are_minted_propagated_and_echoed() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        // Supplied x-request-id wins and is echoed verbatim.
        let resp = post_full(
            addr,
            "/v1/lint",
            &lint_body(),
            &[("x-request-id", "req-echo-1")],
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert_eq!(
            header_value(&resp, "x-request-id").as_deref(),
            Some("req-echo-1")
        );
        // No header: a 32-hex id is minted.
        let resp = post_full(addr, "/v1/lint", &lint_body(), &[]);
        let minted = header_value(&resp, "x-request-id").expect("minted id");
        assert_eq!(minted.len(), 32, "{minted}");
        assert!(minted
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        // traceparent trace-id is adopted when no x-request-id is given.
        let resp = post_full(
            addr,
            "/v1/lint",
            &lint_body(),
            &[(
                "traceparent",
                "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            )],
        );
        assert_eq!(
            header_value(&resp, "x-request-id").as_deref(),
            Some("0af7651916cd43dd8448eb211c80319c")
        );
        // Error responses echo the id too.
        let resp = post_full(
            addr,
            "/v1/lint",
            "{not json",
            &[("x-request-id", "req-echo-err")],
        );
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert_eq!(
            header_value(&resp, "x-request-id").as_deref(),
            Some("req-echo-err")
        );
        server.shutdown();
    }

    #[test]
    fn debug_trace_returns_chrome_trace_json_for_a_completed_normalize() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        let resp = post_full(
            addr,
            "/v1/normalize",
            &normalize_body(),
            &[("x-request-id", "aaaabbbbccccddddeeeeffff00001111")],
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        // The trace is queryable the moment the response is visible.
        let (status, trace) = get(addr, "/debug/trace/aaaabbbbccccddddeeeeffff00001111");
        assert_eq!(status, 200, "{trace}");
        let parsed = json::parse(&trace).expect("trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "normalize should record spans: {trace}");
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")),
            "{trace}"
        );
        // The listing names the retained request.
        let (status, listing) = get(addr, "/debug/requests");
        assert_eq!(status, 200);
        assert!(
            listing.contains("aaaabbbbccccddddeeeeffff00001111"),
            "{listing}"
        );
        let parsed = json::parse(&listing).expect("listing is valid JSON");
        assert!(parsed.get("requests").and_then(Json::as_arr).is_some());
        // Unknown ids are 404; non-GET verbs are 405.
        assert_eq!(get(addr, "/debug/trace/deadbeef").0, 404);
        assert_eq!(post(addr, "/debug/requests", "", &[]).0, 405);
        server.shutdown();
    }

    #[test]
    fn metrics_expose_labeled_latency_histograms_and_flight_counters() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        let miss = post(addr, "/v1/is-xnf", &normalize_body(), &[]);
        assert_eq!(miss.0, 200, "{}", miss.1);
        let hit = post(addr, "/v1/is-xnf", &normalize_body(), &[]);
        assert_eq!(hit.0, 200);
        let (status, metrics) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            metrics.contains(
                "xnf_serve_request_duration_microseconds_bucket{route=\"/v1/is-xnf\",tenant=\"-\",cache=\"miss\","
            ),
            "{metrics}"
        );
        assert!(
            metrics.contains(
                "xnf_serve_request_duration_microseconds_bucket{route=\"/v1/is-xnf\",tenant=\"-\",cache=\"hit\","
            ),
            "{metrics}"
        );
        assert!(
            metrics.contains("xnf_serve_request_duration_microseconds_sum{"),
            "{metrics}"
        );
        assert!(metrics.contains("xnf_serve_flight_retained"), "{metrics}");
        assert!(
            metrics.contains("xnf_serve_flight_sampled_out_total"),
            "{metrics}"
        );
        assert!(
            metrics.contains("xnf_serve_flight_evicted_total"),
            "{metrics}"
        );
        assert!(
            metrics.contains("xnf_serve_spans_dropped_total"),
            "{metrics}"
        );
        server.shutdown();
    }

    #[test]
    fn access_log_captures_one_json_line_per_request() {
        let path =
            std::env::temp_dir().join(format!("xnf-serve-access-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig {
            access_log: Some(path.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        };
        let server = Server::spawn(config).expect("spawn");
        let addr = server.addr();
        assert_eq!(
            post(
                addr,
                "/v1/lint",
                &lint_body(),
                &[("x-request-id", "log-line-1")]
            )
            .0,
            200
        );
        assert_eq!(
            post(
                addr,
                "/v1/lint",
                "{not json",
                &[("x-request-id", "log-line-2")]
            )
            .0,
            400
        );
        server.shutdown();
        // The drain request that shutdown issues is logged too, so
        // find our lines by id rather than pinning an exact count.
        let log = std::fs::read_to_string(&path).expect("access log exists");
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines.len() >= 2, "{log}");
        for line in &lines {
            let parsed = json::parse(line).expect("each line is a JSON object");
            for key in [
                "ts_micros",
                "id",
                "tenant",
                "route",
                "status",
                "cache",
                "shed",
                "fuel",
                "wall_micros",
            ] {
                assert!(parsed.get(key).is_some(), "missing {key} in {line}");
            }
        }
        let ok_line = lines
            .iter()
            .find(|l| l.contains("\"id\":\"log-line-1\""))
            .expect("200 logged");
        assert!(ok_line.contains("\"status\":200"), "{ok_line}");
        let err_line = lines
            .iter()
            .find(|l| l.contains("\"id\":\"log-line-2\""))
            .expect("400 logged");
        assert!(err_line.contains("\"status\":400"), "{err_line}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabling_request_recording_keeps_ids_but_empties_the_flight_ring() {
        let config = ServeConfig {
            request_recording: false,
            ..ServeConfig::default()
        };
        let server = Server::spawn(config).expect("spawn");
        let addr = server.addr();
        let resp = post_full(
            addr,
            "/v1/lint",
            &lint_body(),
            &[("x-request-id", "untraced-1")],
        );
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert_eq!(
            header_value(&resp, "x-request-id").as_deref(),
            Some("untraced-1")
        );
        assert_eq!(get(addr, "/debug/trace/untraced-1").0, 404);
        let (status, listing) = get(addr, "/debug/requests");
        assert_eq!(status, 200);
        assert!(!listing.contains("untraced-1"), "{listing}");
        server.shutdown();
    }

    #[test]
    fn malformed_bodies_and_bad_specs_map_to_400_and_422() {
        let server = Server::spawn(ServeConfig::default()).expect("spawn");
        let addr = server.addr();
        assert_eq!(post(addr, "/v1/lint", "{not json", &[]).0, 400);
        assert_eq!(post(addr, "/v1/lint", "{}", &[]).0, 400);
        let (status, body) = post(
            addr,
            "/v1/is-xnf",
            "{\"dtd\":\"<!ELEMENT r\",\"fds\":\"\"}",
            &[],
        );
        assert_eq!(status, 422, "{body}");
        server.shutdown();
    }
}
