//! A minimal JSON reader/writer for the request and response bodies.
//!
//! The workspace has no serde (the build environment is offline), and
//! the service's payloads are tiny objects of strings, booleans, and
//! small integers — so this module hand-rolls exactly that subset of
//! RFC 8259: full string escapes (including `\uXXXX` with surrogate
//! pairs), numbers, booleans, null, arrays, and objects, with a depth
//! bound so an adversarial body cannot recurse the parser to death.
//! Input size is already bounded upstream by the HTTP body cap.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nesting bound for arrays/objects: deeper input is rejected. The
/// service's own payloads nest three levels at most.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the service only uses small non-negative
    /// integers, but the parser accepts the full grammar).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (`BTreeMap`) so renderings are
    /// deterministic; duplicate keys keep the last occurrence.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this value is a non-negative
    /// integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object payload, if this value is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Member `key` of an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse failure: a message and the byte offset it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `src` as a single JSON value (trailing garbage is an error).
///
/// # Errors
///
/// [`JsonError`] with a byte offset on any grammar violation, non-UTF-8
/// escape, or nesting deeper than the fixed bound.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nests too deeply"));
        }
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.eat("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match c {
                b'0'..=b'9' => u32::from(c - b'0'),
                b'a'..=b'f' => u32::from(c - b'a') + 10,
                b'A'..=b'F' => u32::from(c - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Writes `s` as a JSON string literal (with quotes) onto `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_service_request_shape() {
        let v = parse(r#"{"dtd": "<!ELEMENT a (b)>", "stats": true, "threads": 4}"#)
            .expect("valid object");
        assert_eq!(
            v.get("dtd").and_then(Json::as_str),
            Some("<!ELEMENT a (b)>")
        );
        assert_eq!(v.get("stats").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("threads").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let mut lit = String::new();
        write_str(&mut lit, "a\"b\\c\nd\te\u{1}f — π");
        let back = parse(&lit).expect("rendered literal parses");
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}f — π"));
        // Surrogate-pair escape decodes to one scalar.
        let v = parse(r#""\ud83d\ude00""#).expect("surrogate pair");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "tru",
            "1 2",
            "nul",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // Depth bound: 40 nested arrays exceed MAX_DEPTH.
        let deep = format!("{}1{}", "[".repeat(40), "]".repeat(40));
        let e = parse(&deep).expect_err("too deep");
        assert!(e.message.contains("deeply"), "{e}");
    }

    #[test]
    fn numbers_cover_the_grammar() {
        assert_eq!(parse("-0.5e2").ok(), Some(Json::Num(-50.0)));
        assert_eq!(
            parse("18446744073709551615").expect("u64 max").as_u64(),
            None
        );
        assert_eq!(parse("7").expect("small int").as_u64(), Some(7));
        assert_eq!(parse("-1").expect("negative").as_u64(), None);
        assert_eq!(parse("1.5").expect("fractional").as_u64(), None);
    }
}
