//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! One request per connection (`Connection: close` on every response):
//! the service's clients are scripts and load generators, and the
//! single-shot discipline keeps the shedding and drain paths exact —
//! a connection is either fully answered or never admitted, so there is
//! no keep-alive state to strand at shutdown.
//!
//! Robustness is in the reader: the head (request line + headers) and
//! the body are read under independent byte caps, sockets carry
//! read/write timeouts (a stalled client times out into a well-formed
//! `408`, never a hung worker), chunked transfer encoding is refused
//! (`411` — the body cap must be enforceable before reading), and every
//! violation maps to a status code, not a panic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Byte cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// The path component of the request target (query string split
    /// off and discarded — no endpoint uses one).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read; each variant maps to one status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or length field → `400`.
    Malformed(String),
    /// The head exceeded [`MAX_HEAD`] → `431`.
    HeadTooLarge,
    /// `Content-Length` exceeded the configured body cap → `413`.
    BodyTooLarge,
    /// Chunked or otherwise unframed body → `411` (the service must
    /// know the length up front to enforce its cap).
    LengthRequired,
    /// The client stalled past the socket timeout, or closed mid-head
    /// → `408`.
    Timeout,
}

impl HttpError {
    /// The status line this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Content Too Large"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::Timeout => (408, "Request Timeout"),
        }
    }

    /// Human detail for the error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(m) => m.clone(),
            HttpError::HeadTooLarge => format!("request head over the {MAX_HEAD}-byte cap"),
            HttpError::BodyTooLarge => "request body over the configured cap".to_string(),
            HttpError::LengthRequired => {
                "a framed Content-Length body is required (chunked bodies are refused)".to_string()
            }
            HttpError::Timeout => "client stalled or closed before a full request".to_string(),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`, holding the head under
/// [`MAX_HEAD`] and the body under `max_body` bytes. `io_timeout` is
/// installed as the socket read timeout before the first byte.
///
/// # Errors
///
/// [`HttpError`] describing the violation; the caller renders it as a
/// response with [`HttpError::status`].
pub fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
    io_timeout: Duration,
) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(io_timeout))
        .map_err(|e| HttpError::Malformed(format!("socket setup failed: {e}")))?;

    // Head: read until the blank line, never past MAX_HEAD.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(at) = find_head_end(&buf) {
            break at;
        }
        if buf.len() >= MAX_HEAD {
            return Err(HttpError::HeadTooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Timeout),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        };
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };

    // Body framing: an explicit Content-Length or nothing.
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::LengthRequired);
    }
    let declared = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
    };
    if declared > max_body {
        return Err(HttpError::BodyTooLarge);
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > declared {
        return Err(HttpError::Malformed(
            "body longer than Content-Length".to_string(),
        ));
    }
    while body.len() < declared {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Timeout),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        };
        body.extend_from_slice(&chunk[..n]);
        if body.len() > declared {
            return Err(HttpError::Malformed(
                "body longer than Content-Length".to_string(),
            ));
        }
    }

    Ok(Request { body, ..request })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Closes the connection without reneging on the response: half-closes
/// the write side, then discards whatever the client was still sending
/// (bounded). Closing with unread bytes buffered makes the kernel send
/// RST, which can destroy an already-written response in flight — the
/// shed and body-cap paths answer *before* reading the body, so they
/// must drain before the drop.
pub fn finish(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 4096];
    // At most 1 MiB of discard: a client that keeps streaming past
    // that was never going to read the response anyway.
    for _ in 0..256 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Writes one response and flushes. Always appends `Connection: close`
/// and an exact `Content-Length`.
///
/// # Errors
///
/// The socket write error, if any — callers treat it as the client
/// having gone away.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = listener.local_addr().expect("bound addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("send");
            c.flush().expect("flush");
            // Keep the write half open briefly so a short read on the
            // server side means "timeout", not "closed".
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let got = read_request(&mut stream, 1024, Duration::from_millis(200));
        writer.join().expect("writer thread");
        got
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /v1/lint?x=1 HTTP/1.1\r\nHost: h\r\nX-Api-Key: k\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .expect("well-formed request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/lint");
        assert_eq!(req.header("x-api-key"), Some("k"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn rejects_oversized_and_unframed_bodies() {
        let over = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n");
        assert_eq!(over, Err(HttpError::BodyTooLarge));
        let chunked = roundtrip(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert_eq!(chunked, Err(HttpError::LengthRequired));
        let bad = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
        assert!(matches!(bad, Err(HttpError::Malformed(_))));
    }

    #[test]
    fn stalled_clients_time_out_rather_than_hang() {
        // Declared 10 body bytes, sent 0: the read must end in Timeout
        // within the socket timeout, not block forever.
        let got = roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
        assert_eq!(got, Err(HttpError::Timeout));
    }

    #[test]
    fn rejects_garbage_request_lines() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / SPDY/99\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }
}
