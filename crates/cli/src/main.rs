//! `xnf-tool` — see the crate docs of `xnf-cli` for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xnf_cli::run(&args) {
        Ok(output) => print!("{output}"),
        // Lint reports are the command's product, not a tool failure:
        // print them to stdout, bare, and signal via the exit code.
        Err(xnf_cli::CliError::Lint(report)) => {
            print!("{report}");
            std::process::exit(1);
        }
        // Same for verify: the rendered report is the product.
        Err(xnf_cli::CliError::Verify(report)) => {
            print!("{report}");
            std::process::exit(1);
        }
        // Budget exhaustion is a distinct, scriptable outcome: the output
        // so far (a partial normalize trace, or the structured exhaustion
        // message) goes to stdout, and the exit code is 4 so wrappers can
        // tell "ran out of budget" from "found a problem".
        Err(xnf_cli::CliError::Exhausted(output)) => {
            print!("{output}");
            std::process::exit(4);
        }
        Err(e) => {
            eprintln!("xnf-tool: {e}");
            std::process::exit(1);
        }
    }
}
