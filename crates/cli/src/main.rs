//! `xnf-tool` — see the crate docs of `xnf-cli` for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match xnf_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("xnf-tool: {e}");
            std::process::exit(1);
        }
    }
}
