//! # `xnf-cli` — the `xnf-tool` command line front end
//!
//! Subcommands (all file arguments are paths; FDs use the text syntax
//! `courses.course.@cno -> courses.course`, one per line, `#` comments):
//!
//! ```text
//! xnf-tool parse-dtd  <dtd>                  # echo + classify (simple/disjunctive/general, N_D)
//! xnf-tool paths      <dtd>                  # list paths(D), marking EPaths
//! xnf-tool tuples     <dtd> <xml>            # print the tuples_D(T) relation
//! xnf-tool check      <dtd> <xml> <fds>      # conformance + per-FD satisfaction
//! xnf-tool implies    <dtd> <fds> <fd…>      # (D,Σ) ⊢ φ, with witness on refutation
//! xnf-tool is-xnf     <dtd> <fds> [--no-lint]
//!                                            # XNF test, listing anomalous FDs
//! xnf-tool lint       <dtd> [<fds>] [--format json] [--predictive]
//!                                            # static analysis (codes XNF001…); nonzero exit on errors;
//!                                            # --predictive adds the XNF2xx forecast tier
//! xnf-tool analyze    <dtd> <fds> [--format human|json|dot] [--sigma-only]
//!                                            # static decomposition planner: predicted plan, cost,
//!                                            # minimal cover, FD graph, anomaly provenance — without
//!                                            # running normalize
//! xnf-tool normalize  <dtd> <fds> [--sigma-only] [--doc <xml>] [--stats] [--threads <n>] [--no-lint]
//!                                            # run the Figure 4 algorithm
//! xnf-tool verify     <dtd> <fds> [--docs <n>] [--seed <s>] [--no-lint]
//!                                            # end-to-end oracle: normalize, check is-xnf on the
//!                                            # output, and verify losslessness on generated
//!                                            # Σ-satisfying documents (default 100)
//! xnf-tool shred      <dtd> <fds> <xml> [--format sql|json] [--out <f>] [--force] [--no-lint]
//!                                            # compile (D, Σ) to a relational schema and shred the
//!                                            # document into rows (SQL DDL + INSERTs, or JSON); the
//!                                            # round trip back to the document is verified before
//!                                            # anything is emitted. Refuses non-XNF specs (they
//!                                            # materialize redundancy) unless --force
//! xnf-tool keys       <dtd> <fds> <elem-path> [max-size]
//!                                            # discover minimal (relative) keys
//! xnf-tool mvd        <dtd> <xml> <mvd…>     # check MVDs ("lhs ->> dep | indep")
//! ```
//!
//! The governed subcommands — `normalize`, `is-xnf`, `lint`, `analyze`,
//! `verify`, `shred` — additionally accept resource limits:
//!
//! ```text
//! --timeout <secs>      wall-clock deadline (fractional seconds)
//! --fuel <units>        checkpoint fuel (chase steps, derivative steps, …)
//! --max-memory <bytes>  peak governed-allocation cap
//! ```
//!
//! With no limit given the engine runs ungoverned, byte-identical to the
//! flagless invocation. When a limit trips, the command stops cleanly
//! with exit code 4: `normalize` prints the partial step trace completed
//! so far, clearly marked non-final; the others print the structured
//! exhaustion message.
//!
//! The same subcommands accept observability flags (see `xnf-obs`):
//!
//! ```text
//! --trace <file>        write a span trace (default format: Chrome trace
//!                       JSON — load in chrome://tracing or Perfetto)
//! --metrics <file>      write counters/histograms (default: Prometheus text)
//! --obs-format <fmt>    override both: chrome|jsonl|prometheus
//! ```
//!
//! With neither flag the recorder stays disabled and output is
//! byte-identical to the flagless run. Trace/metrics files are written
//! even when the run exhausts its budget — a trace of the partial run is
//! exactly what the flags are for.
//!
//! `normalize` and `is-xnf` run the linter as a preflight: hard lint
//! errors abort with the rendered report and a nonzero exit before the
//! engine touches the spec; `--no-lint` opts out. Warnings and infos never
//! block (and stay silent in preflight — use `lint` to see them). `shred`
//! preflights with the shred tier included (`xnf_lint::lint_spec_shred`),
//! so recursive DTDs and mixed content fail with the `XNF3xx` explanation
//! rather than a bare engine error.
//!
//! The command logic lives in [`run`] so it is unit-testable; `main` only
//! forwards `std::env::args` and prints.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ops;

use std::fmt;
use std::fs;
use std::time::Duration;
use xnf_core::implication::{CounterexampleSearch, Implication};
use xnf_core::{NormalizeOptions, XmlFd, XmlFdSet};
use xnf_dtd::classify::{DtdClass, DtdShapes};
use xnf_dtd::Dtd;
use xnf_govern::{Budget, Recorder};
use xnf_obs::ObsFormat;

/// CLI errors: usage problems, I/O, or any library error.
#[derive(Debug)]
pub enum CliError {
    /// Wrong arguments; the string is the usage text.
    Usage(String),
    /// File read failure.
    Io(String, std::io::Error),
    /// An error from the xnf libraries.
    Lib(String),
    /// Lint diagnostics with at least one error; the string is the fully
    /// rendered report (`main` prints it to stdout, without a prefix).
    Lint(String),
    /// A failed `verify` run; the string is the fully rendered report
    /// (`main` prints it to stdout, without a prefix, and exits nonzero).
    Verify(String),
    /// A `--timeout`/`--fuel`/`--max-memory` limit tripped; the string is
    /// the full output so far (for `normalize`, the partial step trace
    /// marked non-final; otherwise the structured exhaustion message).
    /// `main` prints it to stdout, without a prefix, and exits with 4.
    Exhausted(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage: {u}"),
            CliError::Io(path, e) => write!(f, "cannot read `{path}`: {e}"),
            CliError::Lib(e) => write!(f, "{e}"),
            CliError::Lint(report) => write!(f, "{report}"),
            CliError::Verify(report) => write!(f, "{report}"),
            CliError::Exhausted(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<xnf_govern::Exhausted> for CliError {
    fn from(e: xnf_govern::Exhausted) -> Self {
        CliError::Exhausted(format!("budget exhausted: {e}\n"))
    }
}

impl From<xnf_dtd::DtdError> for CliError {
    fn from(e: xnf_dtd::DtdError) -> Self {
        match e {
            xnf_dtd::DtdError::Exhausted(e) => e.into(),
            e => CliError::Lib(e.to_string()),
        }
    }
}

impl From<xnf_core::CoreError> for CliError {
    fn from(e: xnf_core::CoreError) -> Self {
        match e {
            xnf_core::CoreError::Exhausted(e) => e.into(),
            e => CliError::Lib(e.to_string()),
        }
    }
}

impl From<xnf_xml::XmlError> for CliError {
    fn from(e: xnf_xml::XmlError) -> Self {
        match e {
            xnf_xml::XmlError::Exhausted(e) => e.into(),
            e => CliError::Lib(e.to_string()),
        }
    }
}

// Formatting into the output `String` cannot fail in practice; routing
// the impossible error through `Lib` keeps the command bodies free of
// `.expect` calls (enforced by the repository's panic audit).
impl From<std::fmt::Error> for CliError {
    fn from(e: std::fmt::Error) -> Self {
        CliError::Lib(format!("formatting output: {e}"))
    }
}

fn read(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))
}

fn load_dtd(path: &str) -> Result<Dtd, CliError> {
    Ok(xnf_dtd::parse_dtd(&read(path)?)?)
}

fn load_fds(path: &str) -> Result<XmlFdSet, CliError> {
    Ok(XmlFdSet::parse(&read(path)?)?)
}

fn load_xml(path: &str) -> Result<xnf_xml::XmlTree, CliError> {
    Ok(xnf_xml::parse(&read(path)?)?)
}

/// Parses a DTD under the subcommand's budget, so governed runs meter
/// (and, with a recorder installed, trace) the parse phase too. With an
/// ungoverned budget this is exactly [`xnf_dtd::parse_dtd`].
fn parse_governed_dtd(src: &str, budget: &Budget) -> Result<Dtd, CliError> {
    Ok(xnf_dtd::parse_dtd_governed(
        src,
        xnf_dtd::ParseLimits::default(),
        budget,
    )?)
}

/// Runs the linter over raw spec sources and fails with the rendered
/// report when it finds hard errors. Clean specs (and specs with only
/// warnings or infos) pass silently.
pub(crate) fn preflight_lint(dtd_src: &str, fds_src: Option<&str>) -> Result<(), CliError> {
    let report = xnf_lint::lint_spec(dtd_src, fds_src);
    if report.has_errors() {
        Err(CliError::Lint(format!(
            "{}preflight lint failed; fix the errors above or rerun with --no-lint\n",
            report.render_human()
        )))
    } else {
        Ok(())
    }
}

/// [`preflight_lint`] plus the opt-in shred tier (`XNF3xx`): the `shred`
/// subcommand refuses recursive DTDs and mixed content with the full
/// shredding-specific diagnostic instead of a bare engine error.
fn preflight_lint_shred(dtd_src: &str, fds_src: Option<&str>) -> Result<(), CliError> {
    let report = xnf_lint::lint_spec_shred(dtd_src, fds_src, &Budget::unlimited())?;
    if report.has_errors() {
        Err(CliError::Lint(format!(
            "{}preflight lint failed; fix the errors above or rerun with --no-lint\n",
            report.render_human()
        )))
    } else {
        Ok(())
    }
}

/// The shared `--timeout <secs>` / `--fuel <units>` / `--max-memory
/// <bytes>` flags of the governed subcommands. With none given,
/// [`BudgetFlags::build`] returns [`Budget::unlimited`] so the flagless
/// invocation stays byte-identical to the ungoverned engine.
#[derive(Default)]
struct BudgetFlags {
    timeout: Option<f64>,
    fuel: Option<u64>,
    memory: Option<u64>,
}

impl BudgetFlags {
    /// Parses the governance flag at `args[*i]` and its value. Leaves
    /// `*i` on the value, matching the callers' trailing `i += 1`.
    fn set(&mut self, args: &[String], i: &mut usize) -> Result<(), CliError> {
        let flag = args[*i].clone();
        *i += 1;
        let value = args
            .get(*i)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--timeout" => {
                let secs: f64 = value.parse().map_err(|_| {
                    CliError::Usage("--timeout needs a number of seconds (e.g. 2.5)".into())
                })?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(CliError::Usage(
                        "--timeout needs a finite, non-negative number of seconds".into(),
                    ));
                }
                self.timeout = Some(secs);
            }
            "--fuel" => {
                self.fuel = Some(value.parse().map_err(|_| {
                    CliError::Usage("--fuel needs a number of checkpoint units".into())
                })?);
            }
            "--max-memory" => {
                self.memory =
                    Some(value.parse().map_err(|_| {
                        CliError::Usage("--max-memory needs a number of bytes".into())
                    })?);
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        Ok(())
    }

    fn build(&self) -> Budget {
        if self.timeout.is_none() && self.fuel.is_none() && self.memory.is_none() {
            return Budget::unlimited();
        }
        self.build_with(Recorder::disabled())
    }

    /// Builds a *governed* budget carrying `recorder` — used when any
    /// observability output was requested, since only a governed budget
    /// can carry a recorder. Limits stay optional.
    fn build_with(&self, recorder: Recorder) -> Budget {
        let mut b = Budget::builder().recorder(recorder);
        if let Some(secs) = self.timeout {
            b = b.deadline(Duration::from_secs_f64(secs));
        }
        if let Some(units) = self.fuel {
            b = b.fuel(units);
        }
        if let Some(bytes) = self.memory {
            b = b.memory(bytes);
        }
        b.build()
    }
}

/// Matches the flags [`BudgetFlags::set`] accepts (callers dispatch on
/// this before handing the argument over).
const BUDGET_FLAGS: [&str; 3] = ["--timeout", "--fuel", "--max-memory"];

/// The shared `--trace <file>` / `--metrics <file>` / `--obs-format
/// <fmt>` flags of the governed subcommands. `--trace` captures the span
/// timeline (Chrome trace JSON by default — load it in `chrome://tracing`
/// or Perfetto); `--metrics` captures counters, checkpoint-site tallies,
/// and duration histograms (Prometheus text by default); `--obs-format`
/// overrides either (`chrome|jsonl|prometheus`). With neither file flag
/// given, the recorder stays disabled and the invocation is
/// byte-identical to the unflagged one.
#[derive(Default)]
struct ObsFlags {
    trace: Option<String>,
    metrics: Option<String>,
    format: Option<ObsFormat>,
    recorder: Recorder,
    /// Minted alongside the recorder; failing governed runs report it so
    /// the operator can correlate the report with the exported trace
    /// file (the CLI twin of the `x-request-id` the service echoes).
    trace_id: Option<String>,
}

impl ObsFlags {
    /// Parses the observability flag at `args[*i]` and its value. Leaves
    /// `*i` on the value, matching the callers' trailing `i += 1`.
    fn set(&mut self, args: &[String], i: &mut usize) -> Result<(), CliError> {
        let flag = args[*i].clone();
        *i += 1;
        let value = args
            .get(*i)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
        match flag.as_str() {
            "--trace" => self.trace = Some(value.clone()),
            "--metrics" => self.metrics = Some(value.clone()),
            "--obs-format" => {
                self.format = Some(ObsFormat::parse(value).ok_or_else(|| {
                    CliError::Usage(format!("--obs-format needs one of {}", ObsFormat::NAMES))
                })?);
            }
            other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
        }
        Ok(())
    }

    /// Builds the subcommand's budget: ungoverned (or limits-only) when
    /// no observability output was requested; otherwise a governed budget
    /// carrying a freshly enabled recorder, kept here for [`write`].
    ///
    /// [`write`]: ObsFlags::write
    fn build_budget(&mut self, budget_flags: &BudgetFlags) -> Budget {
        if self.trace.is_none() && self.metrics.is_none() {
            return budget_flags.build();
        }
        self.recorder = Recorder::enabled();
        self.trace_id = Some(xnf_obs::mint_request_id());
        budget_flags.build_with(self.recorder.clone())
    }

    /// Appends the minted trace id to a failing run's report when
    /// `--trace` was given, so the operator knows which exported trace
    /// file belongs to the failure. Usage and I/O errors pass through
    /// untouched — they have no trace worth pointing at.
    fn tag_failure(&self, err: CliError) -> CliError {
        let (Some(id), Some(path)) = (&self.trace_id, &self.trace) else {
            return err;
        };
        let note = format!("trace id {id}: spans written to `{path}`");
        match err {
            CliError::Lib(m) => CliError::Lib(format!("{m}\n{note}")),
            CliError::Lint(m) => CliError::Lint(format!("{m}{note}\n")),
            CliError::Verify(m) => CliError::Verify(format!("{m}{note}\n")),
            CliError::Exhausted(m) => CliError::Exhausted(format!("{m}{note}\n")),
            other => other,
        }
    }

    /// Writes the requested export files. Callers invoke this right after
    /// the engine returns — *before* propagating its error — so traces
    /// and metrics survive exhaustion, where they matter most.
    fn write(&self) -> Result<(), CliError> {
        if let Some(path) = &self.trace {
            let format = self.format.unwrap_or(ObsFormat::ChromeTrace);
            fs::write(path, self.recorder.export(format))
                .map_err(|e| CliError::Io(path.clone(), e))?;
        }
        if let Some(path) = &self.metrics {
            let format = self.format.unwrap_or(ObsFormat::Prometheus);
            fs::write(path, self.recorder.export(format))
                .map_err(|e| CliError::Io(path.clone(), e))?;
        }
        Ok(())
    }
}

/// Matches the flags [`ObsFlags::set`] accepts.
const OBS_FLAGS: [&str; 3] = ["--trace", "--metrics", "--obs-format"];

const USAGE: &str = "xnf-tool <parse-dtd|paths|tuples|check|implies|is-xnf|lint|analyze|normalize\
                     |verify|shred|keys|mvd> …";

/// Runs one CLI invocation (without the program name) and returns the
/// output text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    use std::fmt::Write;
    let cmd = args.first().map_or("", String::as_str);
    match cmd {
        "parse-dtd" => {
            let [_, dtd_path] = args else {
                return Err(CliError::Usage("xnf-tool parse-dtd <dtd>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let shapes = DtdShapes::analyze(&dtd);
            writeln!(out, "{dtd}")?;
            writeln!(out, "root: {}", dtd.root_name())?;
            writeln!(out, "elements: {}", dtd.num_elements())?;
            writeln!(out, "size |D|: {}", dtd.size())?;
            writeln!(out, "recursive: {}", dtd.is_recursive())?;
            let class = match shapes.class() {
                DtdClass::Simple => "simple".to_string(),
                DtdClass::Disjunctive { nd } => format!("disjunctive (N_D = {nd})"),
                DtdClass::General => "general (not disjunctive)".to_string(),
            };
            writeln!(out, "class: {class}")?;
        }
        "paths" => {
            let [_, dtd_path] = args else {
                return Err(CliError::Usage("xnf-tool paths <dtd>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let paths = dtd.paths()?;
            for p in paths.iter() {
                let kind = if paths.is_element_path(p) { "E" } else { " " };
                writeln!(out, "{kind} {}", paths.format(p))?;
            }
        }
        "tuples" => {
            let [_, dtd_path, xml_path] = args else {
                return Err(CliError::Usage("xnf-tool tuples <dtd> <xml>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let tree = load_xml(xml_path)?;
            let paths = dtd.paths()?;
            let rel = xnf_core::tuples_relation(&tree, &dtd, &paths)?;
            writeln!(out, "{rel}")?;
            writeln!(out, "{} tuple(s)", rel.len())?;
        }
        "check" => {
            let [_, dtd_path, xml_path, fds_path] = args else {
                return Err(CliError::Usage("xnf-tool check <dtd> <xml> <fds>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let tree = load_xml(xml_path)?;
            let fds = load_fds(fds_path)?;
            match xnf_xml::conforms(&tree, &dtd) {
                Ok(()) => writeln!(out, "conforms: yes")?,
                Err(e) => writeln!(out, "conforms: NO — {e}")?,
            }
            let paths = dtd.paths()?;
            for fd in fds.iter() {
                let ok = fd.satisfied_by(&tree, &dtd, &paths)?;
                writeln!(out, "{}  {fd}", if ok { "holds   " } else { "VIOLATED" })?;
            }
        }
        "implies" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool implies <dtd> <fds> <fd> [<fd>…]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let sigma = load_fds(&args[2])?;
            let paths = dtd.paths()?;
            let resolved = sigma.resolve(&paths)?;
            let search = CounterexampleSearch::new(&dtd, &paths);
            for fd_text in &args[3..] {
                let fd: XmlFd = fd_text.parse()?;
                let r = fd.resolve(&paths)?;
                if search.chase().implies(&resolved, &r) {
                    writeln!(out, "implied      {fd}")?;
                } else if let Some(w) = search.find(&resolved, &r) {
                    writeln!(out, "NOT implied  {fd}; witness:")?;
                    out.push_str(&xnf_xml::to_string_pretty(&w.tree));
                } else {
                    writeln!(out, "NOT implied  {fd} (no small witness constructed)")?;
                }
            }
        }
        "is-xnf" => {
            let mut no_lint = false;
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--no-lint" => no_lint = true,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let [dtd_path, fds_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool is-xnf <dtd> <fds> [--no-lint] [--timeout <s>] [--fuel <n>] \
                     [--max-memory <b>] [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                        .into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            let budget = obs_flags.build_budget(&budget_flags);
            let options = ops::IsXnfOptions {
                no_lint,
                trust: None,
            };
            let result = ops::is_xnf(&dtd_src, &fds_src, &options, &budget);
            obs_flags.write()?;
            out.push_str(&result.map_err(|e| obs_flags.tag_failure(e))?);
        }
        "normalize" => {
            if args.len() < 3 {
                return Err(CliError::Usage(
                    "xnf-tool normalize <dtd> <fds> [--sigma-only] [--doc <xml>] [--stats] \
                     [--threads <n>] [--no-lint] [--timeout <s>] [--fuel <n>] [--max-memory <b>] \
                     [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                        .into(),
                ));
            }
            let mut options = NormalizeOptions::default();
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut doc_path: Option<&str> = None;
            let mut show_stats = false;
            let mut no_lint = false;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--sigma-only" => options.use_implication = false,
                    "--stats" => show_stats = true,
                    "--no-lint" => no_lint = true,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    "--threads" => {
                        i += 1;
                        options.threads =
                            args.get(i).and_then(|s| s.parse().ok()).ok_or_else(|| {
                                CliError::Usage("--threads needs a number (0 = all cores)".into())
                            })?;
                    }
                    "--doc" => {
                        i += 1;
                        doc_path = Some(
                            args.get(i)
                                .map(String::as_str)
                                .ok_or_else(|| CliError::Usage("--doc needs a file".into()))?,
                        );
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
                i += 1;
            }
            let dtd_src = read(&args[1])?;
            let fds_src = read(&args[2])?;
            let doc_src = doc_path.map(read).transpose()?;
            let budget = obs_flags.build_budget(&budget_flags);
            let spec_options = ops::NormalizeSpecOptions {
                sigma_only: !options.use_implication,
                threads: options.threads,
                stats: show_stats,
                no_lint,
                doc_src: doc_src.as_deref(),
                trust: None,
            };
            // Counter totals are merged inside the op, and trace/metrics
            // files are written even when the engine failed or exhausted
            // — a trace of the partial run is exactly what the flags are
            // for.
            let result = ops::normalize_spec(
                &dtd_src,
                &fds_src,
                &spec_options,
                &budget,
                &obs_flags.recorder,
            );
            obs_flags.write()?;
            out.push_str(&result.map_err(|e| obs_flags.tag_failure(e))?);
        }
        "verify" => {
            let mut docs: usize = 100;
            let mut seed: u64 = 0xA1;
            let mut no_lint = false;
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--no-lint" => no_lint = true,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    "--docs" => {
                        i += 1;
                        docs = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError::Usage("--docs needs a number".into()))?;
                    }
                    "--seed" => {
                        i += 1;
                        seed = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError::Usage("--seed needs a number".into()))?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let [dtd_path, fds_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool verify <dtd> <fds> [--docs <n>] [--seed <s>] [--no-lint] \
                     [--timeout <s>] [--fuel <n>] [--max-memory <b>] \
                     [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                        .into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            if !no_lint {
                preflight_lint(&dtd_src, Some(&fds_src))?;
            }
            let budget = obs_flags.build_budget(&budget_flags);
            let parse_span = budget.recorder().span("spec.parse", "parse");
            let dtd = parse_governed_dtd(&dtd_src, &budget)?;
            let sigma = XmlFdSet::parse(&fds_src)?;
            drop(parse_span);
            let config = xnf_oracle::SpecOracleConfig {
                docs,
                seed,
                budget,
                ..xnf_oracle::SpecOracleConfig::default()
            };
            let report = xnf_oracle::check_spec(&dtd, &sigma, &config);
            obs_flags.write()?;
            let report = report.map_err(|e| obs_flags.tag_failure(CliError::from(e)))?;
            writeln!(
                out,
                "verify {dtd_path} + {fds_path} ({} step(s))",
                report.steps
            )?;
            out.push_str(&report.render());
            // A generation shortfall silently weakens the oracle, so it
            // fails the run just like a real finding does.
            let generated = report.docs_checked + report.docs_skipped;
            if !report.ok() || generated < report.docs_requested {
                out.push_str("verification FAILED\n");
                return Err(obs_flags.tag_failure(CliError::Verify(out)));
            }
            writeln!(out, "verification PASSED")?;
        }
        "shred" => {
            let mut format_json = false;
            let mut out_path: Option<&str> = None;
            let mut force = false;
            let mut no_lint = false;
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--force" => force = true,
                    "--no-lint" => no_lint = true,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    "--format" => {
                        i += 1;
                        match args.get(i).map(String::as_str) {
                            Some("sql") => format_json = false,
                            Some("json") => format_json = true,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format needs `sql` or `json`".into(),
                                ))
                            }
                        }
                    }
                    "--out" => {
                        i += 1;
                        out_path = Some(
                            args.get(i)
                                .map(String::as_str)
                                .ok_or_else(|| CliError::Usage("--out needs a file".into()))?,
                        );
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let [dtd_path, fds_path, xml_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool shred <dtd> <fds> <xml> [--format sql|json] [--out <f>] [--force] \
                     [--no-lint] [--timeout <s>] [--fuel <n>] [--max-memory <b>] \
                     [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                        .into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            if !no_lint {
                preflight_lint_shred(&dtd_src, Some(&fds_src))?;
            }
            let budget = obs_flags.build_budget(&budget_flags);
            let parse_span = budget.recorder().span("spec.parse", "parse");
            let dtd = parse_governed_dtd(&dtd_src, &budget)?;
            let sigma = XmlFdSet::parse(&fds_src)?;
            drop(parse_span);
            let tree = load_xml(xml_path)?;
            // The whole pipeline runs before a single byte is emitted:
            // exhaustion or any failure yields no partial SQL, and the
            // document→rows→document round trip is verified first.
            let run = || -> Result<(String, usize, usize), CliError> {
                if !force {
                    let violations = xnf_core::anomalous_fds_governed(&dtd, &sigma, &budget)?;
                    if !violations.is_empty() {
                        let mut msg = format!(
                            "spec is not in XNF — {} anomalous FD(s):\n",
                            violations.len()
                        );
                        for v in &violations {
                            msg.push_str(&format!("  {}\n", v.fd));
                        }
                        msg.push_str(
                            "shredding a non-XNF spec materializes redundancy in its tables \
                             (they are not BCNF); normalize first, or rerun with --force",
                        );
                        return Err(CliError::Lib(msg));
                    }
                }
                let schema = xnf_core::compile_schema(&dtd, &sigma, &budget)?;
                let doc = xnf_core::shred_document(&schema, &tree, &budget)?;
                let rebuilt = xnf_core::unshred_document(&schema, &doc, &budget)?;
                if !xnf_xml::ordered_eq(&tree, &rebuilt) {
                    return Err(CliError::Lib(
                        "round-trip check failed: the rebuilt document differs from the \
                         input (this is a bug — no output was written)"
                            .into(),
                    ));
                }
                let payload = if format_json {
                    format!(
                        "{{\n\"schema\": {},\n\"data\": {}\n}}\n",
                        schema.design.to_json(),
                        doc.to_json()
                    )
                } else {
                    let inserts = doc
                        .to_insert_sql(&schema.design)
                        .map_err(|e| CliError::Lib(e.to_string()))?;
                    format!("{}\n{inserts}", schema.design.to_sql())
                };
                Ok((payload, schema.num_tables(), doc.row_count()))
            };
            let result = run();
            obs_flags.write()?;
            let (payload, tables, rows) = result.map_err(|e| obs_flags.tag_failure(e))?;
            match out_path {
                Some(path) => {
                    fs::write(path, &payload).map_err(|e| CliError::Io(path.to_string(), e))?;
                    writeln!(
                        out,
                        "shredded {xml_path}: {tables} table(s), {rows} row(s), \
                         round trip verified -> {path}"
                    )?;
                }
                None => out.push_str(&payload),
            }
        }
        "analyze" => {
            #[derive(PartialEq)]
            enum Format {
                Human,
                Json,
                Dot,
            }
            let mut format = Format::Human;
            let mut options = xnf_core::AnalyzeOptions::default();
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--sigma-only" => options.use_implication = false,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    "--format" => {
                        i += 1;
                        format = match args.get(i).map(String::as_str) {
                            Some("human") => Format::Human,
                            Some("json") => Format::Json,
                            Some("dot") => Format::Dot,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format needs `human`, `json` or `dot`".into(),
                                ))
                            }
                        };
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let [dtd_path, fds_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool analyze <dtd> <fds> [--format human|json|dot] [--sigma-only] \
                     [--timeout <s>] [--fuel <n>] [--max-memory <b>] \
                     [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                        .into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            let budget = obs_flags.build_budget(&budget_flags);
            let spec_options = ops::AnalyzeSpecOptions {
                format: match format {
                    Format::Human => ops::AnalyzeFormat::Human,
                    Format::Json => ops::AnalyzeFormat::Json,
                    Format::Dot => ops::AnalyzeFormat::Dot,
                },
                sigma_only: !options.use_implication,
                trust: None,
            };
            let outcome = ops::analyze_spec(&dtd_src, &fds_src, &spec_options, &budget);
            obs_flags.write()?;
            out.push_str(&outcome.map_err(|e| obs_flags.tag_failure(e))?.rendered);
        }
        "lint" => {
            let mut format_json = false;
            let mut predictive = false;
            let mut budget_flags = BudgetFlags::default();
            let mut obs_flags = ObsFlags::default();
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--predictive" => predictive = true,
                    flag if BUDGET_FLAGS.contains(&flag) => budget_flags.set(args, &mut i)?,
                    flag if OBS_FLAGS.contains(&flag) => obs_flags.set(args, &mut i)?,
                    "--format" => {
                        i += 1;
                        match args.get(i).map(String::as_str) {
                            Some("json") => format_json = true,
                            Some("human") => format_json = false,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format needs `json` or `human`".into(),
                                ))
                            }
                        }
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let (dtd_path, fds_path) = match files[..] {
                [dtd] => (dtd, None),
                [dtd, fds] => (dtd, Some(fds)),
                _ => {
                    return Err(CliError::Usage(
                        "xnf-tool lint <dtd> [<fds>] [--format json] [--predictive] \
                         [--timeout <s>] [--fuel <n>] [--max-memory <b>] \
                         [--trace <f>] [--metrics <f>] [--obs-format <fmt>]"
                            .into(),
                    ));
                }
            };
            if predictive && fds_path.is_none() {
                return Err(CliError::Usage(
                    "--predictive needs an FD file (the XNF2xx tier analyzes (D, \u{3a3}))".into(),
                ));
            }
            let dtd_src = read(dtd_path)?;
            let fds_src = fds_path.map(read).transpose()?;
            let budget = obs_flags.build_budget(&budget_flags);
            let options = ops::LintSpecOptions {
                json: format_json,
                predictive,
            };
            let rendered = ops::lint_sources(&dtd_src, fds_src.as_deref(), &options, &budget);
            obs_flags.write()?;
            out.push_str(&rendered.map_err(|e| obs_flags.tag_failure(e))?);
        }
        "keys" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool keys <dtd> <fds> <elem-path> [max-size]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let sigma = load_fds(&args[2])?;
            let target: xnf_dtd::Path = args[3]
                .parse()
                .map_err(|e: xnf_dtd::DtdError| CliError::Lib(e.to_string()))?;
            let max_size: usize = args
                .get(4)
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError::Usage("max-size must be a number".into()))
                })
                .transpose()?
                .unwrap_or(2);
            let keys = xnf_core::keys::find_keys(&dtd, &sigma, &target, max_size)?;
            if keys.is_empty() {
                writeln!(out, "no keys of size <= {max_size} for {target}")?;
            }
            for k in keys {
                writeln!(out, "{k}")?;
            }
        }
        "mvd" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool mvd <dtd> <xml> <mvd> [<mvd>…]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let tree = load_xml(&args[2])?;
            let paths = dtd.paths()?;
            for mvd_text in &args[3..] {
                let mvd: xnf_core::mvd::XmlMvd = mvd_text.parse()?;
                let ok = mvd.satisfied_by(&tree, &dtd, &paths)?;
                writeln!(out, "{}  {mvd}", if ok { "holds   " } else { "VIOLATED" })?;
            }
        }
        "" | "-h" | "--help" | "help" => {
            writeln!(out, "usage: {USAGE}")?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}`; {USAGE}"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, content: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push("xnf-cli-tests");
        std::fs::create_dir_all(&p).unwrap();
        p.push(name);
        std::fs::write(&p, content).unwrap();
        p.to_string_lossy().into_owned()
    }

    const DBLP_DTD: &str = "<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>";

    const DBLP_FDS: &str = "db.conf.title.S -> db.conf
db.conf.issue -> db.conf.issue.inproceedings.@year";

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args).expect("command succeeds")
    }

    #[test]
    fn parse_dtd_reports_class() {
        let dtd = write_tmp("d1.dtd", DBLP_DTD);
        let out = run_ok(&["parse-dtd", &dtd]);
        assert!(out.contains("class: simple"));
        assert!(out.contains("root: db"));
    }

    #[test]
    fn paths_lists_epaths() {
        let dtd = write_tmp("d2.dtd", DBLP_DTD);
        let out = run_ok(&["paths", &dtd]);
        assert!(out.contains("E db.conf.issue"));
        assert!(out.contains("  db.conf.issue.inproceedings.@year"));
    }

    #[test]
    fn is_xnf_detects_violation() {
        let dtd = write_tmp("d3.dtd", DBLP_DTD);
        let fds = write_tmp("d3.fds", DBLP_FDS);
        let out = run_ok(&["is-xnf", &dtd, &fds]);
        assert!(out.contains("in XNF: NO"));
        assert!(out.contains("@year"));
    }

    #[test]
    fn normalize_moves_year() {
        let dtd = write_tmp("d4.dtd", DBLP_DTD);
        let fds = write_tmp("d4.fds", DBLP_FDS);
        let out = run_ok(&["normalize", &dtd, &fds]);
        assert!(out.contains("MoveAttribute"));
        assert!(out.contains("<!ATTLIST issue\n    year CDATA #REQUIRED>"));
    }

    #[test]
    fn verify_runs_the_oracle_end_to_end() {
        let dtd = write_tmp("d7.dtd", DBLP_DTD);
        let fds = write_tmp("d7.fds", DBLP_FDS);
        let out = run_ok(&["verify", &dtd, &fds, "--docs", "10", "--seed", "3"]);
        assert!(out.contains("xnf output check: PASS"), "{out}");
        assert!(out.contains("verification PASSED"), "{out}");
    }

    #[test]
    fn verify_fails_on_a_generation_shortfall() {
        // An FD set whose repair loop cannot succeed from empty documents is
        // not constructible here, so force the shortfall path the simple
        // way: request more documents than max_attempts can ever yield by
        // pointing verify at a spec that needs none — then tamper with the
        // FD file so it no longer parses, exercising the error surface too.
        let dtd = write_tmp("d8.dtd", DBLP_DTD);
        let fds = write_tmp("d8.fds", "db.conf -> \n");
        let args: Vec<String> = ["verify", &dtd, &fds, "--no-lint"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_err());
    }

    #[test]
    fn normalize_stats_and_threads_flags() {
        let dtd = write_tmp("d4s.dtd", DBLP_DTD);
        let fds = write_tmp("d4s.fds", DBLP_FDS);
        let plain = run_ok(&["normalize", &dtd, &fds]);
        let out = run_ok(&["normalize", &dtd, &fds, "--stats", "--threads", "2"]);
        assert!(out.contains("=== stats ==="));
        assert!(out.contains("chase runs:"));
        assert!(out.contains("implication cache:"));
        assert!(out.contains("% hit rate"));
        // The stats block is purely additive, and threads never change
        // the revised design.
        assert!(out.starts_with(&plain));
        assert!(!plain.contains("=== stats ==="));
    }

    #[test]
    fn normalize_with_document_verifies_losslessness() {
        let dtd = write_tmp("d5.dtd", DBLP_DTD);
        let fds = write_tmp("d5.fds", DBLP_FDS);
        let xml = write_tmp(
            "d5.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1-10" year="2002">
                  <author>A</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["normalize", &dtd, &fds, "--doc", &xml]);
        assert!(out.contains("lossless round-trip: verified"));
        assert!(out.contains(r#"<issue year="2002">"#));
    }

    #[test]
    fn implies_prints_witness() {
        let dtd = write_tmp("d6.dtd", DBLP_DTD);
        let fds = write_tmp("d6.fds", DBLP_FDS);
        let out = run_ok(&[
            "implies",
            &dtd,
            &fds,
            "db.conf.issue -> db.conf.issue.inproceedings.@year",
            "db.conf.issue -> db.conf.issue.inproceedings",
        ]);
        assert!(out.contains("implied      db.conf.issue -> db.conf.issue.inproceedings.@year"));
        assert!(out.contains("NOT implied  db.conf.issue -> db.conf.issue.inproceedings"));
        assert!(out.contains("<db>") || out.contains("<db"));
    }

    #[test]
    fn check_reports_conformance_and_fds() {
        let dtd = write_tmp("d7.dtd", DBLP_DTD);
        let fds = write_tmp("d7.fds", DBLP_FDS);
        let xml = write_tmp(
            "d7.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1" year="2001">
                  <author>A</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
                <inproceedings key="p2" pages="2" year="2002">
                  <author>B</author><title>T2</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["check", &dtd, &xml, &fds]);
        assert!(out.contains("conforms: yes"));
        assert!(out.contains("VIOLATED"));
        assert!(out.contains("holds"));
    }

    #[test]
    fn tuples_prints_relation() {
        let dtd = write_tmp("d8.dtd", DBLP_DTD);
        let xml = write_tmp(
            "d8.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1" year="2001">
                  <author>A</author><author>B</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["tuples", &dtd, &xml]);
        assert!(out.contains("2 tuple(s)"));
        assert!(out.contains("db.conf.issue.inproceedings.@year"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            run(&["nonsense".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["parse-dtd".to_string(), "/nonexistent".to_string()]),
            Err(CliError::Io(..))
        ));
        let bad = write_tmp("bad.dtd", "<!ELEMENT r (unclosed>");
        assert!(matches!(
            run(&["parse-dtd".to_string(), bad]),
            Err(CliError::Lib(_))
        ));
    }

    #[test]
    fn keys_discovers_relative_key() {
        let dtd = write_tmp(
            "d9.dtd",
            "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>",
        );
        let fds = write_tmp(
            "d9.fds",
            "courses.course.@cno -> courses.course
courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        );
        let out = run_ok(&["keys", &dtd, &fds, "courses.course.taken_by.student", "2"]);
        assert!(out.contains(
            "{courses.course, courses.course.taken_by.student.@sno} -> courses.course.taken_by.student"
        ));
        let out = run_ok(&["keys", &dtd, &fds, "courses.course"]);
        assert!(out.contains("{courses.course.@cno} -> courses.course"));
    }

    #[test]
    fn mvd_command_checks_swap_semantics() {
        let dtd = write_tmp(
            "d10.dtd",
            "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>",
        );
        let xml = write_tmp(
            "d10.xml",
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N1</name><grade>A</grade></student>
               <student sno="s2"><name>N2</name><grade>B</grade></student>
               </taken_by></course></courses>"#,
        );
        let out = run_ok(&[
            "mvd",
            &dtd,
            &xml,
            // Structural independence: title vs taken_by subtrees.
            "courses.course ->> courses.course.title.S | courses.course.taken_by.student.@sno",
            // Name and grade are tied through the student choice.
            "courses.course ->> courses.course.taken_by.student.name.S | courses.course.taken_by.student.grade.S",
        ]);
        assert!(out.contains("holds"));
        assert!(out.contains("VIOLATED"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_ok(&["help"]);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn lint_clean_spec_succeeds() {
        let dtd = write_tmp("l1.dtd", DBLP_DTD);
        let fds = write_tmp("l1.fds", DBLP_FDS);
        let out = run_ok(&["lint", &dtd, &fds]);
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn lint_dtd_alone_reports_warnings_without_failing() {
        let dtd = write_tmp(
            "l2.dtd",
            "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT orphan EMPTY>",
        );
        let out = run_ok(&["lint", &dtd]);
        assert!(out.contains("warning[XNF007]"), "{out}");
        assert!(out.contains("lint: 0 errors, 1 warning"), "{out}");
    }

    #[test]
    fn lint_errors_surface_as_lint_failure() {
        let dtd = write_tmp("l3.dtd", "<!ELEMENT r (ghost)>");
        let args = vec!["lint".to_string(), dtd];
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF004]"), "{report}");
                assert!(report.contains("lint: 1 error"), "{report}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_format_json() {
        let dtd = write_tmp("l4.dtd", DBLP_DTD);
        let fds = write_tmp("l4.fds", DBLP_FDS);
        let out = run_ok(&["lint", &dtd, &fds, "--format", "json"]);
        assert!(out.contains("\"version\": 1"), "{out}");
        assert!(out.contains("\"clean\": true"), "{out}");
        // Errors render as JSON too when requested.
        let bad = write_tmp("l4bad.dtd", "<!ELEMENT r (ghost)>");
        match run(&["lint".to_string(), bad, "--format".into(), "json".into()]) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("\"code\": \"XNF004\""), "{report}");
                assert!(report.contains("\"clean\": false"), "{report}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_predictive_adds_the_forecast_tier() {
        let dtd = write_tmp("lp.dtd", DBLP_DTD);
        let fds = write_tmp("lp.fds", DBLP_FDS);
        // Without the flag the spec is clean; with it the XNF2xx
        // forecast surfaces (warnings never fail the command).
        let plain = run_ok(&["lint", &dtd, &fds]);
        assert!(plain.contains("lint: clean"), "{plain}");
        let predicted = run_ok(&["lint", &dtd, &fds, "--predictive"]);
        assert!(predicted.contains("warning[XNF200]"), "{predicted}");
        assert!(predicted.contains("info[XNF203]"), "{predicted}");
        // JSON carries the same codes.
        let json = run_ok(&["lint", &dtd, &fds, "--predictive", "--format", "json"]);
        assert!(json.contains("\"code\": \"XNF200\""), "{json}");
        // The flag needs an FD file.
        let args = vec!["lint".to_string(), dtd, "--predictive".into()];
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn analyze_predicts_the_dblp_plan() {
        let dtd = write_tmp("a1.dtd", DBLP_DTD);
        let fds = write_tmp("a1.fds", DBLP_FDS);
        let out = run_ok(&["analyze", &dtd, &fds]);
        assert!(out.contains("=== anomalies (1) ==="), "{out}");
        assert!(out.contains("move-attribute"), "{out}");
        assert!(out.contains("=== predicted plan"), "{out}");
        assert!(out.contains("MoveAttribute"), "{out}");
        assert!(out.contains("predicted fuel:"), "{out}");
        // The prediction agrees with the real run's step trace.
        let norm = run_ok(&["normalize", &dtd, &fds]);
        for line in out
            .lines()
            .skip_while(|l| !l.starts_with("=== predicted plan"))
            .skip(1)
            .take_while(|l| !l.starts_with("==="))
        {
            assert!(
                norm.contains(line),
                "plan step missing from normalize: {line}"
            );
        }
    }

    #[test]
    fn analyze_formats_json_and_dot() {
        let dtd = write_tmp("a2.dtd", DBLP_DTD);
        let fds = write_tmp("a2.fds", DBLP_FDS);
        let json = run_ok(&["analyze", &dtd, &fds, "--format", "json"]);
        assert!(json.contains("\"version\": 1"), "{json}");
        assert!(json.contains("\"plan\":"), "{json}");
        assert!(json.contains("\"predicted_fuel\":"), "{json}");
        let dot = run_ok(&["analyze", &dtd, &fds, "--format", "dot"]);
        assert!(dot.starts_with("digraph"), "{dot}");
        let args: Vec<String> = ["analyze", &dtd, &fds, "--format", "yaml"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn starved_analyze_exits_with_exhaustion() {
        let dtd = write_tmp("a3.dtd", DBLP_DTD);
        let fds = write_tmp("a3.fds", DBLP_FDS);
        let args: Vec<String> = ["analyze", &dtd, &fds, "--fuel", "25"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Exhausted(output)) => {
                assert!(
                    output.contains("PARTIAL ANALYSIS") || output.contains("budget exhausted"),
                    "{output}"
                );
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn normalize_preflight_blocks_bad_specs() {
        let dtd = write_tmp("l5.dtd", DBLP_DTD);
        let fds = write_tmp("l5.fds", "db.conf.ghost -> db.conf");
        let args: Vec<String> = ["normalize", &dtd, &fds]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF102]"), "{report}");
                assert!(report.contains("preflight lint failed"), "{report}");
            }
            other => panic!("expected preflight failure, got {other:?}"),
        }
        // --no-lint hands the spec straight to the engine, which rejects
        // the unknown path itself (a Lib error, not a Lint report).
        let mut args = args;
        args.push("--no-lint".into());
        assert!(matches!(run(&args), Err(CliError::Lib(_))));
    }

    #[test]
    fn is_xnf_preflight_blocks_and_no_lint_opts_out() {
        let dtd = write_tmp("l6.dtd", "<!ELEMENT r (ghost)>");
        let fds = write_tmp("l6.fds", "");
        let args: Vec<String> = ["is-xnf", &dtd, &fds]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF004]"), "{report}")
            }
            other => panic!("expected preflight failure, got {other:?}"),
        }
        let mut args = args;
        args.push("--no-lint".into());
        assert!(matches!(run(&args), Err(CliError::Lib(_))));
    }

    #[test]
    fn preflight_is_silent_on_clean_specs() {
        let dtd = write_tmp("l7.dtd", DBLP_DTD);
        let fds = write_tmp("l7.fds", DBLP_FDS);
        let linted = run_ok(&["is-xnf", &dtd, &fds]);
        let skipped = run_ok(&["is-xnf", &dtd, &fds, "--no-lint"]);
        assert_eq!(linted, skipped, "preflight must not change clean output");
    }

    #[test]
    fn generous_budget_flags_leave_output_identical() {
        let dtd = write_tmp("g1.dtd", DBLP_DTD);
        let fds = write_tmp("g1.fds", DBLP_FDS);
        for cmd in ["normalize", "is-xnf", "lint", "verify"] {
            let mut plain = vec![cmd, dtd.as_str(), fds.as_str()];
            if cmd == "verify" {
                plain.extend(["--docs", "5", "--seed", "3"]);
            }
            let mut governed = plain.clone();
            governed.extend([
                "--fuel",
                "100000000",
                "--timeout",
                "600",
                "--max-memory",
                "1000000000",
            ]);
            assert_eq!(
                run_ok(&plain),
                run_ok(&governed),
                "{cmd}: generous limits must not change the output"
            );
        }
    }

    #[test]
    fn starved_normalize_returns_partial_marked_non_final() {
        let dtd = write_tmp("g2.dtd", DBLP_DTD);
        let fds = write_tmp("g2.fds", DBLP_FDS);
        // Enough fuel to finish the (governed) DTD parse, little enough to
        // starve the normalize loop itself — the partial-trace path.
        let args: Vec<String> = ["normalize", &dtd, &fds, "--fuel", "20"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Exhausted(output)) => {
                assert!(output.contains("PARTIAL RESULT"), "{output}");
                assert!(output.contains("NOT"), "{output}");
                assert!(output.contains("=== steps ("), "{output}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn starved_is_xnf_lint_and_verify_exhaust_cleanly() {
        let dtd = write_tmp("g3.dtd", DBLP_DTD);
        let fds = write_tmp("g3.fds", DBLP_FDS);
        for cmd in ["is-xnf", "lint", "verify"] {
            let args: Vec<String> = [cmd, &dtd, &fds, "--fuel", "2", "--no-lint"]
                .iter()
                .filter(|a| !(cmd == "lint" && **a == "--no-lint"))
                .map(|s| s.to_string())
                .collect();
            match run(&args) {
                Err(CliError::Exhausted(msg)) => {
                    assert!(msg.contains("budget exhausted"), "{cmd}: {msg}")
                }
                other => panic!("{cmd}: expected exhaustion, got {other:?}"),
            }
        }
    }

    const UNIVERSITY_DTD: &str = "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>";

    const UNIVERSITY_FDS: &str = "courses.course.@cno -> courses.course
courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student
courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S";

    #[test]
    fn shred_emits_sql_for_an_xnf_spec() {
        let dtd = write_tmp(
            "s1.dtd",
            "<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)> <!ATTLIST a k CDATA #REQUIRED>",
        );
        let fds = write_tmp("s1.fds", "r.a.@k -> r.a");
        let xml = write_tmp("s1.xml", r#"<r><a k="1">x</a><a k="2">y</a></r>"#);
        let out = run_ok(&["shred", &dtd, &fds, &xml]);
        assert!(out.contains("CREATE TABLE \"r\""), "{out}");
        assert!(out.contains("CREATE TABLE \"a\""), "{out}");
        assert!(out.contains("INSERT INTO \"a\""), "{out}");
        assert!(out.contains("'1'"), "{out}");
        // JSON carries the same schema and rows.
        let json = run_ok(&["shred", &dtd, &fds, &xml, "--format", "json"]);
        assert!(json.contains("\"schema\""), "{json}");
        assert!(json.contains("\"data\""), "{json}");
    }

    #[test]
    fn shred_refuses_non_xnf_specs_unless_forced() {
        let dtd = write_tmp("s2.dtd", UNIVERSITY_DTD);
        let fds = write_tmp("s2.fds", UNIVERSITY_FDS);
        let xml = write_tmp(
            "s2.xml",
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N</name><grade>A</grade></student>
               </taken_by></course></courses>"#,
        );
        let args: Vec<String> = ["shred", &dtd, &fds, &xml]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lib(msg)) => {
                assert!(msg.contains("not in XNF"), "{msg}");
                assert!(msg.contains("--force"), "{msg}");
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        let mut args = args;
        args.push("--force".into());
        let out = run(&args).expect("--force shreds anyway");
        assert!(out.contains("CREATE TABLE \"student\""), "{out}");
    }

    #[test]
    fn shred_preflight_blocks_recursive_dtds() {
        let dtd = write_tmp("s3.dtd", "<!ELEMENT r (part)>\n<!ELEMENT part (part*)>");
        let fds = write_tmp("s3.fds", "");
        let xml = write_tmp("s3.xml", "<r><part/></r>");
        let args: Vec<String> = ["shred", &dtd, &fds, &xml]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("XNF300"), "{report}");
            }
            other => panic!("expected shred-tier lint failure, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_shred_writes_no_partial_file() {
        let dtd = write_tmp("s4.dtd", UNIVERSITY_DTD);
        let fds = write_tmp("s4.fds", UNIVERSITY_FDS);
        let xml = write_tmp(
            "s4.xml",
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N</name><grade>A</grade></student>
               </taken_by></course></courses>"#,
        );
        let out_file = {
            let mut p = std::env::temp_dir();
            p.push("xnf-cli-tests");
            p.push("s4.sql");
            let _ = std::fs::remove_file(&p);
            p
        };
        for fuel in ["1", "30"] {
            let args: Vec<String> = [
                "shred",
                &dtd,
                &fds,
                &xml,
                "--force",
                "--no-lint",
                "--fuel",
                fuel,
                "--out",
                &out_file.to_string_lossy(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            match run(&args) {
                Err(CliError::Exhausted(msg)) => {
                    assert!(msg.contains("budget exhausted"), "{msg}")
                }
                other => panic!("fuel {fuel}: expected exhaustion, got {other:?}"),
            }
            assert!(!out_file.exists(), "fuel {fuel}: partial SQL file written");
        }
        // With a generous budget the same invocation writes the file.
        let args: Vec<String> = [
            "shred",
            &dtd,
            &fds,
            &xml,
            "--force",
            "--no-lint",
            "--fuel",
            "100000000",
            "--out",
            &out_file.to_string_lossy(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run(&args).expect("generous budget succeeds");
        assert!(out.contains("round trip verified"), "{out}");
        let sql = std::fs::read_to_string(&out_file).unwrap();
        assert!(sql.contains("CREATE TABLE \"courses\""), "{sql}");
    }

    #[test]
    fn failing_traced_runs_report_their_trace_id() {
        let dtd = write_tmp("t9.dtd", UNIVERSITY_DTD);
        let fds = write_tmp("t9.fds", UNIVERSITY_FDS);
        let trace = write_tmp("t9.trace.json", "");
        let args: Vec<String> = [
            "normalize",
            &dtd,
            &fds,
            "--no-lint",
            "--fuel",
            "20",
            "--trace",
            &trace,
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let Err(CliError::Exhausted(report)) = run(&args) else {
            panic!("fuel 20 must exhaust");
        };
        // The report names the trace id and the file it points at, and
        // the id has the same 32-hex shape the service mints.
        let line = report
            .lines()
            .find(|l| l.starts_with("trace id "))
            .unwrap_or_else(|| panic!("no trace id in {report}"));
        let id = line
            .trim_start_matches("trace id ")
            .split(':')
            .next()
            .unwrap();
        assert_eq!(id.len(), 32, "{line}");
        assert!(id
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert!(line.contains(&trace), "{line}");
        // The trace file itself was still written.
        let exported = std::fs::read_to_string(&trace).unwrap();
        assert!(exported.contains("traceEvents"), "{exported}");
        // Without --trace the same failure carries no trace id line.
        let args: Vec<String> = ["normalize", &dtd, &fds, "--no-lint", "--fuel", "20"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let Err(CliError::Exhausted(report)) = run(&args) else {
            panic!("fuel 20 must exhaust");
        };
        assert!(!report.contains("trace id "), "{report}");
    }

    #[test]
    fn budget_flags_reject_bad_values() {
        let dtd = write_tmp("g4.dtd", DBLP_DTD);
        let fds = write_tmp("g4.fds", DBLP_FDS);
        for bad in [
            vec!["is-xnf", &dtd, &fds, "--fuel"],
            vec!["is-xnf", &dtd, &fds, "--fuel", "lots"],
            vec!["is-xnf", &dtd, &fds, "--timeout", "-1"],
            vec!["is-xnf", &dtd, &fds, "--timeout", "inf"],
            vec!["is-xnf", &dtd, &fds, "--max-memory", "big"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(
                matches!(run(&args), Err(CliError::Usage(_))),
                "{bad:?} must be a usage error"
            );
        }
    }
}
