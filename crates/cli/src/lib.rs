//! # `xnf-cli` — the `xnf-tool` command line front end
//!
//! Subcommands (all file arguments are paths; FDs use the text syntax
//! `courses.course.@cno -> courses.course`, one per line, `#` comments):
//!
//! ```text
//! xnf-tool parse-dtd  <dtd>                  # echo + classify (simple/disjunctive/general, N_D)
//! xnf-tool paths      <dtd>                  # list paths(D), marking EPaths
//! xnf-tool tuples     <dtd> <xml>            # print the tuples_D(T) relation
//! xnf-tool check      <dtd> <xml> <fds>      # conformance + per-FD satisfaction
//! xnf-tool implies    <dtd> <fds> <fd…>      # (D,Σ) ⊢ φ, with witness on refutation
//! xnf-tool is-xnf     <dtd> <fds> [--no-lint]
//!                                            # XNF test, listing anomalous FDs
//! xnf-tool lint       <dtd> [<fds>] [--format json]
//!                                            # static analysis (codes XNF001…); nonzero exit on errors
//! xnf-tool normalize  <dtd> <fds> [--sigma-only] [--doc <xml>] [--stats] [--threads <n>] [--no-lint]
//!                                            # run the Figure 4 algorithm
//! xnf-tool verify     <dtd> <fds> [--docs <n>] [--seed <s>] [--no-lint]
//!                                            # end-to-end oracle: normalize, check is-xnf on the
//!                                            # output, and verify losslessness on generated
//!                                            # Σ-satisfying documents (default 100)
//! xnf-tool keys       <dtd> <fds> <elem-path> [max-size]
//!                                            # discover minimal (relative) keys
//! xnf-tool mvd        <dtd> <xml> <mvd…>     # check MVDs ("lhs ->> dep | indep")
//! ```
//!
//! `normalize` and `is-xnf` run the linter as a preflight: hard lint
//! errors abort with the rendered report and a nonzero exit before the
//! engine touches the spec; `--no-lint` opts out. Warnings and infos never
//! block (and stay silent in preflight — use `lint` to see them).
//!
//! The command logic lives in [`run`] so it is unit-testable; `main` only
//! forwards `std::env::args` and prints.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use xnf_core::implication::{CounterexampleSearch, Implication};
use xnf_core::lossless::{transform_document, verify_lossless};
use xnf_core::{normalize, NormalizeOptions, XmlFd, XmlFdSet};
use xnf_dtd::classify::{DtdClass, DtdShapes};
use xnf_dtd::Dtd;

/// CLI errors: usage problems, I/O, or any library error.
#[derive(Debug)]
pub enum CliError {
    /// Wrong arguments; the string is the usage text.
    Usage(String),
    /// File read failure.
    Io(String, std::io::Error),
    /// An error from the xnf libraries.
    Lib(String),
    /// Lint diagnostics with at least one error; the string is the fully
    /// rendered report (`main` prints it to stdout, without a prefix).
    Lint(String),
    /// A failed `verify` run; the string is the fully rendered report
    /// (`main` prints it to stdout, without a prefix, and exits nonzero).
    Verify(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "usage: {u}"),
            CliError::Io(path, e) => write!(f, "cannot read `{path}`: {e}"),
            CliError::Lib(e) => write!(f, "{e}"),
            CliError::Lint(report) => write!(f, "{report}"),
            CliError::Verify(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<xnf_dtd::DtdError> for CliError {
    fn from(e: xnf_dtd::DtdError) -> Self {
        CliError::Lib(e.to_string())
    }
}

impl From<xnf_core::CoreError> for CliError {
    fn from(e: xnf_core::CoreError) -> Self {
        CliError::Lib(e.to_string())
    }
}

impl From<xnf_xml::XmlError> for CliError {
    fn from(e: xnf_xml::XmlError) -> Self {
        CliError::Lib(e.to_string())
    }
}

fn read(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))
}

fn load_dtd(path: &str) -> Result<Dtd, CliError> {
    Ok(xnf_dtd::parse_dtd(&read(path)?)?)
}

fn load_fds(path: &str) -> Result<XmlFdSet, CliError> {
    Ok(XmlFdSet::parse(&read(path)?)?)
}

fn load_xml(path: &str) -> Result<xnf_xml::XmlTree, CliError> {
    Ok(xnf_xml::parse(&read(path)?)?)
}

/// Runs the linter over raw spec sources and fails with the rendered
/// report when it finds hard errors. Clean specs (and specs with only
/// warnings or infos) pass silently.
fn preflight_lint(dtd_src: &str, fds_src: Option<&str>) -> Result<(), CliError> {
    let report = xnf_lint::lint_spec(dtd_src, fds_src);
    if report.has_errors() {
        Err(CliError::Lint(format!(
            "{}preflight lint failed; fix the errors above or rerun with --no-lint\n",
            report.render_human()
        )))
    } else {
        Ok(())
    }
}

const USAGE: &str =
    "xnf-tool <parse-dtd|paths|tuples|check|implies|is-xnf|lint|normalize|verify|keys|mvd> …";

/// Runs one CLI invocation (without the program name) and returns the
/// output text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    use std::fmt::Write;
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "parse-dtd" => {
            let [_, dtd_path] = args else {
                return Err(CliError::Usage("xnf-tool parse-dtd <dtd>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let shapes = DtdShapes::analyze(&dtd);
            writeln!(out, "{dtd}").expect("string write");
            writeln!(out, "root: {}", dtd.root_name()).expect("string write");
            writeln!(out, "elements: {}", dtd.num_elements()).expect("string write");
            writeln!(out, "size |D|: {}", dtd.size()).expect("string write");
            writeln!(out, "recursive: {}", dtd.is_recursive()).expect("string write");
            let class = match shapes.class() {
                DtdClass::Simple => "simple".to_string(),
                DtdClass::Disjunctive { nd } => format!("disjunctive (N_D = {nd})"),
                DtdClass::General => "general (not disjunctive)".to_string(),
            };
            writeln!(out, "class: {class}").expect("string write");
        }
        "paths" => {
            let [_, dtd_path] = args else {
                return Err(CliError::Usage("xnf-tool paths <dtd>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let paths = dtd.paths()?;
            for p in paths.iter() {
                let kind = if paths.is_element_path(p) { "E" } else { " " };
                writeln!(out, "{kind} {}", paths.format(p)).expect("string write");
            }
        }
        "tuples" => {
            let [_, dtd_path, xml_path] = args else {
                return Err(CliError::Usage("xnf-tool tuples <dtd> <xml>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let tree = load_xml(xml_path)?;
            let paths = dtd.paths()?;
            let rel = xnf_core::tuples_relation(&tree, &dtd, &paths)?;
            writeln!(out, "{rel}").expect("string write");
            writeln!(out, "{} tuple(s)", rel.len()).expect("string write");
        }
        "check" => {
            let [_, dtd_path, xml_path, fds_path] = args else {
                return Err(CliError::Usage("xnf-tool check <dtd> <xml> <fds>".into()));
            };
            let dtd = load_dtd(dtd_path)?;
            let tree = load_xml(xml_path)?;
            let fds = load_fds(fds_path)?;
            match xnf_xml::conforms(&tree, &dtd) {
                Ok(()) => writeln!(out, "conforms: yes").expect("string write"),
                Err(e) => writeln!(out, "conforms: NO — {e}").expect("string write"),
            }
            let paths = dtd.paths()?;
            for fd in fds.iter() {
                let ok = fd.satisfied_by(&tree, &dtd, &paths)?;
                writeln!(out, "{}  {fd}", if ok { "holds   " } else { "VIOLATED" })
                    .expect("string write");
            }
        }
        "implies" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool implies <dtd> <fds> <fd> [<fd>…]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let sigma = load_fds(&args[2])?;
            let paths = dtd.paths()?;
            let resolved = sigma.resolve(&paths)?;
            let search = CounterexampleSearch::new(&dtd, &paths);
            for fd_text in &args[3..] {
                let fd: XmlFd = fd_text.parse()?;
                let r = fd.resolve(&paths)?;
                if search.chase().implies(&resolved, &r) {
                    writeln!(out, "implied      {fd}").expect("string write");
                } else if let Some(w) = search.find(&resolved, &r) {
                    writeln!(out, "NOT implied  {fd}; witness:").expect("string write");
                    out.push_str(&xnf_xml::to_string_pretty(&w.tree));
                } else {
                    writeln!(out, "NOT implied  {fd} (no small witness constructed)")
                        .expect("string write");
                }
            }
        }
        "is-xnf" => {
            let no_lint = args.iter().any(|a| a == "--no-lint");
            let files: Vec<&String> = args[1..].iter().filter(|a| *a != "--no-lint").collect();
            let [dtd_path, fds_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool is-xnf <dtd> <fds> [--no-lint]".into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            if !no_lint {
                preflight_lint(&dtd_src, Some(&fds_src))?;
            }
            let dtd = xnf_dtd::parse_dtd(&dtd_src)?;
            let sigma = XmlFdSet::parse(&fds_src)?;
            let violations = xnf_core::anomalous_fds(&dtd, &sigma)?;
            if violations.is_empty() {
                writeln!(out, "in XNF: yes").expect("string write");
            } else {
                writeln!(out, "in XNF: NO — {} anomalous FD(s):", violations.len())
                    .expect("string write");
                for v in violations {
                    writeln!(out, "  {}", v.fd).expect("string write");
                }
            }
        }
        "normalize" => {
            if args.len() < 3 {
                return Err(CliError::Usage(
                    "xnf-tool normalize <dtd> <fds> [--sigma-only] [--doc <xml>] [--stats] [--threads <n>] [--no-lint]".into(),
                ));
            }
            let mut options = NormalizeOptions::default();
            let mut doc_path: Option<&str> = None;
            let mut show_stats = false;
            let mut no_lint = false;
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--sigma-only" => options.use_implication = false,
                    "--stats" => show_stats = true,
                    "--no-lint" => no_lint = true,
                    "--threads" => {
                        i += 1;
                        options.threads =
                            args.get(i).and_then(|s| s.parse().ok()).ok_or_else(|| {
                                CliError::Usage("--threads needs a number (0 = all cores)".into())
                            })?;
                    }
                    "--doc" => {
                        i += 1;
                        doc_path = Some(
                            args.get(i)
                                .map(String::as_str)
                                .ok_or_else(|| CliError::Usage("--doc needs a file".into()))?,
                        );
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
                i += 1;
            }
            let dtd_src = read(&args[1])?;
            let fds_src = read(&args[2])?;
            if !no_lint {
                preflight_lint(&dtd_src, Some(&fds_src))?;
            }
            let dtd = xnf_dtd::parse_dtd(&dtd_src)?;
            let sigma = XmlFdSet::parse(&fds_src)?;
            let result = normalize(&dtd, &sigma, &options)?;
            writeln!(out, "=== steps ({}) ===", result.steps.len()).expect("string write");
            for s in &result.steps {
                writeln!(out, "{s:?}").expect("string write");
            }
            writeln!(out, "=== revised DTD ===\n{}", result.dtd).expect("string write");
            writeln!(out, "=== revised FDs ===\n{}", result.sigma).expect("string write");
            if show_stats {
                let s = &result.stats;
                let c = &s.chase;
                let queries = c.cache_hits + c.cache_misses;
                let hit_rate = if queries == 0 {
                    0.0
                } else {
                    100.0 * c.cache_hits as f64 / queries as f64
                };
                writeln!(out, "=== stats ===").expect("string write");
                writeln!(out, "iterations:        {}", s.iterations).expect("string write");
                writeln!(out, "chase runs:        {}", c.runs).expect("string write");
                writeln!(out, "rule firings:      {}", c.rule_firings).expect("string write");
                writeln!(out, "ternary flips:     {}", c.ternary_flips).expect("string write");
                writeln!(
                    out,
                    "implication cache: {} hits / {} misses ({hit_rate:.1}% hit rate)",
                    c.cache_hits, c.cache_misses
                )
                .expect("string write");
                writeln!(
                    out,
                    "wall time:         search {:?}, decide {:?}, guards {:?}, apply {:?}",
                    s.search_time, s.decide_time, s.guard_time, s.apply_time
                )
                .expect("string write");
            }
            if let Some(doc_path) = doc_path {
                let tree = load_xml(doc_path)?;
                let transformed = transform_document(&dtd, &result, &tree)?;
                writeln!(out, "=== transformed document ===").expect("string write");
                out.push_str(&xnf_xml::to_string_pretty(&transformed));
                let report = verify_lossless(&dtd, &result, &tree)?;
                writeln!(
                    out,
                    "lossless round-trip: {}",
                    if report.ok() { "verified" } else { "FAILED" }
                )
                .expect("string write");
            }
        }
        "verify" => {
            let mut docs: usize = 100;
            let mut seed: u64 = 0xA1;
            let mut no_lint = false;
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--no-lint" => no_lint = true,
                    "--docs" => {
                        i += 1;
                        docs = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError::Usage("--docs needs a number".into()))?;
                    }
                    "--seed" => {
                        i += 1;
                        seed = args
                            .get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| CliError::Usage("--seed needs a number".into()))?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let [dtd_path, fds_path] = files[..] else {
                return Err(CliError::Usage(
                    "xnf-tool verify <dtd> <fds> [--docs <n>] [--seed <s>] [--no-lint]".into(),
                ));
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = read(fds_path)?;
            if !no_lint {
                preflight_lint(&dtd_src, Some(&fds_src))?;
            }
            let dtd = xnf_dtd::parse_dtd(&dtd_src)?;
            let sigma = XmlFdSet::parse(&fds_src)?;
            let config = xnf_oracle::SpecOracleConfig {
                docs,
                seed,
                ..xnf_oracle::SpecOracleConfig::default()
            };
            let report = xnf_oracle::check_spec(&dtd, &sigma, &config)?;
            writeln!(
                out,
                "verify {dtd_path} + {fds_path} ({} step(s))",
                report.steps
            )
            .expect("string write");
            out.push_str(&report.render());
            // A generation shortfall silently weakens the oracle, so it
            // fails the run just like a real finding does.
            let generated = report.docs_checked + report.docs_skipped;
            if !report.ok() || generated < report.docs_requested {
                out.push_str("verification FAILED\n");
                return Err(CliError::Verify(out));
            }
            writeln!(out, "verification PASSED").expect("string write");
        }
        "lint" => {
            let mut format_json = false;
            let mut files: Vec<&str> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--format" => {
                        i += 1;
                        match args.get(i).map(String::as_str) {
                            Some("json") => format_json = true,
                            Some("human") => format_json = false,
                            _ => {
                                return Err(CliError::Usage(
                                    "--format needs `json` or `human`".into(),
                                ))
                            }
                        }
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}`")));
                    }
                    file => files.push(file),
                }
                i += 1;
            }
            let (dtd_path, fds_path) = match files[..] {
                [dtd] => (dtd, None),
                [dtd, fds] => (dtd, Some(fds)),
                _ => {
                    return Err(CliError::Usage(
                        "xnf-tool lint <dtd> [<fds>] [--format json]".into(),
                    ));
                }
            };
            let dtd_src = read(dtd_path)?;
            let fds_src = fds_path.map(read).transpose()?;
            let report = xnf_lint::lint_spec(&dtd_src, fds_src.as_deref());
            let rendered = if format_json {
                let mut j = report.to_json();
                j.push('\n');
                j
            } else {
                report.render_human()
            };
            if report.has_errors() {
                return Err(CliError::Lint(rendered));
            }
            out.push_str(&rendered);
        }
        "keys" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool keys <dtd> <fds> <elem-path> [max-size]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let sigma = load_fds(&args[2])?;
            let target: xnf_dtd::Path = args[3]
                .parse()
                .map_err(|e: xnf_dtd::DtdError| CliError::Lib(e.to_string()))?;
            let max_size: usize = args
                .get(4)
                .map(|s| {
                    s.parse()
                        .map_err(|_| CliError::Usage("max-size must be a number".into()))
                })
                .transpose()?
                .unwrap_or(2);
            let keys = xnf_core::keys::find_keys(&dtd, &sigma, &target, max_size)?;
            if keys.is_empty() {
                writeln!(out, "no keys of size <= {max_size} for {target}").expect("string write");
            }
            for k in keys {
                writeln!(out, "{k}").expect("string write");
            }
        }
        "mvd" => {
            if args.len() < 4 {
                return Err(CliError::Usage(
                    "xnf-tool mvd <dtd> <xml> <mvd> [<mvd>…]".into(),
                ));
            }
            let dtd = load_dtd(&args[1])?;
            let tree = load_xml(&args[2])?;
            let paths = dtd.paths()?;
            for mvd_text in &args[3..] {
                let mvd: xnf_core::mvd::XmlMvd = mvd_text.parse()?;
                let ok = mvd.satisfied_by(&tree, &dtd, &paths)?;
                writeln!(out, "{}  {mvd}", if ok { "holds   " } else { "VIOLATED" })
                    .expect("string write");
            }
        }
        "" | "-h" | "--help" | "help" => {
            writeln!(out, "usage: {USAGE}").expect("string write");
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown command `{other}`; {USAGE}"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, content: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push("xnf-cli-tests");
        std::fs::create_dir_all(&p).unwrap();
        p.push(name);
        std::fs::write(&p, content).unwrap();
        p.to_string_lossy().into_owned()
    }

    const DBLP_DTD: &str = "<!ELEMENT db (conf*)>
<!ELEMENT conf (title, issue+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT issue (inproceedings+)>
<!ELEMENT inproceedings (author+, title, booktitle)>
<!ATTLIST inproceedings key CDATA #REQUIRED pages CDATA #REQUIRED year CDATA #REQUIRED>
<!ELEMENT author (#PCDATA)>
<!ELEMENT booktitle (#PCDATA)>";

    const DBLP_FDS: &str = "db.conf.title.S -> db.conf
db.conf.issue -> db.conf.issue.inproceedings.@year";

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args).expect("command succeeds")
    }

    #[test]
    fn parse_dtd_reports_class() {
        let dtd = write_tmp("d1.dtd", DBLP_DTD);
        let out = run_ok(&["parse-dtd", &dtd]);
        assert!(out.contains("class: simple"));
        assert!(out.contains("root: db"));
    }

    #[test]
    fn paths_lists_epaths() {
        let dtd = write_tmp("d2.dtd", DBLP_DTD);
        let out = run_ok(&["paths", &dtd]);
        assert!(out.contains("E db.conf.issue"));
        assert!(out.contains("  db.conf.issue.inproceedings.@year"));
    }

    #[test]
    fn is_xnf_detects_violation() {
        let dtd = write_tmp("d3.dtd", DBLP_DTD);
        let fds = write_tmp("d3.fds", DBLP_FDS);
        let out = run_ok(&["is-xnf", &dtd, &fds]);
        assert!(out.contains("in XNF: NO"));
        assert!(out.contains("@year"));
    }

    #[test]
    fn normalize_moves_year() {
        let dtd = write_tmp("d4.dtd", DBLP_DTD);
        let fds = write_tmp("d4.fds", DBLP_FDS);
        let out = run_ok(&["normalize", &dtd, &fds]);
        assert!(out.contains("MoveAttribute"));
        assert!(out.contains("<!ATTLIST issue\n    year CDATA #REQUIRED>"));
    }

    #[test]
    fn verify_runs_the_oracle_end_to_end() {
        let dtd = write_tmp("d7.dtd", DBLP_DTD);
        let fds = write_tmp("d7.fds", DBLP_FDS);
        let out = run_ok(&["verify", &dtd, &fds, "--docs", "10", "--seed", "3"]);
        assert!(out.contains("xnf output check: PASS"), "{out}");
        assert!(out.contains("verification PASSED"), "{out}");
    }

    #[test]
    fn verify_fails_on_a_generation_shortfall() {
        // An FD set whose repair loop cannot succeed from empty documents is
        // not constructible here, so force the shortfall path the simple
        // way: request more documents than max_attempts can ever yield by
        // pointing verify at a spec that needs none — then tamper with the
        // FD file so it no longer parses, exercising the error surface too.
        let dtd = write_tmp("d8.dtd", DBLP_DTD);
        let fds = write_tmp("d8.fds", "db.conf -> \n");
        let args: Vec<String> = ["verify", &dtd, &fds, "--no-lint"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_err());
    }

    #[test]
    fn normalize_stats_and_threads_flags() {
        let dtd = write_tmp("d4s.dtd", DBLP_DTD);
        let fds = write_tmp("d4s.fds", DBLP_FDS);
        let plain = run_ok(&["normalize", &dtd, &fds]);
        let out = run_ok(&["normalize", &dtd, &fds, "--stats", "--threads", "2"]);
        assert!(out.contains("=== stats ==="));
        assert!(out.contains("chase runs:"));
        assert!(out.contains("implication cache:"));
        assert!(out.contains("% hit rate"));
        // The stats block is purely additive, and threads never change
        // the revised design.
        assert!(out.starts_with(&plain));
        assert!(!plain.contains("=== stats ==="));
    }

    #[test]
    fn normalize_with_document_verifies_losslessness() {
        let dtd = write_tmp("d5.dtd", DBLP_DTD);
        let fds = write_tmp("d5.fds", DBLP_FDS);
        let xml = write_tmp(
            "d5.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1-10" year="2002">
                  <author>A</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["normalize", &dtd, &fds, "--doc", &xml]);
        assert!(out.contains("lossless round-trip: verified"));
        assert!(out.contains(r#"<issue year="2002">"#));
    }

    #[test]
    fn implies_prints_witness() {
        let dtd = write_tmp("d6.dtd", DBLP_DTD);
        let fds = write_tmp("d6.fds", DBLP_FDS);
        let out = run_ok(&[
            "implies",
            &dtd,
            &fds,
            "db.conf.issue -> db.conf.issue.inproceedings.@year",
            "db.conf.issue -> db.conf.issue.inproceedings",
        ]);
        assert!(out.contains("implied      db.conf.issue -> db.conf.issue.inproceedings.@year"));
        assert!(out.contains("NOT implied  db.conf.issue -> db.conf.issue.inproceedings"));
        assert!(out.contains("<db>") || out.contains("<db"));
    }

    #[test]
    fn check_reports_conformance_and_fds() {
        let dtd = write_tmp("d7.dtd", DBLP_DTD);
        let fds = write_tmp("d7.fds", DBLP_FDS);
        let xml = write_tmp(
            "d7.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1" year="2001">
                  <author>A</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
                <inproceedings key="p2" pages="2" year="2002">
                  <author>B</author><title>T2</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["check", &dtd, &xml, &fds]);
        assert!(out.contains("conforms: yes"));
        assert!(out.contains("VIOLATED"));
        assert!(out.contains("holds"));
    }

    #[test]
    fn tuples_prints_relation() {
        let dtd = write_tmp("d8.dtd", DBLP_DTD);
        let xml = write_tmp(
            "d8.xml",
            r#"<db><conf><title>PODS</title><issue>
                <inproceedings key="p1" pages="1" year="2001">
                  <author>A</author><author>B</author><title>T</title><booktitle>B</booktitle>
                </inproceedings>
              </issue></conf></db>"#,
        );
        let out = run_ok(&["tuples", &dtd, &xml]);
        assert!(out.contains("2 tuple(s)"));
        assert!(out.contains("db.conf.issue.inproceedings.@year"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            run(&["nonsense".to_string()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&["parse-dtd".to_string(), "/nonexistent".to_string()]),
            Err(CliError::Io(..))
        ));
        let bad = write_tmp("bad.dtd", "<!ELEMENT r (unclosed>");
        assert!(matches!(
            run(&["parse-dtd".to_string(), bad]),
            Err(CliError::Lib(_))
        ));
    }

    #[test]
    fn keys_discovers_relative_key() {
        let dtd = write_tmp(
            "d9.dtd",
            "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>",
        );
        let fds = write_tmp(
            "d9.fds",
            "courses.course.@cno -> courses.course
courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
        );
        let out = run_ok(&["keys", &dtd, &fds, "courses.course.taken_by.student", "2"]);
        assert!(out.contains(
            "{courses.course, courses.course.taken_by.student.@sno} -> courses.course.taken_by.student"
        ));
        let out = run_ok(&["keys", &dtd, &fds, "courses.course"]);
        assert!(out.contains("{courses.course.@cno} -> courses.course"));
    }

    #[test]
    fn mvd_command_checks_swap_semantics() {
        let dtd = write_tmp(
            "d10.dtd",
            "<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>",
        );
        let xml = write_tmp(
            "d10.xml",
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N1</name><grade>A</grade></student>
               <student sno="s2"><name>N2</name><grade>B</grade></student>
               </taken_by></course></courses>"#,
        );
        let out = run_ok(&[
            "mvd",
            &dtd,
            &xml,
            // Structural independence: title vs taken_by subtrees.
            "courses.course ->> courses.course.title.S | courses.course.taken_by.student.@sno",
            // Name and grade are tied through the student choice.
            "courses.course ->> courses.course.taken_by.student.name.S | courses.course.taken_by.student.grade.S",
        ]);
        assert!(out.contains("holds"));
        assert!(out.contains("VIOLATED"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run_ok(&["help"]);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn lint_clean_spec_succeeds() {
        let dtd = write_tmp("l1.dtd", DBLP_DTD);
        let fds = write_tmp("l1.fds", DBLP_FDS);
        let out = run_ok(&["lint", &dtd, &fds]);
        assert!(out.contains("lint: clean"), "{out}");
    }

    #[test]
    fn lint_dtd_alone_reports_warnings_without_failing() {
        let dtd = write_tmp(
            "l2.dtd",
            "<!ELEMENT r (a)>\n<!ELEMENT a EMPTY>\n<!ELEMENT orphan EMPTY>",
        );
        let out = run_ok(&["lint", &dtd]);
        assert!(out.contains("warning[XNF007]"), "{out}");
        assert!(out.contains("lint: 0 errors, 1 warning"), "{out}");
    }

    #[test]
    fn lint_errors_surface_as_lint_failure() {
        let dtd = write_tmp("l3.dtd", "<!ELEMENT r (ghost)>");
        let args = vec!["lint".to_string(), dtd];
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF004]"), "{report}");
                assert!(report.contains("lint: 1 error"), "{report}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn lint_format_json() {
        let dtd = write_tmp("l4.dtd", DBLP_DTD);
        let fds = write_tmp("l4.fds", DBLP_FDS);
        let out = run_ok(&["lint", &dtd, &fds, "--format", "json"]);
        assert!(out.contains("\"version\": 1"), "{out}");
        assert!(out.contains("\"clean\": true"), "{out}");
        // Errors render as JSON too when requested.
        let bad = write_tmp("l4bad.dtd", "<!ELEMENT r (ghost)>");
        match run(&["lint".to_string(), bad, "--format".into(), "json".into()]) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("\"code\": \"XNF004\""), "{report}");
                assert!(report.contains("\"clean\": false"), "{report}");
            }
            other => panic!("expected lint failure, got {other:?}"),
        }
    }

    #[test]
    fn normalize_preflight_blocks_bad_specs() {
        let dtd = write_tmp("l5.dtd", DBLP_DTD);
        let fds = write_tmp("l5.fds", "db.conf.ghost -> db.conf");
        let args: Vec<String> = ["normalize", &dtd, &fds]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF102]"), "{report}");
                assert!(report.contains("preflight lint failed"), "{report}");
            }
            other => panic!("expected preflight failure, got {other:?}"),
        }
        // --no-lint hands the spec straight to the engine, which rejects
        // the unknown path itself (a Lib error, not a Lint report).
        let mut args = args;
        args.push("--no-lint".into());
        assert!(matches!(run(&args), Err(CliError::Lib(_))));
    }

    #[test]
    fn is_xnf_preflight_blocks_and_no_lint_opts_out() {
        let dtd = write_tmp("l6.dtd", "<!ELEMENT r (ghost)>");
        let fds = write_tmp("l6.fds", "");
        let args: Vec<String> = ["is-xnf", &dtd, &fds]
            .iter()
            .map(|s| s.to_string())
            .collect();
        match run(&args) {
            Err(CliError::Lint(report)) => {
                assert!(report.contains("error[XNF004]"), "{report}")
            }
            other => panic!("expected preflight failure, got {other:?}"),
        }
        let mut args = args;
        args.push("--no-lint".into());
        assert!(matches!(run(&args), Err(CliError::Lib(_))));
    }

    #[test]
    fn preflight_is_silent_on_clean_specs() {
        let dtd = write_tmp("l7.dtd", DBLP_DTD);
        let fds = write_tmp("l7.fds", DBLP_FDS);
        let linted = run_ok(&["is-xnf", &dtd, &fds]);
        let skipped = run_ok(&["is-xnf", &dtd, &fds, "--no-lint"]);
        assert_eq!(linted, skipped, "preflight must not change clean output");
    }
}
