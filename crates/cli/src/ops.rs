//! Source-level operations shared by the `xnf-tool` subcommands and the
//! `xnf-serve` HTTP endpoints.
//!
//! Each function here is the *entire* body of one governed subcommand —
//! lint preflight, governed spec parse, engine call, rendering, and the
//! partial-result/exhaustion policy — operating on in-memory sources
//! instead of file paths. `xnf_cli::run` reads the files and delegates
//! here; `xnf-serve` delegates here straight from request bodies. One
//! code path, two front ends: a differential suite
//! (`tests/serve_differential.rs`) holds the two byte-identical.

use std::fmt::Write as _;

use crate::{preflight_lint, CliError};
use xnf_core::lossless::{transform_document, verify_lossless};
use xnf_core::{normalize, NormalizeOptions, XmlFdSet};
use xnf_dtd::Dtd;
use xnf_govern::{Budget, Recorder};

/// How a spec arrived, selecting the parser hardening profile:
/// [`Trust::Local`] applies [`xnf_dtd::ParseLimits::default`] (files the
/// operator chose to open), [`Trust::Network`] applies
/// [`xnf_dtd::ParseLimits::untrusted`] (request bodies from
/// authenticated but unknown clients).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trust {
    /// Local files: generous limits.
    Local,
    /// Network payloads: strict limits.
    Network,
}

impl Trust {
    fn dtd_limits(self) -> xnf_dtd::ParseLimits {
        match self {
            Trust::Local => xnf_dtd::ParseLimits::default(),
            Trust::Network => xnf_dtd::ParseLimits::untrusted(),
        }
    }

    fn xml_limits(self) -> xnf_xml::ParseLimits {
        match self {
            Trust::Local => xnf_xml::ParseLimits::default(),
            Trust::Network => xnf_xml::ParseLimits::untrusted(),
        }
    }
}

/// Parses a DTD under `budget` and the `trust` profile's limits.
///
/// # Errors
///
/// Syntax errors as [`CliError::Lib`], exhaustion as
/// [`CliError::Exhausted`].
pub fn parse_dtd(src: &str, trust: Trust, budget: &Budget) -> Result<Dtd, CliError> {
    Ok(xnf_dtd::parse_dtd_governed(
        src,
        trust.dtd_limits(),
        budget,
    )?)
}

/// Parses an XML document under `budget` and the `trust` profile's
/// limits.
///
/// # Errors
///
/// Syntax errors as [`CliError::Lib`], exhaustion as
/// [`CliError::Exhausted`].
pub fn parse_xml(src: &str, trust: Trust, budget: &Budget) -> Result<xnf_xml::XmlTree, CliError> {
    Ok(xnf_xml::parse_governed(src, trust.xml_limits(), budget)?)
}

/// Parses the `(D, Σ)` pair shared by every spec-level operation, with
/// the parse phase bracketed by a `spec.parse` span on the budget's
/// recorder.
fn parse_spec(
    dtd_src: &str,
    fds_src: &str,
    trust: Trust,
    budget: &Budget,
) -> Result<(Dtd, XmlFdSet), CliError> {
    let parse_span = budget.recorder().span("spec.parse", "parse");
    let dtd = parse_dtd(dtd_src, trust, budget)?;
    let sigma = XmlFdSet::parse(fds_src)?;
    drop(parse_span);
    Ok((dtd, sigma))
}

/// Options of [`is_xnf`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IsXnfOptions {
    /// Skip the lint preflight.
    pub no_lint: bool,
    /// Parser hardening profile (default [`Trust::Local`]).
    pub trust: Option<Trust>,
}

/// The `is-xnf` operation: lint preflight, parse, anomalous-FD search,
/// verdict rendering.
///
/// # Errors
///
/// Lint errors as [`CliError::Lint`], budget exhaustion as
/// [`CliError::Exhausted`], parse/engine failures as [`CliError::Lib`].
pub fn is_xnf(
    dtd_src: &str,
    fds_src: &str,
    options: &IsXnfOptions,
    budget: &Budget,
) -> Result<String, CliError> {
    let _op_span = budget.recorder().span("op.is-xnf", "op");
    let mut out = String::new();
    if !options.no_lint {
        preflight_lint(dtd_src, Some(fds_src))?;
    }
    let trust = options.trust.unwrap_or(Trust::Local);
    let (dtd, sigma) = parse_spec(dtd_src, fds_src, trust, budget)?;
    let violations = xnf_core::anomalous_fds_governed(&dtd, &sigma, budget)?;
    if violations.is_empty() {
        writeln!(out, "in XNF: yes")?;
    } else {
        writeln!(out, "in XNF: NO — {} anomalous FD(s):", violations.len())?;
        for v in violations {
            writeln!(out, "  {}", v.fd)?;
        }
    }
    Ok(out)
}

/// Options of [`normalize_spec`], mirroring the `normalize` subcommand
/// flags.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizeSpecOptions<'a> {
    /// `--sigma-only`: disable the implication oracle (Proposition 7).
    pub sigma_only: bool,
    /// `--threads`: anomalous-FD search workers (0 = all cores).
    pub threads: usize,
    /// `--stats`: append the run-statistics block.
    pub stats: bool,
    /// Skip the lint preflight.
    pub no_lint: bool,
    /// `--doc`: transform this document along the step trace and verify
    /// losslessness.
    pub doc_src: Option<&'a str>,
    /// Parser hardening profile (default [`Trust::Local`]).
    pub trust: Option<Trust>,
}

/// The `normalize` operation: lint preflight, parse, the Figure 4
/// algorithm, full rendering (steps, revised `(D, Σ)`, optional stats
/// and document transform).
///
/// Counter totals of the run are merged into `recorder` (the CLI's
/// `--metrics` sink and the server's shared recorder) before rendering.
///
/// # Errors
///
/// On budget exhaustion the rendered partial trace is returned as
/// [`CliError::Exhausted`] — the output is complete and well-formed but
/// must not read as success. Lint errors as [`CliError::Lint`],
/// parse/engine failures as [`CliError::Lib`].
pub fn normalize_spec(
    dtd_src: &str,
    fds_src: &str,
    options: &NormalizeSpecOptions<'_>,
    budget: &Budget,
    recorder: &Recorder,
) -> Result<String, CliError> {
    let _op_span = budget.recorder().span("op.normalize", "op");
    let mut out = String::new();
    if !options.no_lint {
        preflight_lint(dtd_src, Some(fds_src))?;
    }
    let trust = options.trust.unwrap_or(Trust::Local);
    let (dtd, sigma) = parse_spec(dtd_src, fds_src, trust, budget)?;
    let norm_options = NormalizeOptions {
        use_implication: !options.sigma_only,
        threads: options.threads,
        budget: budget.clone(),
        ..NormalizeOptions::default()
    };
    let result = normalize(&dtd, &sigma, &norm_options)?;
    recorder.merge(&result.stats.chase);
    recorder.add("normalize.iterations", result.stats.iterations);
    recorder.add("normalize.steps", result.steps.len() as u64);
    if let Some(e) = &result.exhausted {
        writeln!(out, "*** PARTIAL RESULT — budget exhausted: {e} ***")?;
        writeln!(
            out,
            "*** every step below is fully applied, but the design is NOT \
             certified XNF; rerun with a larger budget ***"
        )?;
    }
    writeln!(out, "=== steps ({}) ===", result.steps.len())?;
    for s in &result.steps {
        writeln!(out, "{s:?}")?;
    }
    writeln!(out, "=== revised DTD ===\n{}", result.dtd)?;
    writeln!(out, "=== revised FDs ===\n{}", result.sigma)?;
    if options.stats {
        let s = &result.stats;
        let c = &s.chase;
        let hits = c.get("cache.hits");
        let misses = c.get("cache.misses");
        let queries = hits + misses;
        let hit_rate = if queries == 0 {
            0.0
        } else {
            100.0 * hits as f64 / queries as f64
        };
        writeln!(out, "=== stats ===")?;
        writeln!(out, "iterations:        {}", s.iterations)?;
        writeln!(out, "chase runs:        {}", c.get("chase.runs"))?;
        writeln!(out, "rule firings:      {}", c.get("chase.rule_firings"))?;
        writeln!(out, "ternary flips:     {}", c.get("chase.ternary_flips"))?;
        writeln!(
            out,
            "implication cache: {hits} hits / {misses} misses ({hit_rate:.1}% hit rate)",
        )?;
        writeln!(
            out,
            "wall time:         search {:?}, decide {:?}, guards {:?}, apply {:?}",
            s.search_time, s.decide_time, s.guard_time, s.apply_time
        )?;
    }
    if let Some(doc_src) = options.doc_src {
        let tree = parse_xml(doc_src, trust, &Budget::unlimited())?;
        let transformed = transform_document(&dtd, &result, &tree)?;
        writeln!(out, "=== transformed document ===")?;
        out.push_str(&xnf_xml::to_string_pretty(&transformed));
        let report = verify_lossless(&dtd, &result, &tree)?;
        writeln!(
            out,
            "lossless round-trip: {}",
            if report.ok() { "verified" } else { "FAILED" }
        )?;
    }
    // A partial trace is still shown in full, but the run must not
    // look like a success: exit code 4 (HTTP 503), like every
    // exhaustion.
    if result.exhausted.is_some() {
        return Err(CliError::Exhausted(out));
    }
    Ok(out)
}

/// Output format of [`analyze_spec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeFormat {
    /// The sectioned human rendering.
    #[default]
    Human,
    /// The machine-readable JSON document (`docs/analyze.schema.json`).
    Json,
    /// The FD interaction graph in Graphviz DOT.
    Dot,
}

/// Structured result of [`analyze_spec`]: the rendering plus the fuel
/// forecast the service's admission controller feeds on.
#[derive(Debug, Clone)]
pub struct AnalyzeOutcome {
    /// The rendered analysis in the requested format.
    pub rendered: String,
    /// Predicted fuel cost of running `normalize` on this spec
    /// ([`xnf_core::CostEstimate::predicted_fuel`]).
    pub predicted_fuel: u64,
    /// Whether the prediction is tick-exact.
    pub fuel_exact: bool,
}

/// Options of [`analyze_spec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeSpecOptions {
    /// Output format.
    pub format: AnalyzeFormat,
    /// `--sigma-only`: disable the implication oracle.
    pub sigma_only: bool,
    /// Parser hardening profile (default [`Trust::Local`]).
    pub trust: Option<Trust>,
}

/// The `analyze` operation: parse and the static decomposition planner,
/// rendered in the requested format.
///
/// # Errors
///
/// A truncated analysis returns its rendering as
/// [`CliError::Exhausted`]; parse/engine failures as [`CliError::Lib`].
pub fn analyze_spec(
    dtd_src: &str,
    fds_src: &str,
    options: &AnalyzeSpecOptions,
    budget: &Budget,
) -> Result<AnalyzeOutcome, CliError> {
    let _op_span = budget.recorder().span("op.analyze", "op");
    let mut out = String::new();
    let trust = options.trust.unwrap_or(Trust::Local);
    let (dtd, sigma) = parse_spec(dtd_src, fds_src, trust, budget)?;
    let analyze_options = xnf_core::AnalyzeOptions {
        use_implication: !options.sigma_only,
        budget: budget.clone(),
        ..xnf_core::AnalyzeOptions::default()
    };
    let analysis = xnf_core::analyze(&dtd, &sigma, &analyze_options)?;
    match options.format {
        AnalyzeFormat::Json => out.push_str(&analysis.to_json()),
        AnalyzeFormat::Dot => out.push_str(&analysis.graph.to_dot()),
        AnalyzeFormat::Human => {
            if let Some(e) = &analysis.exhausted {
                writeln!(out, "*** PARTIAL ANALYSIS — budget exhausted: {e} ***")?;
            }
            writeln!(out, "=== anomalies ({}) ===", analysis.anomalies.len())?;
            for a in &analysis.anomalies {
                let resolved = match a.resolved_by_step {
                    Some(k) => format!("resolved by step {}", k + 1),
                    None => "unresolved in the predicted plan".to_string(),
                };
                writeln!(
                    out,
                    "{}\n  at {} — {} ({resolved})",
                    a.fd, a.path, a.predicted_move
                )?;
            }
            writeln!(
                out,
                "=== minimal cover ({} of {} input FD(s)) ===",
                analysis.cover.len(),
                sigma.len()
            )?;
            for fd in &analysis.cover {
                writeln!(out, "{fd}")?;
            }
            writeln!(
                out,
                "=== fd graph ({} node(s), {} feed edge(s), {} cluster(s)) ===",
                analysis.graph.nodes.len(),
                analysis.graph.feeds.len(),
                analysis.graph.clusters.len()
            )?;
            for cluster in &analysis.graph.clusters {
                if cluster.len() > 1 {
                    writeln!(out, "cluster of {}:", cluster.len())?;
                    for &ix in cluster {
                        writeln!(out, "  {}", analysis.graph.nodes[ix])?;
                    }
                }
            }
            writeln!(
                out,
                "=== dead attributes ({}) ===",
                analysis.dead_attributes.len()
            )?;
            for attr in &analysis.dead_attributes {
                writeln!(out, "{attr}")?;
            }
            writeln!(
                out,
                "=== predicted plan ({} step(s)) ===",
                analysis.plan.len()
            )?;
            for s in &analysis.plan {
                writeln!(out, "{s:?}")?;
            }
            let c = &analysis.cost;
            writeln!(out, "=== predicted cost ===")?;
            writeln!(out, "iterations:      {}", c.iterations)?;
            writeln!(out, "chase runs:      {}", c.chase_runs)?;
            writeln!(
                out,
                "cache:           {} lookups, {} hits, {} misses",
                c.cache_lookups, c.cache_hits, c.cache_misses
            )?;
            writeln!(
                out,
                "predicted fuel:  {} ({})",
                c.predicted_fuel,
                if c.fuel_exact { "exact" } else { "estimate" }
            )?;
            writeln!(out, "analyze fuel:    {}", c.analyze_fuel)?;
        }
    }
    // A partial analysis must not look like a success: exit 4 / 503.
    if analysis.exhausted.is_some() {
        return Err(CliError::Exhausted(out));
    }
    Ok(AnalyzeOutcome {
        rendered: out,
        predicted_fuel: analysis.cost.predicted_fuel,
        fuel_exact: analysis.cost.fuel_exact,
    })
}

/// Options of [`lint_sources`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LintSpecOptions {
    /// `--format json` instead of the human rendering.
    pub json: bool,
    /// `--predictive`: add the XNF2xx forecast tier (needs FDs).
    pub predictive: bool,
}

/// The `lint` operation over raw sources.
///
/// # Errors
///
/// A report with hard errors comes back as [`CliError::Lint`] carrying
/// the *rendered report* (the CLI exits 1, the server answers 200 with
/// the diagnostics as the product); exhaustion as
/// [`CliError::Exhausted`].
pub fn lint_sources(
    dtd_src: &str,
    fds_src: Option<&str>,
    options: &LintSpecOptions,
    budget: &Budget,
) -> Result<String, CliError> {
    let _op_span = budget.recorder().span("op.lint", "op");
    if options.predictive && fds_src.is_none() {
        return Err(CliError::Usage(
            "--predictive needs an FD file (the XNF2xx tier analyzes (D, \u{3a3}))".into(),
        ));
    }
    let report = match (options.predictive, fds_src) {
        (true, Some(fds)) => xnf_lint::lint_spec_predictive(dtd_src, fds, budget)?,
        _ => xnf_lint::lint_spec_governed(dtd_src, fds_src, budget)?,
    };
    let rendered = if options.json {
        let mut j = report.to_json();
        j.push('\n');
        j
    } else {
        report.render_human()
    };
    if report.has_errors() {
        return Err(CliError::Lint(rendered));
    }
    Ok(rendered)
}
