//! Observability identity: `--trace`/`--metrics` must never change what
//! the tool *says* — only add sidecar files. For each paper spec, the
//! stdout, stderr, and exit status of `normalize` and `is-xnf` must be
//! byte-identical between a plain run (disabled recorder) and a traced
//! run (enabled recorder exporting both sidecars). Any divergence means
//! a probe leaked into control flow or output formatting, which would
//! make every traced run unrepresentative of the run it claims to
//! describe.

use std::path::PathBuf;
use std::process::{Command, Output};

const SPECS: [&str; 3] = ["university", "dblp", "ebxml"];

fn workspace_file(rel: &str) -> String {
    // crates/cli → workspace root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn xnf_tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xnf-tool"))
        .args(args)
        .output()
        .expect("xnf-tool runs")
}

fn scratch(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("xnf-obs-identity-{}-{name}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn assert_identical(plain: &Output, traced: &Output, what: &str) {
    assert_eq!(
        plain.status.code(),
        traced.status.code(),
        "{what}: exit status diverged"
    );
    assert_eq!(
        plain.stdout,
        traced.stdout,
        "{what}: stdout diverged\nplain:\n{}\ntraced:\n{}",
        String::from_utf8_lossy(&plain.stdout),
        String::from_utf8_lossy(&traced.stdout)
    );
    assert_eq!(
        plain.stderr,
        traced.stderr,
        "{what}: stderr diverged\nplain:\n{}\ntraced:\n{}",
        String::from_utf8_lossy(&plain.stderr),
        String::from_utf8_lossy(&traced.stderr)
    );
}

#[test]
fn tracing_is_output_invisible_on_the_paper_specs() {
    for name in SPECS {
        let dtd = workspace_file(&format!("examples/specs/{name}.dtd"));
        let fds = workspace_file(&format!("examples/specs/{name}.fds"));
        for cmd in ["normalize", "is-xnf"] {
            let trace = scratch(&format!("{name}-{cmd}.trace.json"));
            let metrics = scratch(&format!("{name}-{cmd}.metrics.txt"));
            let plain = xnf_tool(&[cmd, &dtd, &fds]);
            let traced = xnf_tool(&[cmd, &dtd, &fds, "--trace", &trace, "--metrics", &metrics]);
            assert_identical(&plain, &traced, &format!("{cmd} {name}"));
            // The sidecars themselves must exist and be non-empty.
            for path in [&trace, &metrics] {
                let meta = std::fs::metadata(path).expect("sidecar written");
                assert!(meta.len() > 0, "{path} is empty");
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

#[test]
fn tracing_is_output_invisible_for_lint() {
    let dtd = workspace_file("examples/specs/university.dtd");
    let fds = workspace_file("examples/specs/university.fds");
    let metrics = scratch("lint.metrics.txt");
    let plain = xnf_tool(&["lint", &dtd, &fds]);
    let traced = xnf_tool(&["lint", &dtd, &fds, "--metrics", &metrics]);
    assert_identical(&plain, &traced, "lint university");
    assert!(std::fs::metadata(&metrics).expect("sidecar written").len() > 0);
    let _ = std::fs::remove_file(&metrics);
}
