//! Process-level tests of `xnf-tool verify`: the acceptance bar is that
//! all three paper specs verify at the default 100 generated documents
//! with exit code 0, and that failures surface through the exit code with
//! the report on stdout.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_file(rel: &str) -> String {
    // crates/cli → workspace root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn xnf_tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xnf-tool"))
        .args(args)
        .output()
        .expect("xnf-tool runs")
}

#[test]
fn verify_passes_on_all_paper_specs() {
    for name in ["university", "dblp", "ebxml"] {
        let dtd = workspace_file(&format!("examples/specs/{name}.dtd"));
        let fds = workspace_file(&format!("examples/specs/{name}.fds"));
        let out = xnf_tool(&["verify", &dtd, &fds]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{name}: exit {:?}\nstdout:\n{stdout}\nstderr:\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            stdout.contains("xnf output check: PASS"),
            "{name}: {stdout}"
        );
        assert!(stdout.contains("verification PASSED"), "{name}: {stdout}");
        // The default document budget is the acceptance bar (≥ 100).
        assert!(stdout.contains("/ 100 documents"), "{name}: {stdout}");
    }
}

#[test]
fn verify_exits_nonzero_with_report_on_stdout_for_bad_fds() {
    let dtd = workspace_file("examples/specs/university.dtd");
    let fds = workspace_file("examples/specs/dblp.fds"); // paths don't resolve
    let out = xnf_tool(&["verify", &dtd, &fds, "--no-lint"]);
    assert_eq!(out.status.code(), Some(1));
}
