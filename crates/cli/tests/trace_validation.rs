//! Trace-export validation at the process level: `normalize --trace`
//! on each paper spec must produce a Chrome-trace JSON document that a
//! viewer (`chrome://tracing`, Perfetto) would accept — structurally
//! well-formed JSON, every event carrying the complete-event required
//! fields — with at least one span for every instrumented phase the
//! spec exercises.

use std::path::PathBuf;
use std::process::Command;

fn workspace_file(rel: &str) -> String {
    // crates/cli → workspace root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

/// Minimal structural JSON check: balanced braces/brackets outside
/// strings, terminated strings. Not a full parser, but any document that
/// fails this is one no JSON viewer will load.
fn assert_well_formed_json(doc: &str, what: &str) {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in doc.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "{what}: unbalanced closing brace/bracket");
            }
            _ => {}
        }
    }
    assert!(!in_string, "{what}: unterminated string");
    assert_eq!(depth, 0, "{what}: unbalanced nesting");
}

fn trace_for(name: &str) -> String {
    let dtd = workspace_file(&format!("examples/specs/{name}.dtd"));
    let fds = workspace_file(&format!("examples/specs/{name}.fds"));
    let path = std::env::temp_dir()
        .join(format!(
            "xnf-trace-validation-{}-{name}.json",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned();
    let out = Command::new(env!("CARGO_BIN_EXE_xnf-tool"))
        .args(["normalize", &dtd, &fds, "--trace", &path])
        .output()
        .expect("xnf-tool runs");
    assert!(
        out.status.success(),
        "{name}: normalize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&path).expect("trace written");
    let _ = std::fs::remove_file(&path);
    doc
}

#[test]
fn traces_are_loadable_chrome_trace_json_with_all_phases() {
    for name in ["university", "dblp", "ebxml"] {
        let doc = trace_for(name);
        assert_well_formed_json(&doc, name);
        // The Chrome trace object form with complete ("X") events:
        // every event carries ph/ts/dur/name/cat (plus pid/tid for
        // lanes).
        assert!(
            doc.trim_start().starts_with("{\"traceEvents\":["),
            "{name}: not a traceEvents document"
        );
        let events = doc.matches("\"ph\":\"X\"").count();
        assert!(events > 0, "{name}: no complete events");
        for field in [
            "\"ts\":",
            "\"dur\":",
            "\"name\":",
            "\"cat\":",
            "\"pid\":",
            "\"tid\":",
        ] {
            assert_eq!(
                doc.matches(field).count(),
                events,
                "{name}: some event is missing {field}"
            );
        }
        // One span per instrumented phase every spec exercises: spec
        // and DTD parsing, the normalize loop, and XNF candidate tests.
        for span in [
            "\"name\":\"spec.parse\"",
            "\"name\":\"dtd.parse\"",
            "\"name\":\"normalize.iteration\"",
            "\"name\":\"xnf.candidate\"",
        ] {
            assert!(doc.contains(span), "{name}: missing span {span}");
        }
        // Specs that leave XNF violations to repair also run the chase
        // (ebxml is near-XNF and never needs an implication proof).
        if name != "ebxml" {
            assert!(
                doc.contains("\"name\":\"chase.run\""),
                "{name}: missing span chase.run"
            );
            assert!(
                doc.contains("\"name\":\"step."),
                "{name}: missing normalize step span"
            );
        }
    }
}
