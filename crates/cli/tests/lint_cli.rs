//! Process-level tests of `xnf-tool`'s lint surface: exit codes, output
//! streams, and the preflight behavior of `normalize` on a spec with hard
//! lint errors.

use std::path::PathBuf;
use std::process::{Command, Output};

fn workspace_file(rel: &str) -> String {
    // crates/cli → workspace root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push(rel);
    p.to_string_lossy().into_owned()
}

fn xnf_tool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xnf-tool"))
        .args(args)
        .output()
        .expect("xnf-tool runs")
}

fn write_tmp(name: &str, content: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push("xnf-lint-cli-tests");
    std::fs::create_dir_all(&p).unwrap();
    p.push(name);
    std::fs::write(&p, content).unwrap();
    p.to_string_lossy().into_owned()
}

#[test]
fn lint_clean_paper_specs_exit_zero() {
    for name in ["university", "dblp", "ebxml"] {
        let dtd = workspace_file(&format!("examples/specs/{name}.dtd"));
        let fds = workspace_file(&format!("examples/specs/{name}.fds"));
        let out = xnf_tool(&["lint", &dtd, &fds]);
        assert!(out.status.success(), "{name}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("lint: clean"), "{name}: {stdout}");
    }
}

#[test]
fn lint_errors_exit_nonzero_with_report_on_stdout() {
    let dtd = write_tmp("err.dtd", "<!ELEMENT r (ghost)>");
    let out = xnf_tool(&["lint", &dtd]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[XNF004]"), "{stdout}");
    assert!(stdout.contains("lint: 1 error"), "{stdout}");
    // The report is the product, not a tool failure: stderr stays quiet.
    assert!(
        out.stderr.is_empty(),
        "{:?}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn lint_json_exit_codes_match_human() {
    let dtd = write_tmp("err2.dtd", "<!ELEMENT r (ghost)>");
    let out = xnf_tool(&["lint", &dtd, "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"code\": \"XNF004\""), "{stdout}");
}

#[test]
fn normalize_aborts_on_hard_lint_errors_without_panicking() {
    let dtd = write_tmp(
        "pre.dtd",
        "<!ELEMENT db (conf*)>\n<!ELEMENT conf (title)>\n<!ELEMENT title (#PCDATA)>",
    );
    let fds = write_tmp("pre.fds", "db.conf.ghost -> db.conf");
    let out = xnf_tool(&["normalize", &dtd, &fds]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("error[XNF102]"), "{stdout}");
    assert!(stdout.contains("preflight lint failed"), "{stdout}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn is_xnf_preflight_aborts_and_no_lint_opts_out() {
    let dtd = write_tmp("pre2.dtd", "<!ELEMENT r (ghost)>");
    let fds = write_tmp("pre2.fds", "");
    let out = xnf_tool(&["is-xnf", &dtd, &fds]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("error[XNF004]"));
    // --no-lint skips preflight; the engine's own error goes to stderr.
    let out = xnf_tool(&["is-xnf", &dtd, &fds, "--no-lint"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("xnf-tool:"));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
}
