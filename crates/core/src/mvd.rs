//! Multivalued dependencies for XML — the paper's Section 8 direction
//! ("extending XNF … by taking into account multivalued dependencies
//! which are naturally induced by the tree structure"), made executable.
//!
//! Following the paper's own methodology for FDs, an XML MVD
//! `S₁ ↠ S₂ | S₃` is given semantics on the tree-tuple relation: for all
//! `t₁, t₂ ∈ tuples_D(T)` with `t₁.S₁ = t₂.S₁ ≠ ⊥`, there is a
//! `t₃ ∈ tuples_D(T)` with `t₃.S₁ = t₁.S₁`, `t₃.S₂ = t₁.S₂` and
//! `t₃.S₃ = t₂.S₃` — the swap semantics of relational MVDs, with the
//! ⊥-on-LHS guard of Section 4.
//!
//! The "naturally induced" part is [`structural_mvd`]: in any conforming
//! tree, two *independent* branch points below a common element path give
//! an MVD for free — e.g. in the DBLP DTD every `conf` node chooses its
//! `issue` independently of nothing else, while in a schema with two
//! starred children `a*, b*` under `e`, `e ↠ subtree(a) | subtree(b)`
//! holds in **every** conforming document. This is the XML analogue of
//! the fact that unnesting a nested relation yields MVDs.

use crate::tuple::TreeTuple;
use crate::tuples::tuples_d;
use crate::{CoreError, Result};
use std::collections::HashSet;
use xnf_dtd::{Dtd, Path, PathId, PathSet};
use xnf_xml::XmlTree;

/// An XML multivalued dependency `S₁ ↠ S₂ | S₃` (the third component is
/// explicit, as the complement is not canonical over paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlMvd {
    /// The determinant `S₁`.
    pub lhs: Vec<Path>,
    /// The dependent group `S₂`.
    pub dep: Vec<Path>,
    /// The independent group `S₃` (swapped against `S₂`).
    pub indep: Vec<Path>,
}

impl XmlMvd {
    /// Creates `lhs ↠ dep | indep`; all three sides must be non-empty.
    pub fn new(
        lhs: impl IntoIterator<Item = Path>,
        dep: impl IntoIterator<Item = Path>,
        indep: impl IntoIterator<Item = Path>,
    ) -> Result<XmlMvd> {
        let lhs: Vec<Path> = lhs.into_iter().collect();
        let dep: Vec<Path> = dep.into_iter().collect();
        let indep: Vec<Path> = indep.into_iter().collect();
        if lhs.is_empty() || dep.is_empty() || indep.is_empty() {
            return Err(CoreError::EmptyFd);
        }
        Ok(XmlMvd { lhs, dep, indep })
    }

    fn resolve_side(side: &[Path], paths: &PathSet) -> Result<Vec<PathId>> {
        side.iter()
            .map(|p| {
                paths
                    .resolve(p)
                    .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(p.to_string()).into())
            })
            .collect()
    }

    /// Whether `T` satisfies this MVD (swap semantics over
    /// `tuples_D(T)`).
    pub fn satisfied_by(&self, tree: &XmlTree, dtd: &Dtd, paths: &PathSet) -> Result<bool> {
        let lhs = Self::resolve_side(&self.lhs, paths)?;
        let dep = Self::resolve_side(&self.dep, paths)?;
        let indep = Self::resolve_side(&self.indep, paths)?;
        let tuples = tuples_d(tree, dtd, paths)?;
        Ok(check_mvd(&tuples, &lhs, &dep, &indep))
    }
}

impl std::str::FromStr for XmlMvd {
    type Err = CoreError;

    /// Parses `"p1, p2 ->> q1, q2 | r1, r2"`.
    fn from_str(s: &str) -> Result<XmlMvd> {
        let (lhs, rest) = s
            .split_once("->>")
            .ok_or_else(|| CoreError::BadFdPath(format!("`{s}` has no `->>`")))?;
        let (dep, indep) = rest
            .split_once('|')
            .ok_or_else(|| CoreError::BadFdPath(format!("`{s}` has no `|` separator")))?;
        let parse_side = |side: &str| -> Result<Vec<Path>> {
            side.split(',')
                .map(str::trim)
                .filter(|p| !p.is_empty())
                .map(|p| p.parse::<Path>().map_err(CoreError::from))
                .collect()
        };
        XmlMvd::new(parse_side(lhs)?, parse_side(dep)?, parse_side(indep)?)
    }
}

impl std::fmt::Display for XmlMvd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let join = |side: &[Path]| {
            side.iter()
                .map(Path::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{} ->> {} | {}",
            join(&self.lhs),
            join(&self.dep),
            join(&self.indep)
        )
    }
}

/// The swap check on a materialized tuple set.
fn check_mvd(tuples: &[TreeTuple], lhs: &[PathId], dep: &[PathId], indep: &[PathId]) -> bool {
    // Index the (lhs, dep, indep) projections for O(1) swap lookups.
    let project = |t: &TreeTuple, side: &[PathId]| -> Vec<xnf_relational::Value> {
        side.iter().map(|&p| t.get(p).clone()).collect()
    };
    let index: HashSet<(Vec<_>, Vec<_>, Vec<_>)> = tuples
        .iter()
        .map(|t| (project(t, lhs), project(t, dep), project(t, indep)))
        .collect();
    for t1 in tuples {
        if !t1.non_null_on(lhs) {
            continue;
        }
        for t2 in tuples {
            if !t1.agree_on(t2, lhs) {
                continue;
            }
            let swapped = (project(t1, lhs), project(t1, dep), project(t2, indep));
            if !index.contains(&swapped) {
                return false;
            }
        }
    }
    true
}

/// The structurally induced MVD at an element path `q` with two distinct
/// repeatable children `a` and `b`: `q ↠ subtree(a) | subtree(b)`.
///
/// Holds in *every* tree conforming to the DTD whenever the choices at
/// `a` and `b` are independent (distinct letters are always picked
/// independently by maximal tuples), which is exactly the tree-structure
/// phenomenon Section 8 refers to.
pub fn structural_mvd(paths: &PathSet, q: PathId, a: PathId, b: PathId) -> Result<XmlMvd> {
    if !paths.is_element_path(q) || !paths.is_element_path(a) || !paths.is_element_path(b) {
        return Err(CoreError::BadFdPath(
            "structural MVDs need element paths".to_string(),
        ));
    }
    if paths.parent(a) != Some(q) || paths.parent(b) != Some(q) || a == b {
        return Err(CoreError::BadFdPath(
            "a and b must be distinct children of q".to_string(),
        ));
    }
    let subtree = |root: PathId| -> Vec<Path> {
        paths
            .iter()
            .filter(|&p| paths.is_prefix(root, p))
            .map(|p| paths.path(p))
            .collect()
    };
    XmlMvd::new([paths.path(q)], subtree(a), subtree(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure_1a, university_dtd};

    #[test]
    fn structural_mvd_holds_on_any_conforming_tree() {
        // course has children title and taken_by: the tuple choices below
        // them are independent, so course ↠ title-side | student-side
        // holds on Figure 1(a) (and provably on every conforming tree).
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let course = paths.resolve_str("courses.course").unwrap();
        let title = paths.resolve_str("courses.course.title").unwrap();
        let taken_by = paths.resolve_str("courses.course.taken_by").unwrap();
        let mvd = structural_mvd(&paths, course, title, taken_by).unwrap();
        assert!(mvd.satisfied_by(&figure_1a(), &dtd, &paths).unwrap());
    }

    #[test]
    fn student_choices_are_independent_across_courses() {
        // courses ↠ subtree(course-1 pick) — here: the root determines
        // nothing, but picks below distinct course nodes swap freely:
        // state the MVD at the root between the course subtree and…
        // there is only one starred child, so instead check the swap
        // semantics detects a *violation* when the groups are NOT
        // independent: name.S vs grade.S under the same student pick are
        // tied through the student choice.
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let mvd = XmlMvd::new(
            ["courses.course".parse().unwrap()],
            ["courses.course.taken_by.student.name.S".parse().unwrap()],
            ["courses.course.taken_by.student.grade.S".parse().unwrap()],
        )
        .unwrap();
        // In Figure 1(a), csc200 has (Deere, A+) and (Smith, B-): the
        // swap (Deere, B-) is not a tuple → violated.
        assert!(!mvd.satisfied_by(&figure_1a(), &dtd, &paths).unwrap());
    }

    #[test]
    fn mvd_with_student_node_on_lhs_restores_independence() {
        // Adding the student node to the LHS pins the choice: trivially
        // satisfied (dep and indep are functions of the student).
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let mvd = XmlMvd::new(
            ["courses.course.taken_by.student".parse().unwrap()],
            ["courses.course.taken_by.student.name.S".parse().unwrap()],
            ["courses.course.taken_by.student.grade.S".parse().unwrap()],
        )
        .unwrap();
        assert!(mvd.satisfied_by(&figure_1a(), &dtd, &paths).unwrap());
    }

    #[test]
    fn display_and_validation() {
        let mvd = XmlMvd::new(
            ["a".parse::<Path>().unwrap()],
            ["a.b".parse().unwrap()],
            ["a.c".parse().unwrap()],
        )
        .unwrap();
        assert_eq!(mvd.to_string(), "a ->> a.b | a.c");
        assert!(XmlMvd::new(
            Vec::<Path>::new(),
            ["a.b".parse().unwrap()],
            ["a.c".parse().unwrap()]
        )
        .is_err());
    }

    #[test]
    fn mvd_parse_roundtrip() {
        let text = "courses.course ->> courses.course.title | courses.course.taken_by";
        let mvd: XmlMvd = text.parse().unwrap();
        assert_eq!(mvd.to_string(), text);
        assert!("a -> b".parse::<XmlMvd>().is_err());
        assert!("a ->> b".parse::<XmlMvd>().is_err()); // no | part
    }

    #[test]
    fn structural_mvd_rejects_non_children() {
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let root = paths.root();
        let title = paths.resolve_str("courses.course.title").unwrap();
        let taken_by = paths.resolve_str("courses.course.taken_by").unwrap();
        assert!(structural_mvd(&paths, root, title, taken_by).is_err());
        assert!(structural_mvd(&paths, root, title, title).is_err());
    }
}
