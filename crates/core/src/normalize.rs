//! The XNF decomposition algorithm — Section 6, Figure 4.
//!
//! Repeatedly eliminates anomalous FDs `S → p.@l` with the paper's two
//! transformations until the specification is in XNF:
//!
//! * **Moving attributes** (step 2): when some element path `q ∈ S`
//!   determines all of `S`, move `@l` from `last(p)` to `last(q)` —
//!   `D[p.@l := q.@m]`. This is the DBLP fix (`@year` moves from
//!   `inproceedings` to `issue`).
//! * **Creating element types** (step 3): for a `(D,Σ)`-minimal anomalous
//!   `{q, p₁.@l₁, …, pₙ.@lₙ} → p.@l`, create a fresh element `τ` under
//!   `last(q)` holding `@l`, with children `τ₁ … τₙ` holding the
//!   left-hand-side attributes — `D[p.@l := q.τ[τ₁.@l₁, …, τₙ.@lₙ, @l]]`.
//!   This is the university fix (the `info`/`number` structure).
//!
//! Preprocessing matches the paper's Section 6 assumptions: right-hand
//! sides are split to single paths, FDs whose paths end in `.S` are
//! rewritten by *folding* the text element into an attribute (the paper's
//! "`p.S` can always be replaced by a path of the form `p.@l`"), left-hand
//! sides with no element path gain the root (always free to add, since
//! `eq(root)` holds for any two tuples of one tree), and extra element
//! paths are eliminated with fresh id attributes, exactly as described in
//! the text.
//!
//! The Σ-transformations follow Proposition 7's formulation (rewriting the
//! *given* Σ plus the construction's new FDs, not the full closure), which
//! the paper proves still terminates in XNF; with
//! [`NormalizeOptions::use_implication`] (the default) step 2 and
//! minimality additionally use the chase-based implication oracle, as in
//! the full algorithm.

use crate::fd::{ResolvedFd, XmlFd, XmlFdSet};
use crate::implication::shard::{candidate_fragment, run_sharded, ShardPlan};
use crate::implication::{Chase, ChaseStatsSnapshot, Implication, ImplicationCache};
use crate::xnf::anomalous_candidate;
use crate::{CoreError, Result};
use std::time::{Duration, Instant};
use xnf_dtd::{ContentModel, Dtd, Path, PathId, PathSet, Regex, Step as PathStep};
use xnf_govern::{Budget, Exhausted};

/// Options controlling the decomposition algorithm.
#[derive(Debug, Clone)]
pub struct NormalizeOptions {
    /// Use the implication oracle for step 2 (moving attributes) and for
    /// `(D,Σ)`-minimality. Disabling yields the simplified algorithm of
    /// Proposition 7 (step 3 only, applied to FDs of Σ as written), which
    /// still terminates in XNF but may produce a coarser design.
    pub use_implication: bool,
    /// Safety cap on the number of transformation steps.
    pub max_steps: usize,
    /// Worker threads for the anomalous-FD candidate search: `1` (the
    /// default) runs sequentially, `0` uses
    /// `std::thread::available_parallelism()`, `n > 1` uses `n` workers.
    /// The output is byte-identical for every setting — candidates are
    /// independent pure implication queries merged deterministically.
    pub threads: usize,
    /// Resource budget (deadline / fuel / memory / cancellation) charged
    /// throughout the run. On exhaustion the algorithm degrades
    /// gracefully: [`normalize`] returns `Ok` with the partial step trace
    /// completed so far and [`NormalizeResult::exhausted`] set — never a
    /// half-applied step, never a design claimed to be in XNF. The
    /// default, [`Budget::unlimited`], is a zero-cost passthrough.
    pub budget: Budget,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            use_implication: true,
            max_steps: 1000,
            threads: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// Instrumentation accumulated over one [`normalize`] run (also see
/// the `--stats` flag of the CLI).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    /// Implication-engine counters (chase runs, rule firings, ternary
    /// flips, cache hits/misses) summed over all main-loop iterations.
    pub chase: ChaseStatsSnapshot,
    /// Main-loop iterations executed (including the final all-clear one).
    pub iterations: u64,
    /// Wall time in the anomalous-FD candidate search.
    pub search_time: Duration,
    /// Wall time deciding the action: the step-2 move checks and the
    /// `(D,Σ)`-minimality search.
    pub decide_time: Duration,
    /// Wall time materializing implied guards `X → parent(q)`.
    pub guard_time: Duration,
    /// Wall time applying transformations and snapshotting stages.
    pub apply_time: Duration,
}

/// One transformation applied by the algorithm, with enough detail to
/// replay it on documents (see [`crate::lossless`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Preprocessing: the text element at `elem_path` (content `#PCDATA`,
    /// multiplicity one) was folded into attribute `@attr` of its parent.
    FoldText {
        /// The element path that was folded (e.g. `….student.name`).
        elem_path: Path,
        /// The attribute added to the parent element (without `@`).
        attr: String,
    },
    /// Preprocessing: a fresh id attribute was added to an element type so
    /// that an FD's extra element path could be replaced by an attribute
    /// path (the `{q, q'} ∪ S → p` elimination of Section 6).
    AddId {
        /// The element path that received the id attribute.
        elem_path: Path,
        /// The fresh attribute name (without `@`).
        attr: String,
    },
    /// Step 2: `D[p.@l := q.@m]` — `@l` moved from `last(p)` to `last(q)`.
    MoveAttribute {
        /// The source attribute path `p.@l`.
        from: Path,
        /// The destination element path `q`.
        to: Path,
        /// The new attribute name `m` (without `@`).
        new_attr: String,
    },
    /// Step 3: `D[p.@l := q.τ[τ₁.@l₁, …, τₙ.@lₙ, @l]]`.
    CreateElement {
        /// The anchor element path `q`.
        q: Path,
        /// The left-hand-side attribute paths `p₁.@l₁ … pₙ.@lₙ`.
        lhs_attrs: Vec<Path>,
        /// The moved value path `p.@l`.
        value_attr: Path,
        /// The fresh element `τ` (child of `last(q)`).
        tau: String,
        /// The fresh children `τ₁ … τₙ`, aligned with `lhs_attrs`.
        tau_children: Vec<String>,
    },
}

/// The output of [`normalize`].
#[derive(Debug, Clone)]
pub struct NormalizeResult {
    /// The revised DTD, in XNF together with `sigma`.
    pub dtd: Dtd,
    /// The revised FD set.
    pub sigma: XmlFdSet,
    /// The transformations applied, in order.
    pub steps: Vec<Step>,
    /// `|AP(D, Σ)|` before each main-loop step and after the last —
    /// strictly decreasing by Proposition 6.
    pub ap_trace: Vec<usize>,
    /// Snapshots of `(D, Σ)` *after* each step in `steps` (parallel
    /// vectors), used to replay the transformations on documents
    /// ([`crate::lossless`]).
    pub stages: Vec<(Dtd, XmlFdSet)>,
    /// Instrumentation: implication-engine counters and per-phase wall
    /// time.
    pub stats: NormalizeStats,
    /// `Some` iff the run's resource budget ran out before the algorithm
    /// finished: the result is **non-final** — `dtd`/`sigma` reflect only
    /// the steps in `steps` (each individually applied in full and
    /// replayable on documents), and the design is *not* certified to be
    /// in XNF. `None` means the run completed normally.
    pub exhausted: Option<Exhausted>,
}

/// One main-loop decision of Figure 4 — what the algorithm will do next,
/// given the current `(D, Σ)`.
///
/// Produced by [`decide_iteration`], which is shared verbatim between
/// [`normalize`] (which applies the action) and [`crate::analyze`] (which
/// simulates it): both consumers run the *same* decision code over
/// equivalent oracle verdicts, which is what makes the predicted plan
/// byte-exact by construction rather than by parallel reimplementation.
pub(crate) enum Action {
    /// No anomalous FD remains: the design is in XNF.
    Done,
    /// Step 2: move the attribute at the first path to the element at the
    /// second (`D[p.@l := q.@m]`).
    Move(PathId, PathId),
    /// Step 3: create a fresh element for the minimal anomalous FD
    /// `lhs → target`.
    Create(Vec<PathId>, PathId),
    /// A chosen CreateElement involves a `.S` path (on the left, or as
    /// the minimized target): fold it first, then re-evaluate.
    Fold(Path),
}

/// Checkpoint-level accounting of one [`decide_iteration`] call: every
/// field counts budget charges the governed [`normalize`] loop makes for
/// the same decision, which is how [`crate::analyze`] predicts govern
/// fuel without running the loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DecideCost {
    /// `(FD, value path)` candidates enumerated by the anomalous-FD
    /// search — each charges `xnf.candidate` once.
    pub candidates: u64,
    /// Shards of the natural plan — each charges `chase.shard` once (the
    /// merge adds one `chase.merge` charge per iteration).
    pub shards: u64,
    /// `(D,Σ)`-minimality rounds — each charges `normalize.minimize`.
    pub minimize_rounds: u64,
    /// FDs visited by the guard pass — each charges `normalize.guard`.
    /// Zero when the action is [`Action::Done`] (no guard pass runs).
    pub guard_checks: u64,
}

/// The decide phase of one Figure 4 iteration: search for anomalous FDs,
/// push the `|AP|` sample onto `ap_trace`, pick the action (step 2 move /
/// step 3 create / fold / done) and materialize the implied guards.
///
/// Extracted from [`normalize`]'s main loop so that [`crate::analyze`]
/// can drive the identical decision logic against its own incremental
/// oracle. Mutates nothing but `stats`/`ap_trace`; the caller owns
/// applying the action. Exhaustion mid-decide leaves a pushed AP sample
/// in `ap_trace` (matching the historical partial-trace shape).
pub(crate) fn decide_iteration<O: Implication + Sync>(
    oracle: &O,
    paths: &PathSet,
    resolved: &[ResolvedFd],
    options: &NormalizeOptions,
    stats: &mut NormalizeStats,
    ap_trace: &mut Vec<usize>,
) -> std::result::Result<(Action, Vec<XmlFd>, DecideCost), Exhausted> {
    let mut cost = DecideCost::default();
    {
        // Cost bookkeeping only: mirror the candidate enumeration and the
        // natural shard plan of `find_anomalous_fd` (which recomputes them
        // internally) so the analyze cost model sees the exact charge
        // counts of the sweep below.
        let keys: Vec<Option<PathId>> = resolved
            .iter()
            .flat_map(|fd| fd.rhs.iter().map(|&q| candidate_fragment(paths, fd, q)))
            .collect();
        cost.candidates = keys.len() as u64;
        cost.shards = ShardPlan::new(&keys).shards().len() as u64;
    }
    let search_start = Instant::now();
    let search_span = options
        .budget
        .recorder()
        .span("normalize.search", "normalize");
    let violations = find_anomalous_fd(oracle, paths, resolved, options.threads, &options.budget);
    drop(search_span);
    stats.search_time += search_start.elapsed();
    let violations = violations?;
    let ap: std::collections::BTreeSet<_> = violations.iter().map(|(_, p)| *p).collect();
    ap_trace.push(ap.len());
    let decide_start = Instant::now();
    let decide_span = options
        .budget
        .recorder()
        .span("normalize.decide", "normalize");
    let action = if violations.is_empty() {
        Action::Done
    } else {
        // Step 2: moving attributes, if some q ∈ S determines S.
        let mut action = None;
        if options.use_implication {
            'outer: for (fd, q_attr) in &violations {
                for &q in &fd.lhs {
                    if !paths.is_element_path(q) {
                        continue;
                    }
                    let q_to_s = crate::fd::ResolvedFd::from_ids([q], fd.lhs.iter().copied());
                    // Also require q → p.@l itself: under the null
                    // semantics of Section 4, q → S and S → p.@l
                    // do *not* compose when S can be ⊥ while p.@l
                    // is not — the moved attribute's value would
                    // then be ill-defined per q-node. (On the
                    // paper's examples, where q lies on p's own
                    // path, the conditions coincide.)
                    let q_to_attr = crate::fd::ResolvedFd::from_ids([q], [*q_attr]);
                    // The move must leave *every* FD of Σ with
                    // this RHS non-anomalous: after
                    // `D[p.@l := q.@m]` each reads `S' → q.@m`,
                    // whose XNF guard is `S' → q`. This covers
                    // both the currently anomalous ones (the
                    // anomaly must not simply follow the
                    // attribute, or |AP| would not shrink —
                    // Proposition 6) and the currently guarded
                    // ones (whose old guard `S' → p` becomes
                    // irrelevant at the new home).
                    let mut resolves_all = true;
                    for other in resolved.iter().filter(|other| other.rhs.contains(q_attr)) {
                        let to_q = crate::fd::ResolvedFd::from_ids(other.lhs.iter().copied(), [q]);
                        if !oracle.try_implies(resolved, &to_q)? {
                            resolves_all = false;
                            break;
                        }
                    }
                    if resolves_all
                        && oracle.try_implies(resolved, &q_to_s)?
                        && oracle.try_implies(resolved, &q_to_attr)?
                    {
                        action = Some(Action::Move(*q_attr, q));
                        break 'outer;
                    }
                }
            }
        }
        match action {
            Some(action) => action,
            None => {
                // Step 3: a (D,Σ)-minimal anomalous FD.
                let (fd, q_attr) = violations[0].clone();
                let minimal = if options.use_implication {
                    minimize(
                        oracle,
                        paths,
                        resolved,
                        fd.lhs.clone(),
                        q_attr,
                        &options.budget,
                        &mut cost.minimize_rounds,
                    )?
                } else {
                    (fd.lhs.clone(), q_attr)
                };
                // The construction needs attribute paths; fold any
                // remaining `.S` path first.
                let s_path = minimal
                    .0
                    .iter()
                    .copied()
                    .chain([minimal.1])
                    .find(|&p| matches!(paths.step(p), PathStep::Text));
                match s_path {
                    Some(p) => Action::Fold(paths.path(p)),
                    None => Action::Create(minimal.0, minimal.1),
                }
            }
        }
    };
    drop(decide_span);
    stats.decide_time += decide_start.elapsed();
    // Materialize the *guards* of Σ before transforming: for
    // every FD `X → q` with a value-path RHS whose node guard
    // `X → parent(q)` is currently implied, add the guard
    // explicitly. Guards are in `(D,Σ)⁺`, so this never changes
    // the constraint semantics — but it keeps shadow implications
    // alive across the Σ-based step rewriting (the closure-based
    // paper version keeps them implicitly), preserving
    // Proposition 6's strict decrease of the anomalous-path set.
    let guard_start = Instant::now();
    let guard_span = options
        .budget
        .recorder()
        .span("normalize.guards", "normalize");
    let guards = if matches!(action, Action::Done) {
        Vec::new()
    } else {
        cost.guard_checks = resolved.len() as u64;
        let mut guards: Vec<XmlFd> = Vec::new();
        for fd in resolved {
            options.budget.checkpoint("normalize.guard")?;
            for &q in &fd.rhs {
                if paths.is_element_path(q) {
                    continue;
                }
                let parent = paths.parent(q).expect("value paths have parents");
                let guard = crate::fd::ResolvedFd::from_ids(fd.lhs.iter().copied(), [parent]);
                if oracle.try_is_trivial(&guard)? {
                    continue;
                }
                if oracle.try_implies(resolved, &guard)? {
                    guards.push(guard.to_fd(paths));
                }
            }
        }
        guards
    };
    drop(guard_span);
    stats.guard_time += guard_start.elapsed();
    Ok((action, guards, cost))
}

/// Runs the XNF decomposition algorithm of Figure 4.
pub fn normalize(
    dtd: &Dtd,
    sigma: &XmlFdSet,
    options: &NormalizeOptions,
) -> Result<NormalizeResult> {
    if dtd.is_recursive() {
        return Err(CoreError::RecursiveNormalization);
    }
    let mut dtd = dtd.clone();
    let mut steps = Vec::new();
    let mut stages: Vec<(Dtd, XmlFdSet)> = Vec::new();

    // ---------------- Preprocessing ----------------
    // Split right-hand sides.
    let mut fds: Vec<XmlFd> = sigma.iter().flat_map(XmlFd::split_rhs).collect();
    // Fold `.S` paths into attributes.
    {
        let before = steps.len();
        fold_text_paths(&mut dtd, &mut fds, &mut steps)?;
        for _ in before..steps.len() {
            // Preprocessing snapshots all share the post-preprocessing
            // state for Σ; the DTD is exact per step only for the last one,
            // which is all the replay needs (earlier fold steps commute).
            stages.push((dtd.clone(), XmlFdSet::from_fds(fds.clone())));
        }
        let before = steps.len();
        // Ensure each LHS has exactly one element path (add the root;
        // replace extras by fresh id attributes).
        fix_lhs_element_paths(&mut dtd, &mut fds, &mut steps)?;
        for _ in before..steps.len() {
            stages.push((dtd.clone(), XmlFdSet::from_fds(fds.clone())));
        }
    }
    let mut sigma = XmlFdSet::from_fds(fds);

    // ---------------- Main loop (Figure 4) ----------------
    let mut ap_trace = Vec::new();
    let mut stats = NormalizeStats::default();
    let mut exhausted_out: Option<Exhausted> = None;
    for _ in 0..options.max_steps {
        // Graceful degradation: exhaustion anywhere in the decide phase
        // abandons only the *current* (not yet applied) iteration. The
        // `(D, Σ)` pair and the step trace stay at the last fully applied
        // step, so the partial result below is consistent and replayable.
        if let Err(e) = options.budget.checkpoint("normalize.iteration") {
            exhausted_out = Some(e);
            break;
        }
        let _iter_span = options
            .budget
            .recorder()
            .span("normalize.iteration", "normalize");
        let paths = dtd.paths()?;
        stats.iterations += 1;
        // Decide the next action *and* the guards to materialize with the
        // chase borrowing the DTD immutably; apply both afterwards. One
        // chase + one memo serve the whole iteration: the guard pass
        // re-asks exactly the `S → parent(q)` queries of the candidate
        // search, so with the cache those are pure hits instead of fresh
        // chase runs against a rebuilt engine.
        let decided = {
            let chase = Chase::new(&dtd, &paths).with_budget(options.budget.clone());
            let resolved = sigma.resolve(&paths)?;
            let oracle = ImplicationCache::new(&chase, &resolved);
            let decided = decide_iteration(
                &oracle,
                &paths,
                &resolved,
                options,
                &mut stats,
                &mut ap_trace,
            );
            stats.chase += chase.stats().snapshot();
            decided
        };
        let (action, guards, _cost) = match decided {
            Ok(decided) => decided,
            Err(e) => {
                exhausted_out = Some(e);
                break;
            }
        };
        // Last checkpoint before the iteration mutates anything: past this
        // point the chosen action and its guards are applied atomically.
        if let Err(e) = options.budget.checkpoint("normalize.apply") {
            exhausted_out = Some(e);
            break;
        }
        for g in guards {
            sigma.push(g);
        }
        let apply_start = Instant::now();
        // One span per applied step, named by its kind, so the trace shows
        // the normalize timeline step by step.
        let _apply_span = options.budget.recorder().span(
            match &action {
                Action::Done => "normalize.done",
                Action::Move(..) => "step.move_attribute",
                Action::Create(..) => "step.create_element",
                Action::Fold(..) => "step.fold_text",
            },
            "normalize",
        );
        match action {
            Action::Done => {
                return Ok(NormalizeResult {
                    dtd,
                    sigma,
                    steps,
                    ap_trace,
                    stages,
                    stats,
                    exhausted: None,
                });
            }
            Action::Move(q_attr, q) => {
                apply_move(&mut dtd, &mut sigma, &paths, q_attr, q, &mut steps)?;
            }
            Action::Create(lhs, target) => {
                apply_create(&mut dtd, &mut sigma, &paths, &lhs, target, &mut steps)?;
            }
            Action::Fold(s_path) => {
                let mut fds: Vec<XmlFd> = sigma.iter().cloned().collect();
                fold_one_text_path(&mut dtd, &mut fds, &s_path, &mut steps)?;
                sigma = XmlFdSet::from_fds(fds);
                // A fold does not resolve a violation; drop the AP sample
                // so the Proposition 6 strict-decrease trace only records
                // real steps.
                ap_trace.pop();
            }
        }
        stages.push((dtd.clone(), sigma.clone()));
        stats.apply_time += apply_start.elapsed();
    }
    if let Some(e) = exhausted_out {
        // Graceful degradation: every step in `steps` was applied in full
        // and `dtd`/`sigma`/`stages` are consistent with it — only the
        // XNF certificate is missing. `exhausted` marks the result
        // non-final; rerunning with a larger budget converges to the
        // ungoverned output (the algorithm is deterministic and each
        // prefix of steps is a valid starting point).
        return Ok(NormalizeResult {
            dtd,
            sigma,
            steps,
            ap_trace,
            stages,
            stats,
            exhausted: Some(e),
        });
    }
    Err(CoreError::TooManySteps)
}

/// The anomalous-FD candidate search driver, shared by the normalization
/// loop above and the XNF checker ([`crate::xnf::anomalous_fds`]).
///
/// Uses the natural shard plan (one shard per root-child fragment plus a
/// frontier shard); see [`find_anomalous_fd_sharded`].
pub(crate) fn find_anomalous_fd<O: Implication + Sync>(
    oracle: &O,
    paths: &PathSet,
    sigma: &[ResolvedFd],
    threads: usize,
    budget: &Budget,
) -> std::result::Result<Vec<(ResolvedFd, PathId)>, Exhausted> {
    find_anomalous_fd_sharded(oracle, paths, sigma, None, threads, budget)
}

/// Sharded anomalous-FD search: enumerates the `(FD, value path)`
/// candidates of Σ, partitions them by root-child fragment
/// ([`candidate_fragment`]), optionally coalesces to `shards` scheduling
/// units, and fans the shards across `threads` work-stealing workers
/// ([`run_sharded`]; `0` = all cores, `<= 1` runs on the calling thread
/// but still through the shard driver, so the `chase.shard`/`chase.merge`
/// checkpoints fire on every configuration).
///
/// The output is **byte-identical** for every `(shards, threads)` pair:
/// each candidate verdict is an independent pure implication query, the
/// driver restores enumeration order before returning, and the final
/// sort (stable, on `(path, lhs)`) + dedup therefore sees the same
/// sequence as the sequential sweep.
pub(crate) fn find_anomalous_fd_sharded<O: Implication + Sync>(
    oracle: &O,
    paths: &PathSet,
    sigma: &[ResolvedFd],
    shards: Option<usize>,
    threads: usize,
    budget: &Budget,
) -> std::result::Result<Vec<(ResolvedFd, PathId)>, Exhausted> {
    let items: Vec<(&ResolvedFd, PathId)> = sigma
        .iter()
        .flat_map(|fd| fd.rhs.iter().map(move |&q| (fd, q)))
        .collect();
    let keys: Vec<Option<PathId>> = items
        .iter()
        .map(|&(fd, q)| candidate_fragment(paths, fd, q))
        .collect();
    let mut plan = ShardPlan::new(&keys);
    if let Some(n) = shards {
        plan = plan.coalesced(n);
    }
    let hits = run_sharded(&plan, threads, budget, |i| {
        let (fd, q) = items[i];
        anomalous_candidate(oracle, paths, sigma, fd, q, budget)
    })?;
    let mut out: Vec<(ResolvedFd, PathId)> = hits.into_iter().map(|(_, hit)| hit).collect();
    out.sort_by(|a, b| (a.1, &a.0.lhs).cmp(&(b.1, &b.0.lhs)));
    out.dedup();
    Ok(out)
}

/// Finds a `(D,Σ)`-minimal anomalous FD, starting from `lhs → target`
/// (Section 6): repeatedly looks for a *smaller* anomalous FD whose
/// left-hand side is drawn from the current FD's paths (at most one
/// element path) and whose right-hand side is one of the attribute paths
/// involved.
fn minimize(
    oracle: &impl Implication,
    paths: &PathSet,
    sigma: &[crate::fd::ResolvedFd],
    mut lhs: Vec<xnf_dtd::PathId>,
    mut target: xnf_dtd::PathId,
    budget: &Budget,
    rounds: &mut u64,
) -> std::result::Result<(Vec<xnf_dtd::PathId>, xnf_dtd::PathId), Exhausted> {
    use xnf_dtd::PathId;
    let _span = budget.recorder().span("normalize.minimize", "normalize");
    // Each round strictly shrinks or rewrites the candidate; the cap
    // guards against pathological ping-pong between same-size FDs.
    for _ in 0..64 {
        *rounds += 1;
        budget.checkpoint("normalize.minimize")?;
        let elem_paths: Vec<PathId> = lhs
            .iter()
            .copied()
            .filter(|&p| paths.is_element_path(p))
            .collect();
        let attr_lhs: Vec<PathId> = lhs
            .iter()
            .copied()
            .filter(|&p| !paths.is_element_path(p))
            .collect();
        let n = attr_lhs.len();
        // Base set: element paths, the parents of the LHS attributes, and
        // all attribute paths including the target.
        let mut base: Vec<PathId> = Vec::new();
        base.extend(elem_paths.iter().copied());
        for &a in &attr_lhs {
            if let Some(parent) = paths.parent(a) {
                if paths.is_element_path(parent) && !base.contains(&parent) {
                    base.push(parent);
                }
            }
        }
        let mut attr_pool: Vec<PathId> = attr_lhs.clone();
        attr_pool.push(target);
        // Search candidate smaller FDs S' → a with |S'| ≤ n, at most one
        // element path in S'.
        let mut found: Option<(Vec<PathId>, PathId)> = None;
        'search: for &a in &attr_pool {
            let elem_options: Vec<Option<PathId>> = std::iter::once(None)
                .chain(base.iter().copied().map(Some))
                .collect();
            let others: Vec<PathId> = attr_pool.iter().copied().filter(|&x| x != a).collect();
            let m = others.len();
            for elem in &elem_options {
                for mask in 0u32..(1u32 << m) {
                    let mut cand: Vec<PathId> = Vec::new();
                    if let Some(e) = elem {
                        cand.push(*e);
                    }
                    for (bit, &o) in others.iter().enumerate() {
                        if mask & (1 << bit) != 0 {
                            cand.push(o);
                        }
                    }
                    if cand.is_empty() || cand.len() > n {
                        continue;
                    }
                    // Skip the FD we started from.
                    let mut c_sorted = cand.clone();
                    c_sorted.sort();
                    let mut cur_sorted = lhs.clone();
                    cur_sorted.sort();
                    if c_sorted == cur_sorted && a == target {
                        continue;
                    }
                    let fd = crate::fd::ResolvedFd::from_ids(cand.clone(), [a]);
                    if oracle.try_is_trivial(&fd)? || !oracle.try_implies(sigma, &fd)? {
                        continue;
                    }
                    let parent = paths.parent(a).expect("attribute paths have parents");
                    let node_fd = crate::fd::ResolvedFd::from_ids(cand.clone(), [parent]);
                    if oracle.try_implies(sigma, &node_fd)? {
                        continue; // not anomalous
                    }
                    found = Some((cand, a));
                    break 'search;
                }
            }
        }
        match found {
            Some((cand, a)) => {
                lhs = cand;
                target = a;
            }
            None => return Ok((lhs, target)),
        }
    }
    Ok((lhs, target))
}

/// Applies `D[p.@l := q.@m]` and rewrites Σ.
pub(crate) fn apply_move(
    dtd: &mut Dtd,
    sigma: &mut XmlFdSet,
    paths: &PathSet,
    p_attr: xnf_dtd::PathId,
    q: xnf_dtd::PathId,
    steps: &mut Vec<Step>,
) -> Result<()> {
    let attr_name = match paths.step(p_attr) {
        PathStep::Attr(a) => a.to_string(),
        _ => unreachable!("anomalous paths are attribute paths after preprocessing"),
    };
    let p = paths.parent(p_attr).expect("attribute path has a parent");
    let p_elem = paths.last_elem(p).expect("parent is an element path");
    let q_elem = paths.last_elem(q).expect("q is an element path");
    let new_attr = dtd.fresh_attr_name(q_elem, &attr_name);
    dtd.remove_attribute(p_elem, &attr_name);
    dtd.add_attribute(q_elem, &new_attr)?;

    let from = paths.path(p_attr);
    let to = paths.path(q);
    let new_path = to.child_attr(new_attr.as_str());
    // Rewrite every occurrence of p.@l to q.@m; drop FDs that became
    // trivial q → q.@m.
    let rewritten: Vec<XmlFd> = sigma
        .iter()
        .filter_map(|fd| {
            let map = |side: &[Path]| -> Vec<Path> {
                side.iter()
                    .map(|pp| {
                        if *pp == from {
                            new_path.clone()
                        } else {
                            pp.clone()
                        }
                    })
                    .collect()
            };
            let lhs = map(fd.lhs());
            let rhs = map(fd.rhs());
            if lhs == vec![to.clone()] && rhs == vec![new_path.clone()] {
                return None; // the now-trivial q → q.@m
            }
            Some(XmlFd::new(lhs, rhs).expect("sides stay non-empty"))
        })
        .collect();
    *sigma = XmlFdSet::from_fds(rewritten);
    steps.push(Step::MoveAttribute { from, to, new_attr });
    Ok(())
}

/// Applies `D[p.@l := q.τ[τ₁.@l₁, …, τₙ.@lₙ, @l]]` and builds Σ'.
pub(crate) fn apply_create(
    dtd: &mut Dtd,
    sigma: &mut XmlFdSet,
    paths: &PathSet,
    lhs: &[xnf_dtd::PathId],
    p_attr: xnf_dtd::PathId,
    steps: &mut Vec<Step>,
) -> Result<()> {
    use xnf_dtd::PathId;
    // Decompose the left-hand side into q (element path; default the
    // root) and attribute paths.
    let q = lhs
        .iter()
        .copied()
        .find(|&p| paths.is_element_path(p))
        .unwrap_or_else(|| paths.root());
    let attrs: Vec<PathId> = lhs
        .iter()
        .copied()
        .filter(|&p| !paths.is_element_path(p))
        .collect();

    let value_attr_name = match paths.step(p_attr) {
        PathStep::Attr(a) => a.to_string(),
        _ => unreachable!("anomalous paths are attribute paths after preprocessing"),
    };
    let p = paths.parent(p_attr).expect("attribute path has a parent");
    let p_elem = paths.last_elem(p).expect("parent is an element path");
    let q_elem = paths.last_elem(q).expect("q is an element path");

    // Fresh names: τ and τ₁…τₙ.
    let tau = dtd.fresh_element_name("info");
    // Declare τᵢ leaves first (content EMPTY, attribute @lᵢ).
    let mut tau_children: Vec<String> = Vec::new();
    let mut attr_names: Vec<String> = Vec::new();
    for &a in &attrs {
        let l_i = match paths.step(a) {
            PathStep::Attr(n) => n.to_string(),
            _ => unreachable!("filtered to attribute paths"),
        };
        let tau_i = dtd.fresh_element_name(&format!("{l_i}_ref"));
        dtd.declare_element(&tau_i, ContentModel::Regex(Regex::Epsilon), [l_i.clone()])?;
        tau_children.push(tau_i);
        attr_names.push(l_i);
    }
    // Declare τ with P(τ) = τ₁*, …, τₙ* and attribute @l.
    let tau_content = Regex::seq(tau_children.iter().map(|t| Regex::elem(t.as_str()).star()));
    dtd.declare_element(
        &tau,
        ContentModel::Regex(tau_content),
        [value_attr_name.clone()],
    )?;
    // P'(last(q)) = P(last(q)), τ*.
    let q_content = match dtd.content(q_elem) {
        ContentModel::Regex(re) => re.clone(),
        ContentModel::Text => {
            return Err(CoreError::BadFdPath(format!(
                "anchor element `{}` has #PCDATA content and cannot gain children",
                dtd.name(q_elem)
            )))
        }
    };
    dtd.set_content(
        q_elem,
        ContentModel::Regex(Regex::seq([q_content, Regex::elem(tau.as_str()).star()])),
    )?;
    // Remove @l from last(p).
    dtd.remove_attribute(p_elem, &value_attr_name);

    // ---- Σ' ----
    let q_path = paths.path(q);
    let tau_path = q_path.child_elem(tau.as_str());
    let value_path = paths.path(p_attr);
    let new_value_path = tau_path.child_attr(value_attr_name.as_str());
    let old_attr_paths: Vec<Path> = attrs.iter().map(|&a| paths.path(a)).collect();
    let old_parent_paths: Vec<Path> = attrs
        .iter()
        .map(|&a| paths.path(paths.parent(a).expect("attrs have parents")))
        .collect();
    let new_child_paths: Vec<Path> = tau_children
        .iter()
        .map(|t| tau_path.child_elem(t.as_str()))
        .collect();
    let new_attr_paths: Vec<Path> = new_child_paths
        .iter()
        .zip(&attr_names)
        .map(|(c, a)| c.child_attr(a.as_str()))
        .collect();

    // The transfer map of the construction's rule 2.
    let transfer = |pp: &Path| -> Option<Path> {
        if *pp == value_path {
            return Some(new_value_path.clone());
        }
        for (i, old) in old_attr_paths.iter().enumerate() {
            if pp == old {
                return Some(new_attr_paths[i].clone());
            }
        }
        for (i, old) in old_parent_paths.iter().enumerate() {
            if pp == old {
                return Some(new_child_paths[i].clone());
            }
        }
        if *pp == q_path {
            return Some(q_path.clone());
        }
        None
    };

    let mut fds: Vec<XmlFd> = Vec::new();
    let p_parent_path = value_path.parent().expect("attribute paths have parents");
    let determinant: Vec<Path> = {
        // The anomalous FD's LHS (q and the attribute paths): it
        // determines p.@l, so it can stand in for the removed attribute.
        let mut d = vec![q_path.clone()];
        d.extend(old_attr_paths.iter().cloned());
        d
    };
    for fd in sigma.iter() {
        let mentions_value = fd.lhs().contains(&value_path) || fd.rhs().contains(&value_path);
        // Rule 1 (Σ-based): FDs whose paths all survive in D'.
        if !mentions_value {
            fds.push(fd.clone());
        }
        // Closure completion: an FD `X → Y` with the removed `p.@l` on its
        // left is re-expressed as `(X \ {p.@l}) ∪ S → Y`, where `S` is the
        // anomalous FD's determinant. Sound whenever some other LHS path
        // passes through `last(p)`: that path non-null forces the node
        // `p` — and hence its required attribute `@l` — non-null, so
        // `S → p.@l` fires and the original FD applies. (This is how the
        // paper's closure-based Σ[…] keeps keys alive, e.g.
        // `{@A,@K,@C} → db.G` after `@B` moves out in Example 5.3's
        // decomposition.)
        if fd.lhs().contains(&value_path)
            && !fd.rhs().contains(&value_path)
            && fd
                .lhs()
                .iter()
                .any(|x| *x != value_path && p_parent_path.is_prefix_of(x))
        {
            let mut new_lhs: Vec<Path> = fd
                .lhs()
                .iter()
                .filter(|x| **x != value_path)
                .cloned()
                .collect();
            new_lhs.extend(determinant.iter().cloned());
            fds.push(XmlFd::new(new_lhs, fd.rhs().to_vec()).expect("non-empty sides"));
        }
        // Rule 2: FDs entirely over {q, pᵢ, pᵢ.@lᵢ, p.@l} transfer to τ.
        let all_transferable = fd
            .lhs()
            .iter()
            .chain(fd.rhs())
            .all(|pp| transfer(pp).is_some());
        if all_transferable {
            let map_side = |side: &[Path]| -> Vec<Path> {
                side.iter()
                    .map(|pp| transfer(pp).expect("checked"))
                    .collect()
            };
            let lhs2 = map_side(fd.lhs());
            let rhs2 = map_side(fd.rhs());
            if lhs2 != fd.lhs() || rhs2 != fd.rhs() {
                fds.push(XmlFd::new(lhs2, rhs2).expect("non-empty sides"));
            }
        }
    }
    // The anomalous FD itself, transferred: {q, new attrs} → q.τ.@l.
    let mut key_lhs: Vec<Path> = vec![q_path.clone()];
    key_lhs.extend(new_attr_paths.iter().cloned());
    fds.push(XmlFd::new(key_lhs.clone(), [new_value_path.clone()]).expect("non-empty"));
    // Rule 3: {q, q.τ.τ₁.@l₁, …} → q.τ and {q.τ, q.τ.τᵢ.@lᵢ} → q.τ.τᵢ.
    fds.push(XmlFd::new(key_lhs, [tau_path.clone()]).expect("non-empty"));
    for (child, attr) in new_child_paths.iter().zip(&new_attr_paths) {
        fds.push(XmlFd::new([tau_path.clone(), attr.clone()], [child.clone()]).expect("non-empty"));
    }
    *sigma = XmlFdSet::from_fds(fds);
    steps.push(Step::CreateElement {
        q: q_path,
        lhs_attrs: old_attr_paths,
        value_attr: value_path,
        tau,
        tau_children,
    });
    Ok(())
}

/// Renames an element type in both the DTD and the FD paths of Σ —
/// presentation-only (e.g. to match a published figure's names). The
/// rename also needs to be applied to any [`Step`] replay, so use it only
/// on final results.
pub fn rename_element(dtd: &mut Dtd, sigma: &mut XmlFdSet, old: &str, new: &str) -> Result<()> {
    dtd.rename_element(old, new)?;
    let renamed: Vec<XmlFd> = sigma
        .iter()
        .map(|fd| {
            let map = |side: &[Path]| -> Vec<Path> {
                side.iter()
                    .map(|p| {
                        let steps: Vec<PathStep> = p
                            .steps()
                            .iter()
                            .map(|s| match s {
                                PathStep::Elem(n) if &**n == old => PathStep::elem(new),
                                other => other.clone(),
                            })
                            .collect();
                        Path::new(steps)
                    })
                    .collect()
            };
            XmlFd::new(map(fd.lhs()), map(fd.rhs())).expect("non-empty sides")
        })
        .collect();
    *sigma = XmlFdSet::from_fds(renamed);
    Ok(())
}

/// Folds one `p.τ.S` path into an attribute `@τ` of `last(p)`, rewriting
/// the DTD and the FDs (Section 6: "`p.S` can always be replaced by a
/// path of the form `p.@l`").
pub(crate) fn fold_one_text_path(
    dtd: &mut Dtd,
    fds: &mut [XmlFd],
    s_path: &Path,
    steps: &mut Vec<Step>,
) -> Result<()> {
    let elem_path = s_path.parent().expect("S paths have parents");
    let parent_path = elem_path
        .parent()
        .ok_or_else(|| CoreError::BadFdPath(format!("cannot fold the root's text ({s_path})")))?;
    let elem_name = match elem_path.last() {
        PathStep::Elem(n) => n.clone(),
        _ => unreachable!("parent of S is an element"),
    };
    // Resolve element types.
    let paths = dtd.paths()?;
    let parent_id = paths
        .resolve(&parent_path)
        .and_then(|p| paths.last_elem(p))
        .ok_or_else(|| CoreError::BadFdPath(format!("no such path {parent_path}")))?;
    let elem_id = dtd
        .elem_id(&elem_name)
        .ok_or_else(|| CoreError::BadFdPath(format!("no such element {elem_name}")))?;
    if !dtd.content(elem_id).is_text() || dtd.attrs(elem_id).next().is_some() {
        return Err(CoreError::BadFdPath(format!(
            "cannot fold `{elem_path}`: not a plain #PCDATA element"
        )));
    }
    // The folded element must occur exactly once in the parent's content
    // model.
    let parent_re = match dtd.content(parent_id) {
        ContentModel::Regex(re) => re.clone(),
        ContentModel::Text => unreachable!("parent of an element is not #PCDATA"),
    };
    let new_re = remove_single_occurrence(&parent_re, &elem_name).ok_or_else(|| {
        CoreError::BadFdPath(format!(
            "cannot fold `{elem_path}`: `{elem_name}` does not occur exactly once \
             (multiplicity one) in P({})",
            dtd.name(parent_id)
        ))
    })?;
    // Any FD mentioning the element path itself (not its text) would lose
    // meaning.
    if fds
        .iter()
        .flat_map(|fd| fd.lhs().iter().chain(fd.rhs()))
        .any(|p| *p == elem_path)
    {
        return Err(CoreError::BadFdPath(format!(
            "cannot fold `{elem_path}`: Σ also mentions the element node itself"
        )));
    }
    let attr = dtd.fresh_attr_name(parent_id, &elem_name);
    dtd.set_content(parent_id, ContentModel::Regex(new_re))?;
    dtd.add_attribute(parent_id, &attr)?;
    let new_path = parent_path.child_attr(attr.as_str());
    for fd in fds.iter_mut() {
        let map = |side: &[Path]| -> Vec<Path> {
            side.iter()
                .map(|p| {
                    if p == s_path {
                        new_path.clone()
                    } else {
                        p.clone()
                    }
                })
                .collect()
        };
        *fd = XmlFd::new(map(fd.lhs()), map(fd.rhs())).expect("non-empty sides");
    }
    steps.push(Step::FoldText { elem_path, attr });
    Ok(())
}

/// Folds every right-hand-side `.S` path of Σ (see
/// [`fold_one_text_path`]).
pub(crate) fn fold_text_paths(
    dtd: &mut Dtd,
    fds: &mut [XmlFd],
    steps: &mut Vec<Step>,
) -> Result<()> {
    loop {
        // Find an FD path ending in `.S` on a *right-hand side* (the
        // positions the transformations operate on). Left-hand `.S`
        // paths are folded lazily, only if a CreateElement step needs
        // them (see the main loop) — this keeps e.g. the DBLP `title.S`
        // key untouched, as in the paper's Example 5.2. Candidates are
        // folded in structural (BFS) order, not the name-sorted Σ order:
        // fold order fixes the relative position of the minted attributes,
        // so it must be rename-equivariant.
        let paths_now = dtd.paths()?;
        let target: Option<Path> = fds
            .iter()
            .flat_map(|fd| fd.rhs().iter())
            .filter(|p| matches!(p.last(), PathStep::Text))
            .min_by_key(|p| paths_now.resolve(p).map_or(usize::MAX, PathId::index))
            .cloned();
        let Some(s_path) = target else {
            return Ok(());
        };
        fold_one_text_path(dtd, fds, &s_path, steps)?;
    }
}

/// Removes the unique multiplicity-one occurrence of `name` from a
/// concatenation; `None` if `name` occurs elsewhere than as a plain letter
/// at top level of a sequence.
fn remove_single_occurrence(re: &Regex, name: &str) -> Option<Regex> {
    let parts: Vec<Regex> = match re {
        Regex::Seq(parts) => parts.clone(),
        other => vec![other.clone()],
    };
    let mut hits = 0usize;
    let mut out: Vec<Regex> = Vec::new();
    for p in parts {
        if p == Regex::elem(name) {
            hits += 1;
            continue;
        }
        if p.mentions(name) {
            return None; // occurs under a quantifier or disjunction
        }
        out.push(p);
    }
    if hits != 1 {
        return None;
    }
    Some(Regex::seq(out))
}

/// Ensures every FD's left-hand side has exactly one element path: adds
/// the root when there is none (free: any two tuples share the root) and
/// replaces extras by fresh id attributes, per Section 6.
pub(crate) fn fix_lhs_element_paths(
    dtd: &mut Dtd,
    fds: &mut Vec<XmlFd>,
    steps: &mut Vec<Step>,
) -> Result<()> {
    let root_path = Path::root(dtd.root_name());
    let mut i = 0;
    while i < fds.len() {
        let fd = fds[i].clone();
        let elem_paths: Vec<Path> = fd
            .lhs()
            .iter()
            .filter(|p| p.is_element_path())
            .cloned()
            .collect();
        if elem_paths.is_empty() {
            let mut lhs: Vec<Path> = fd.lhs().to_vec();
            lhs.push(root_path.clone());
            fds[i] = XmlFd::new(lhs, fd.rhs().to_vec())?;
            i += 1;
            continue;
        }
        if elem_paths.len() == 1 {
            i += 1;
            continue;
        }
        // Keep the deepest element path as q; replace each other q' by a
        // fresh id attribute q'.@id, adding q'.@id → q'. Depth ties break
        // on the structural (BFS) position, which is rename-equivariant —
        // breaking them on the name-sorted LHS order would make the kept
        // path, and everything downstream, depend on element spellings.
        let paths_now = dtd.paths()?;
        let q = elem_paths
            .iter()
            .max_by_key(|p| {
                let pos = paths_now.resolve(p).map_or(usize::MAX, PathId::index);
                (p.len(), std::cmp::Reverse(pos))
            })
            .expect("non-empty")
            .clone();
        let mut lhs: Vec<Path> = fd
            .lhs()
            .iter()
            .filter(|p| !p.is_element_path() || **p == q)
            .cloned()
            .collect();
        for q_prime in elem_paths.iter().filter(|p| **p != q) {
            let paths = dtd.paths()?;
            let q_elem = paths
                .resolve(q_prime)
                .and_then(|p| paths.last_elem(p))
                .ok_or_else(|| CoreError::BadFdPath(format!("no such path {q_prime}")))?;
            let attr = dtd.fresh_attr_name(q_elem, "id");
            dtd.add_attribute(q_elem, &attr)?;
            let id_path = q_prime.child_attr(attr.as_str());
            lhs.push(id_path.clone());
            fds.push(XmlFd::new([id_path], [q_prime.clone()])?);
            steps.push(Step::AddId {
                elem_path: q_prime.clone(),
                attr,
            });
        }
        fds[i] = XmlFd::new(lhs, fd.rhs().to_vec())?;
        i += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{XmlFdSet, DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};
    use crate::xnf::is_xnf;

    #[test]
    fn parallel_search_matches_sequential() {
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let paths = dtd.paths().unwrap();
            let resolved = sigma.resolve(&paths).unwrap();
            let chase = Chase::new(&dtd, &paths);
            let unlimited = Budget::unlimited();
            let seq = find_anomalous_fd(&chase, &paths, &resolved, 1, &unlimited).unwrap();
            for threads in [0, 2, 3, 8] {
                assert_eq!(
                    find_anomalous_fd(&chase, &paths, &resolved, threads, &unlimited).unwrap(),
                    seq,
                    "threads={threads} must match sequential"
                );
            }
            // The cache-wrapped oracle must not change the answer either,
            // even when shared by concurrent workers.
            let cache = ImplicationCache::new(&chase, &resolved);
            assert_eq!(
                find_anomalous_fd(&cache, &paths, &resolved, 4, &unlimited).unwrap(),
                seq
            );
            assert_eq!(
                find_anomalous_fd(&cache, &paths, &resolved, 1, &unlimited).unwrap(),
                seq
            );
            assert!(chase.stats().snapshot().get("cache.hits") > 0);
        }
    }

    #[test]
    fn stats_are_populated() {
        let r = run(&university_dtd(), UNIVERSITY_FDS);
        assert!(r.stats.iterations >= 1);
        assert!(r.stats.chase.get("chase.runs") > 0, "implication ran");
        assert!(
            r.stats.chase.get("cache.misses") > 0,
            "each distinct query costs one miss"
        );
        assert!(
            r.stats.chase.get("cache.hits") > 0,
            "guard pass repeats search queries, so hits are guaranteed"
        );
    }

    fn run(dtd: &Dtd, sigma_text: &str) -> NormalizeResult {
        let sigma = XmlFdSet::parse(sigma_text).unwrap();
        normalize(dtd, &sigma, &NormalizeOptions::default()).unwrap()
    }

    #[test]
    fn dblp_normalization_moves_year_to_issue() {
        // Example 1.2 / 5.2: the algorithm must move @year from
        // inproceedings to issue — exactly the paper's revision.
        let r = run(&dblp_dtd(), DBLP_FDS);
        assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
        assert_eq!(
            r.steps,
            vec![Step::MoveAttribute {
                from: "db.conf.issue.inproceedings.@year".parse().unwrap(),
                to: "db.conf.issue".parse().unwrap(),
                new_attr: "year".to_string(),
            }]
        );
        let issue = r.dtd.elem_id("issue").unwrap();
        assert!(r.dtd.has_attr(issue, "year"));
        let inproc = r.dtd.elem_id("inproceedings").unwrap();
        assert!(!r.dtd.has_attr(inproc, "year"));
        assert_eq!(
            r.dtd.attrs(inproc).collect::<Vec<_>>(),
            vec!["key", "pages"]
        );
        // FD4 survives (preprocessing adds the root path to its LHS,
        // which is semantically free: any two tuples share the root).
        assert!(r
            .sigma
            .iter()
            .any(|fd| fd.to_string() == "db, db.conf.title.S -> db.conf"));
    }

    #[test]
    fn university_normalization_creates_info_structure() {
        // Example 1.1 / 5.1: name.S folds into @name on student, then the
        // anomalous {sno → name} FD triggers element creation under the
        // root.
        let r = run(&university_dtd(), UNIVERSITY_FDS);
        assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
        // The student element lost `name` (folded) and the new @name
        // attribute (moved into the info structure): it keeps grade + sno.
        let student = r.dtd.elem_id("student").unwrap();
        assert_eq!(r.dtd.attrs(student).collect::<Vec<_>>(), vec!["sno"]);
        let student_content = r.dtd.content(student).as_regex().unwrap().to_string();
        assert_eq!(student_content, "grade");
        // A fresh info element under the root holds @name with sno-holding
        // children.
        let info = r.dtd.elem_id("info").expect("info element created");
        assert_eq!(r.dtd.attrs(info).collect::<Vec<_>>(), vec!["name"]);
        let courses = r.dtd.elem_id("courses").unwrap();
        let content = r.dtd.content(courses).as_regex().unwrap().to_string();
        assert_eq!(content, "course*, info*");
        // The info child holds @sno.
        let child_name = &r
            .steps
            .iter()
            .find_map(|s| match s {
                Step::CreateElement { tau_children, .. } => Some(tau_children[0].clone()),
                _ => None,
            })
            .expect("create step present");
        let tau1 = r.dtd.elem_id(child_name).unwrap();
        assert_eq!(r.dtd.attrs(tau1).collect::<Vec<_>>(), vec!["sno"]);
        // Steps: fold, then create.
        assert!(matches!(r.steps[0], Step::FoldText { .. }));
        assert!(matches!(r.steps[1], Step::CreateElement { .. }));
        assert_eq!(r.steps.len(), 2);
    }

    #[test]
    fn ap_strictly_decreases() {
        for (dtd, sigma) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let r = run(&dtd, sigma);
            for w in r.ap_trace.windows(2) {
                assert!(w[1] < w[0], "AP did not decrease: {:?}", r.ap_trace);
            }
            assert_eq!(*r.ap_trace.last().unwrap(), 0);
        }
    }

    #[test]
    fn xnf_input_is_returned_unchanged() {
        let d = university_dtd();
        let sigma = XmlFdSet::parse("courses.course.@cno -> courses.course").unwrap();
        let r = normalize(&d, &sigma, &NormalizeOptions::default()).unwrap();
        assert!(r.steps.is_empty());
        assert_eq!(r.dtd, d);
        assert_eq!(r.ap_trace, vec![0]);
    }

    #[test]
    fn sigma_only_variant_also_reaches_xnf() {
        // Proposition 7: without the implication oracle the algorithm
        // still terminates in XNF.
        let opts = NormalizeOptions {
            use_implication: false,
            ..NormalizeOptions::default()
        };
        for (dtd, sigma) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(sigma).unwrap();
            let r = normalize(&dtd, &sigma, &opts).unwrap();
            assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
        }
    }

    #[test]
    fn sigma_only_dblp_creates_element_instead_of_moving() {
        // Without implication, step 2 is unavailable: the DBLP anomaly is
        // fixed by element creation — in XNF but coarser than the paper's
        // fix (the cost of skipping implication, cf. Proposition 7).
        let opts = NormalizeOptions {
            use_implication: false,
            ..NormalizeOptions::default()
        };
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        let r = normalize(&dblp_dtd(), &sigma, &opts).unwrap();
        assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
        assert!(r
            .steps
            .iter()
            .any(|s| matches!(s, Step::CreateElement { .. })));
    }

    #[test]
    fn recursive_dtd_rejected() {
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (part)>
             <!ELEMENT part (part*)>",
        )
        .unwrap();
        assert!(matches!(
            normalize(&d, &XmlFdSet::new(), &NormalizeOptions::default()),
            Err(CoreError::RecursiveNormalization)
        ));
    }

    #[test]
    fn lhs_with_no_element_path_gains_root() {
        // sno → grade-ish anomaly with a pure-attribute LHS still works.
        let d = university_dtd();
        let sigma = XmlFdSet::parse(
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.grade.S",
        )
        .unwrap();
        let r = normalize(&d, &sigma, &NormalizeOptions::default()).unwrap();
        assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
    }

    #[test]
    fn rename_element_rewrites_sigma_paths() {
        let mut dtd = university_dtd();
        let mut sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        rename_element(&mut dtd, &mut sigma, "student", "pupil").unwrap();
        assert!(dtd.elem_id("pupil").is_some());
        for fd in sigma.iter() {
            let text = fd.to_string();
            assert!(!text.contains("student"), "{text}");
        }
        // Σ still resolves against the renamed DTD, and satisfaction is
        // preserved on a renamed document.
        let paths = dtd.paths().unwrap();
        assert!(sigma.resolve(&paths).is_ok());
    }

    #[test]
    fn multi_element_lhs_is_eliminated_with_ids() {
        let d = university_dtd();
        // {course, taken_by} → … has two element paths; preprocessing must
        // replace the shallower one by an id attribute.
        let sigma =
            XmlFdSet::parse("courses.course, courses.course.taken_by -> courses.course.title.S")
                .unwrap();
        let r = normalize(&d, &sigma, &NormalizeOptions::default()).unwrap();
        assert!(is_xnf(&r.dtd, &r.sigma).unwrap());
        assert!(r.steps.iter().any(|s| matches!(s, Step::AddId { .. })));
    }

    #[test]
    fn unlimited_budget_output_is_identical() {
        // Budget::unlimited() (the default) must be a pure passthrough:
        // the revised design, step trace and AP trace are identical.
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let plain = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
            let governed = normalize(
                &dtd,
                &sigma,
                &NormalizeOptions {
                    budget: Budget::unlimited(),
                    ..NormalizeOptions::default()
                },
            )
            .unwrap();
            assert_eq!(format!("{}", plain.dtd), format!("{}", governed.dtd));
            assert_eq!(plain.sigma.to_string(), governed.sigma.to_string());
            assert_eq!(plain.steps, governed.steps);
            assert_eq!(plain.ap_trace, governed.ap_trace);
            assert!(governed.exhausted.is_none());
        }
    }

    #[test]
    fn exhausted_normalize_degrades_gracefully() {
        // Starve the run at every fuel level: the result is either the
        // full ungoverned answer or a partial-but-consistent prefix marked
        // non-final — never an error, never a half-applied step.
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let full = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let mut saw_partial = false;
        for fuel in [1, 10, 100, 1_000, 10_000] {
            let opts = NormalizeOptions {
                budget: Budget::builder().fuel(fuel).build(),
                ..NormalizeOptions::default()
            };
            let r = normalize(&dtd, &sigma, &opts).unwrap();
            match &r.exhausted {
                Some(_) => {
                    saw_partial = true;
                    assert!(r.steps.len() <= full.steps.len());
                    assert_eq!(r.steps[..], full.steps[..r.steps.len()]);
                    // Stages stay parallel to steps, so the partial trace
                    // is replayable on documents.
                    assert_eq!(r.stages.len(), r.steps.len());
                }
                None => {
                    assert_eq!(r.steps, full.steps);
                    assert_eq!(format!("{}", r.dtd), format!("{}", full.dtd));
                }
            }
        }
        assert!(saw_partial, "tiny budgets must exhaust");
    }

    #[test]
    fn rerun_with_larger_budget_converges() {
        // Resuming after Exhausted = rerunning with a larger budget; the
        // algorithm is deterministic, so once the budget suffices the
        // output is byte-identical to the ungoverned run.
        let dtd = dblp_dtd();
        let sigma = XmlFdSet::parse(DBLP_FDS).unwrap();
        let full = normalize(&dtd, &sigma, &NormalizeOptions::default()).unwrap();
        let mut fuel = 1u64;
        loop {
            let opts = NormalizeOptions {
                budget: Budget::builder().fuel(fuel).build(),
                ..NormalizeOptions::default()
            };
            let r = normalize(&dtd, &sigma, &opts).unwrap();
            if r.exhausted.is_none() {
                assert_eq!(format!("{}", r.dtd), format!("{}", full.dtd));
                assert_eq!(r.sigma.to_string(), full.sigma.to_string());
                assert_eq!(r.steps, full.steps);
                break;
            }
            fuel *= 4;
            assert!(fuel < 1 << 40, "never converged");
        }
    }
}
