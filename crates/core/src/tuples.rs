//! `tuples_D(T)` (Definition 6) and `trees_D(X)` (Definition 7).
//!
//! `tuples_D(T)` is the set of maximal tree tuples whose tree
//! representation is subsumed by `T`. Operationally: walk `T` guided by
//! `paths(D)`; at a node with several children of one label, a maximal
//! tuple picks exactly one of them, so the tuple set is the product of the
//! choices (this is the total-unnesting view of the document and can be
//! exponential in the document depth-width profile — the paper's
//! relational representation, not a storage format).
//!
//! `trees_D(X)` merges a `D`-compatible set of tuples back into the
//! (unique up to `≡`) minimal tree containing them all; Theorem 1 states
//! `trees_D(tuples_D(T)) = [T]`.

use crate::tuple::TreeTuple;
use crate::{CoreError, Result};
use std::collections::HashMap;
use xnf_dtd::{Dtd, PathId, PathSet, Step};
use xnf_relational::{Relation, Value};
use xnf_xml::{NodeId, XmlTree};

/// Computes `tuples_D(T)` for a tree compatible with `dtd`.
///
/// Fails with [`CoreError::NotCompatible`] when `paths(T) ⊄ paths(D)`.
pub fn tuples_d(tree: &XmlTree, dtd: &Dtd, paths: &PathSet) -> Result<Vec<TreeTuple>> {
    if !xnf_xml::compatible(tree, dtd) {
        return Err(CoreError::NotCompatible);
    }
    let assignments = expand(tree, paths, paths.root(), tree.root());
    let mut out = Vec::with_capacity(assignments.len());
    for a in assignments {
        let mut t = TreeTuple::empty(paths.len());
        for (p, v) in a {
            t.set(p, v);
        }
        debug_assert!(t.validate(paths).is_ok());
        out.push(t);
    }
    // The product construction yields pairwise ⊑-incomparable tuples, so
    // no maximality filtering is needed; keep the set deduplicated and
    // deterministic.
    out.sort();
    out.dedup();
    Ok(out)
}

/// All ways to extend a tuple below path `p`, whose value is node `v`.
/// Each alternative is a list of `(path, value)` bindings.
fn expand(tree: &XmlTree, paths: &PathSet, p: PathId, v: NodeId) -> Vec<Vec<(PathId, Value)>> {
    let mut alts: Vec<Vec<(PathId, Value)>> = vec![vec![(p, Value::Vert(v.index() as u64))]];
    for &cp in paths.children_of(p) {
        match paths.step(cp) {
            Step::Attr(name) => {
                if let Some(val) = tree.attr(v, name) {
                    for a in &mut alts {
                        a.push((cp, Value::str(val)));
                    }
                }
            }
            Step::Text => {
                if let Some(text) = tree.text(v) {
                    for a in &mut alts {
                        a.push((cp, Value::str(text)));
                    }
                }
            }
            Step::Elem(name) => {
                let candidates = tree.children_labelled(v, name);
                if candidates.is_empty() {
                    continue;
                }
                // A maximal tuple picks exactly one child with this label;
                // branch over the candidates (product with the
                // alternatives accumulated so far).
                let mut sub: Vec<Vec<(PathId, Value)>> = Vec::new();
                for w in candidates {
                    sub.extend(expand(tree, paths, cp, w));
                }
                let mut next = Vec::with_capacity(alts.len() * sub.len());
                for a in &alts {
                    for s in &sub {
                        let mut combined = a.clone();
                        combined.extend(s.iter().cloned());
                        next.push(combined);
                    }
                }
                alts = next;
            }
        }
    }
    alts
}

/// Computes `tuples_D(T)` for a (possibly) **recursive** DTD by
/// enumerating `paths(D)` only to the depth the document actually
/// realizes. The returned [`PathSet`] is the finite window used; all
/// tuple values beyond it would be `⊥` anyway, so FD satisfaction over
/// paths within the window coincides with the unbounded semantics.
pub fn tuples_d_recursive(tree: &XmlTree, dtd: &Dtd) -> Result<(PathSet, Vec<TreeTuple>)> {
    // Deepest realized path: element depth + 1 for an attribute/S step.
    let depth = tree
        .descendants()
        .iter()
        .map(|&v| tree.depth(v))
        .max()
        .unwrap_or(1)
        + 1;
    let paths = dtd.paths_bounded(depth);
    let tuples = tuples_d(tree, dtd, &paths)?;
    Ok((paths, tuples))
}

/// `tuples_D(T)` as a Codd table: one column per path (named by the path's
/// text form, in BFS order), one row per maximal tree tuple. This is the
/// relation on which Section 4 defines FD satisfaction and Section 6
/// runs the losslessness queries.
pub fn tuples_relation(tree: &XmlTree, dtd: &Dtd, paths: &PathSet) -> Result<Relation> {
    let tuples = tuples_d(tree, dtd, paths)?;
    let columns: Vec<String> = paths.iter().map(|p| paths.format(p)).collect();
    let mut rel = Relation::new(columns)
        .map_err(|e| CoreError::InconsistentTuples(format!("duplicate path column: {e}")))?;
    for t in tuples {
        rel.insert(t.values().to_vec())
            .expect("row arity equals the path count by construction");
    }
    Ok(rel)
}

/// `trees_D(X)` (Definition 7) for a `D`-compatible set of tuples: the
/// minimal tree containing every `tree_D(t)`, `t ∈ X`. Returns the unique
/// representative (up to `≡`) with children ordered deterministically, or
/// an error if the tuples cannot be merged into one tree.
pub fn trees_d(tuples: &[TreeTuple], paths: &PathSet) -> Result<XmlTree> {
    if tuples.is_empty() {
        return Err(CoreError::InconsistentTuples("empty tuple set".into()));
    }
    for t in tuples {
        t.validate(paths)?;
    }
    let root_vert = match tuples[0].get(paths.root()) {
        Value::Vert(v) => *v,
        _ => unreachable!("validated tuples have vertex roots"),
    };
    // Gather per-vertex facts, checking consistency across tuples.
    struct VertInfo {
        path: PathId,
        parent: Option<u64>,
        attrs: HashMap<Box<str>, Box<str>>,
        text: Option<Box<str>>,
    }
    let mut verts: HashMap<u64, VertInfo> = HashMap::new();
    for t in tuples {
        if t.get(paths.root()) != &Value::Vert(root_vert) {
            return Err(CoreError::InconsistentTuples(
                "tuples have distinct roots".into(),
            ));
        }
        for p in paths.iter() {
            let value = t.get(p);
            if value.is_null() {
                continue;
            }
            match (paths.step(p), value) {
                (Step::Elem(_), Value::Vert(v)) => {
                    let parent = paths.parent(p).map(|pp| match t.get(pp) {
                        Value::Vert(pv) => *pv,
                        _ => unreachable!("null propagation validated"),
                    });
                    let info = verts.entry(*v).or_insert(VertInfo {
                        path: p,
                        parent,
                        attrs: HashMap::new(),
                        text: None,
                    });
                    if info.path != p || info.parent != parent {
                        return Err(CoreError::InconsistentTuples(format!(
                            "vertex v{v} occurs at two positions"
                        )));
                    }
                }
                (Step::Attr(name), Value::Str(s)) => {
                    let parent = paths.parent(p).expect("attribute paths have parents");
                    let pv = match t.get(parent) {
                        Value::Vert(pv) => *pv,
                        _ => unreachable!("null propagation validated"),
                    };
                    let info = verts.get_mut(&pv).expect("parent processed (BFS order)");
                    if let Some(prev) = info.attrs.insert(name.clone(), s.clone()) {
                        if prev != *s {
                            return Err(CoreError::InconsistentTuples(format!(
                                "conflicting values for @{name} on v{pv}"
                            )));
                        }
                    }
                }
                (Step::Text, Value::Str(s)) => {
                    let parent = paths.parent(p).expect("text paths have parents");
                    let pv = match t.get(parent) {
                        Value::Vert(pv) => *pv,
                        _ => unreachable!("null propagation validated"),
                    };
                    let info = verts.get_mut(&pv).expect("parent processed (BFS order)");
                    match &info.text {
                        Some(prev) if prev != s => {
                            return Err(CoreError::InconsistentTuples(format!(
                                "conflicting text for v{pv}"
                            )))
                        }
                        _ => info.text = Some(s.clone()),
                    }
                }
                _ => unreachable!("validated tuples are sort-consistent"),
            }
        }
    }
    // Build the tree: create vertices in (path, vertex) order so parents
    // precede children and the result is deterministic.
    let mut order: Vec<(&u64, &VertInfo)> = verts.iter().collect();
    order.sort_by_key(|(v, info)| (info.path, **v));
    let root_label = match paths.step(paths.root()) {
        Step::Elem(n) => n.clone(),
        _ => unreachable!("the root path is an element path"),
    };
    let mut tree = XmlTree::new(root_label);
    let mut node_of: HashMap<u64, NodeId> = HashMap::new();
    node_of.insert(root_vert, tree.root());
    for (&v, info) in order {
        let node = if v == root_vert {
            tree.root()
        } else {
            let parent_vert = info.parent.ok_or_else(|| {
                CoreError::InconsistentTuples(format!("vertex v{v} has no parent"))
            })?;
            let parent_node = *node_of.get(&parent_vert).ok_or_else(|| {
                CoreError::InconsistentTuples(format!("vertex v{v} has an unknown parent"))
            })?;
            let label = match paths.step(info.path) {
                Step::Elem(n) => n.clone(),
                _ => unreachable!("vertices live at element paths"),
            };
            let node = tree.add_child(parent_node, label);
            node_of.insert(v, node);
            node
        };
        for (name, value) in &info.attrs {
            tree.set_attr(node, name.clone(), value.clone());
        }
        if let Some(text) = &info.text {
            tree.set_text(node, text.clone());
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{dblp_doc, dblp_dtd, figure_1a, university_dtd};

    #[test]
    fn figure_1a_has_four_tuples() {
        // 2 courses × 2 students each = 4 maximal tuples.
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let tuples = tuples_d(&figure_1a(), &d, &ps).unwrap();
        assert_eq!(tuples.len(), 4);
        for t in &tuples {
            t.validate(&ps).unwrap();
            // Every tuple is fully non-null on this document.
            assert!(ps.iter().all(|p| !t.get(p).is_null()));
        }
    }

    #[test]
    fn tuples_are_pairwise_incomparable() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let tuples = tuples_d(&figure_1a(), &d, &ps).unwrap();
        for (i, t1) in tuples.iter().enumerate() {
            for (j, t2) in tuples.iter().enumerate() {
                if i != j {
                    assert!(!t1.subsumed_by(t2), "tuple {i} ⊑ tuple {j}");
                }
            }
        }
    }

    #[test]
    fn theorem_1_round_trip_university() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = figure_1a();
        let tuples = tuples_d(&t, &d, &ps).unwrap();
        let rebuilt = trees_d(&tuples, &ps).unwrap();
        assert!(xnf_xml::unordered_eq(&t, &rebuilt));
    }

    #[test]
    fn theorem_1_round_trip_dblp() {
        let d = dblp_dtd();
        let ps = d.paths().unwrap();
        let t = dblp_doc();
        let tuples = tuples_d(&t, &d, &ps).unwrap();
        // 2 authors × 1 + 1 + 1: issue1 has p1 (2 authors) and p2 (1), so
        // tuples for conf: issue choices... each tuple picks one issue, one
        // inproceedings, one author: issue1→p1→{Fan,Libkin}, issue1→p2,
        // issue2→p3 ⇒ 4 tuples.
        assert_eq!(tuples.len(), 4);
        let rebuilt = trees_d(&tuples, &ps).unwrap();
        assert!(xnf_xml::unordered_eq(&t, &rebuilt));
    }

    #[test]
    fn incompatible_tree_rejected() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse("<courses><oops/></courses>").unwrap();
        assert!(matches!(
            tuples_d(&t, &d, &ps),
            Err(CoreError::NotCompatible)
        ));
    }

    #[test]
    fn partial_documents_yield_null_tuples() {
        // A compatible (not conforming) document missing grades.
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = xnf_xml::parse(
            r#"<courses><course cno="c1"><title>T</title><taken_by>
               <student sno="s1"><name>N</name></student>
               </taken_by></course></courses>"#,
        )
        .unwrap();
        let tuples = tuples_d(&t, &d, &ps).unwrap();
        assert_eq!(tuples.len(), 1);
        let grade = ps
            .resolve_str("courses.course.taken_by.student.grade")
            .unwrap();
        assert!(tuples[0].get(grade).is_null());
        let sno = ps
            .resolve_str("courses.course.taken_by.student.@sno")
            .unwrap();
        assert_eq!(tuples[0].get(sno), &Value::str("s1"));
    }

    #[test]
    fn proposition_2_monotonicity() {
        // T₁ ⊑ T₂ implies tuples(T₁) ⊑° tuples(T₂): every tuple of the
        // smaller document is subsumed by some tuple of the larger one.
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let small = xnf_xml::parse(
            r#"<courses><course cno="csc200"><title>Automata Theory</title><taken_by>
               <student sno="st1"><name>Deere</name><grade>A+</grade></student>
               </taken_by></course></courses>"#,
        )
        .unwrap();
        let big = figure_1a();
        let small_tuples = tuples_d(&small, &d, &ps).unwrap();
        // Vertex ids are arena indices, which differ between the two
        // documents; compare on the string-valued paths only (the
        // information content).
        let str_paths: Vec<_> = ps.iter().filter(|&p| !ps.is_element_path(p)).collect();
        let big_tuples = tuples_d(&big, &d, &ps).unwrap();
        for st in &small_tuples {
            assert!(big_tuples.iter().any(|bt| str_paths
                .iter()
                .all(|&p| st.get(p).is_null() || st.get(p) == bt.get(p))));
        }
    }

    #[test]
    fn tuples_relation_has_path_columns() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let rel = tuples_relation(&figure_1a(), &d, &ps).unwrap();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.columns().len(), ps.len());
        assert!(rel
            .columns()
            .iter()
            .any(|c| c == "courses.course.taken_by.student.@sno"));
        // FD3 holds on this document: sno → name.S.
        assert!(rel
            .satisfies_fd(
                &["courses.course.taken_by.student.@sno"],
                &["courses.course.taken_by.student.name.S"]
            )
            .unwrap());
        // sno does not determine grade.
        assert!(!rel
            .satisfies_fd(
                &["courses.course.taken_by.student.@sno"],
                &["courses.course.taken_by.student.grade.S"]
            )
            .unwrap());
    }

    #[test]
    fn trees_d_detects_conflicts() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let tuples = tuples_d(&figure_1a(), &d, &ps).unwrap();
        // Corrupt one tuple: same student vertex, different name text.
        let mut bad = tuples.clone();
        let name_s = ps
            .resolve_str("courses.course.taken_by.student.name.S")
            .unwrap();
        let mut t = bad[0].clone();
        t.set(name_s, Value::str("Changed"));
        bad.push(t);
        assert!(matches!(
            trees_d(&bad, &ps),
            Err(CoreError::InconsistentTuples(_))
        ));
    }

    #[test]
    fn trees_d_of_disjoint_roots_rejected() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let mut t1 = TreeTuple::empty(ps.len());
        t1.set(ps.root(), Value::Vert(0));
        let mut t2 = TreeTuple::empty(ps.len());
        t2.set(ps.root(), Value::Vert(1));
        assert!(matches!(
            trees_d(&[t1, t2], &ps),
            Err(CoreError::InconsistentTuples(_))
        ));
    }

    #[test]
    fn recursive_dtd_bounded_tuples_and_fds() {
        // <!ELEMENT r (part*)> <!ELEMENT part (part*)> with @id, @owner:
        // paths(D) is infinite; the bounded window still decides FDs on
        // the realized paths.
        let d = xnf_dtd::Dtd::builder("r")
            .elem("r", xnf_dtd::Regex::elem("part").star())
            .elem_attrs("part", xnf_dtd::Regex::elem("part").star(), ["id", "owner"])
            .build()
            .unwrap();
        assert!(d.is_recursive());
        let t = xnf_xml::parse(
            r#"<r>
              <part id="p1" owner="alice"><part id="p2" owner="alice"/></part>
              <part id="p3" owner="bob"><part id="p2" owner="alice"/></part>
            </r>"#,
        )
        .unwrap();
        let (paths, tuples) = tuples_d_recursive(&t, &d).unwrap();
        assert!(paths.truncated());
        // Two top parts × one nested each = 2 maximal tuples.
        assert_eq!(tuples.len(), 2);
        // FD at depth 2: @id → @owner holds (both p2 entries agree).
        let fd: crate::fd::XmlFd = "r.part.part.@id -> r.part.part.@owner".parse().unwrap();
        assert!(fd.resolve(&paths).unwrap().check_tuples(&tuples));
        // FD at depth 1: @owner → @id fails (alice owns p1 and... p1/p3
        // differ by owner; use owner alice: only p1 at depth 1 → holds;
        // make it fail via id → owner? ids distinct → holds). Check a
        // violated one: depth-1 @owner alice vs bob distinct — instead
        // assert the cross-depth distinction: the SAME attribute name at
        // different depths is a different path.
        let d1: crate::fd::XmlFd = "r.part.@id -> r.part.@owner".parse().unwrap();
        assert!(d1.resolve(&paths).unwrap().check_tuples(&tuples));
        // Theorem 1 round trip still works in the window.
        let rebuilt = trees_d(&tuples, &paths).unwrap();
        assert!(xnf_xml::unordered_eq(&rebuilt, &t));
    }

    #[test]
    fn trees_d_of_a_subset_embeds_in_original() {
        let d = university_dtd();
        let ps = d.paths().unwrap();
        let t = figure_1a();
        let tuples = tuples_d(&t, &d, &ps).unwrap();
        let partial = trees_d(&tuples[..2], &ps).unwrap();
        assert!(xnf_xml::embeds_in(&partial, &t));
    }
}
