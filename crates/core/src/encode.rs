//! The codings of Section 5: relational and nested relational schemas as
//! DTDs, connecting XNF to BCNF (Proposition 4) and to NNF
//! (Proposition 5).

use crate::fd::{XmlFd, XmlFdSet};
use crate::Result;
use xnf_dtd::{Dtd, Path, Regex};
use xnf_relational::fd::{FdSet, RelSchema};
use xnf_relational::nested::{NestedSchema, NestedTuple};
use xnf_relational::table::Relation;
use xnf_xml::XmlTree;

/// Codes a relational schema `G(A₁, …, Aₙ)` as the DTD `D_G` of
/// Example 5.3: `<!ELEMENT db (G*)>`, `<!ELEMENT G EMPTY>` with one
/// attribute per column.
pub fn relational_to_dtd(schema: &RelSchema) -> Result<Dtd> {
    Ok(Dtd::builder("db")
        .elem("db", Regex::elem(schema.name()).star())
        .empty_elem(schema.name(), schema.attrs().iter().cloned())
        .build()?)
}

/// Codes a relational FD set `F` as the XML FD set `Σ_F`: each
/// `A_{i₁} … A_{iₘ} → A_j` becomes `{db.G.@A_{i₁}, …} → db.G.@A_j`, plus
/// the duplicate-avoidance key `{db.G.@A₁, …, db.G.@Aₙ} → db.G`.
pub fn relational_fds_to_xml(schema: &RelSchema, fds: &FdSet) -> Result<XmlFdSet> {
    let g_path = Path::root("db").child_elem(schema.name());
    let attr_path = |i: usize| -> Path { g_path.child_attr(schema.attrs()[i].as_str()) };
    let mut out = Vec::new();
    for fd in fds.iter() {
        let lhs: Vec<Path> = fd.lhs.iter().map(attr_path).collect();
        for a in fd.rhs.iter() {
            out.push(XmlFd::new(lhs.clone(), [attr_path(a)])?);
        }
    }
    let all: Vec<Path> = (0..schema.arity()).map(attr_path).collect();
    out.push(XmlFd::new(all, [g_path])?);
    Ok(XmlFdSet::from_fds(out))
}

/// Codes a relation instance as a document conforming to
/// [`relational_to_dtd`]. Null values are not representable (the coding
/// uses `#REQUIRED` attributes) and are rejected.
pub fn relation_to_tree(schema: &RelSchema, rel: &Relation) -> Result<XmlTree> {
    let mut tree = XmlTree::new("db");
    for row in rel.rows() {
        let g = tree.add_child(tree.root(), schema.name());
        for (attr, value) in schema.attrs().iter().zip(row) {
            match value {
                xnf_relational::Value::Str(s) => tree.set_attr(g, attr.as_str(), s.clone()),
                other => {
                    return Err(crate::CoreError::UnrepresentableNull {
                        path: format!("db.{}.@{attr} = {other}", schema.name()),
                    })
                }
            }
        }
    }
    Ok(tree)
}

/// Codes a nested relational schema as a DTD (Section 5): each subschema
/// `G = X(G₁)*…(Gₙ)*` becomes an element type with `P(G) = G₁*, …, Gₙ*`
/// (`EMPTY` for leaves) and one attribute per atomic attribute of `X`; the
/// root is a fresh `db` with `P(db) = G₁*`.
pub fn nested_to_dtd(schema: &NestedSchema) -> Result<Dtd> {
    fn declare(b: xnf_dtd::DtdBuilder, s: &NestedSchema) -> xnf_dtd::DtdBuilder {
        let content = Regex::seq(s.children().iter().map(|c| Regex::elem(c.name()).star()));
        let mut b = b.elem_attrs(s.name(), content, s.atomic().iter().cloned());
        for c in s.children() {
            b = declare(b, c);
        }
        b
    }
    let b = Dtd::builder("db").elem("db", Regex::elem(schema.name()).star());
    Ok(declare(b, schema).build()?)
}

/// `path(Gᵢ)` / `path(A)` of Section 5: the element path from `db` to a
/// subschema, or the attribute path of an atomic attribute.
pub fn nested_path(schema: &NestedSchema, target: &str) -> Option<Path> {
    // Element target?
    if let Some(names) = schema.path_to(target) {
        let mut p = Path::root("db");
        for n in names {
            p = p.child_elem(n);
        }
        return Some(p);
    }
    // Attribute target.
    let holder = schema.schema_of_attr(target)?;
    let mut p = Path::root("db");
    for n in schema.path_to(holder.name())? {
        p = p.child_elem(n);
    }
    Some(p.child_attr(target))
}

/// Codes a nested-relational FD set as `Σ_FD` (Section 5): the given FDs
/// via `path(·)`, plus the PNF-enforcing FDs — for each subschema `Gᵢ`
/// with parent `Gⱼ`, `{path(Gⱼ)} ∪ {path(A) : A atomic in Gᵢ} → path(Gᵢ)`,
/// and for the root schema `{path(B) : B atomic in G₁} → path(G₁)`.
pub fn nested_fds_to_xml(schema: &NestedSchema, flat: &RelSchema, fds: &FdSet) -> Result<XmlFdSet> {
    let path_of = |attr: &str| -> Result<Path> {
        nested_path(schema, attr).ok_or_else(|| {
            crate::CoreError::BadFdPath(format!("attribute `{attr}` is not in the schema"))
        })
    };
    let mut out = Vec::new();
    // The given FDs, attribute-wise.
    for fd in fds.iter() {
        let lhs: Vec<Path> = fd
            .lhs
            .iter()
            .map(|i| path_of(&flat.attrs()[i]))
            .collect::<Result<_>>()?;
        for a in fd.rhs.iter() {
            out.push(XmlFd::new(lhs.clone(), [path_of(&flat.attrs()[a])?])?);
        }
    }
    // PNF FDs, recursively.
    fn pnf_fds(
        schema: &NestedSchema,
        node: &NestedSchema,
        parent: Option<&NestedSchema>,
        out: &mut Vec<XmlFd>,
    ) -> Result<()> {
        let node_path = nested_path(schema, node.name()).expect("node is in the schema");
        let mut lhs: Vec<Path> = Vec::new();
        if let Some(p) = parent {
            lhs.push(nested_path(schema, p.name()).expect("parent is in the schema"));
        }
        for a in node.atomic() {
            lhs.push(nested_path(schema, a).expect("attribute is in the schema"));
        }
        if !lhs.is_empty() {
            out.push(XmlFd::new(lhs, [node_path])?);
        }
        for c in node.children() {
            pnf_fds(schema, c, Some(node), out)?;
        }
        Ok(())
    }
    pnf_fds(schema, schema, None, &mut out)?;
    Ok(XmlFdSet::from_fds(out))
}

/// Codes a nested relation instance as a document conforming to
/// [`nested_to_dtd`].
pub fn nested_instance_to_tree(schema: &NestedSchema, tuples: &[NestedTuple]) -> Result<XmlTree> {
    fn emit(tree: &mut XmlTree, parent: xnf_xml::NodeId, schema: &NestedSchema, t: &NestedTuple) {
        let node = tree.add_child(parent, schema.name());
        for (attr, value) in schema.atomic().iter().zip(&t.atomic) {
            tree.set_attr(node, attr.as_str(), value.clone());
        }
        for (cs, sub) in schema.children().iter().zip(&t.children) {
            for s in sub {
                emit(tree, node, cs, s);
            }
        }
    }
    let mut tree = XmlTree::new("db");
    let root = tree.root();
    for t in tuples {
        emit(&mut tree, root, schema, t);
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xnf::is_xnf;
    use xnf_relational::bcnf::is_bcnf;
    use xnf_relational::fd::AttrSet;
    use xnf_relational::fd::Fd;
    use xnf_relational::nested::{is_nnf, unnest};

    fn s(ixs: &[usize]) -> AttrSet {
        let mut a = AttrSet::empty();
        for &i in ixs {
            a.insert(i);
        }
        a
    }

    #[test]
    fn example_5_3_coding() {
        let schema = RelSchema::new("G", ["A", "B", "C"]).unwrap();
        let dtd = relational_to_dtd(&schema).unwrap();
        assert_eq!(
            dtd.to_string(),
            "<!ELEMENT db (G*)>\n<!ELEMENT G EMPTY>\n<!ATTLIST G\n    A CDATA #REQUIRED\n    B CDATA #REQUIRED\n    C CDATA #REQUIRED>\n"
        );
        let fds = FdSet::from_fds([Fd::new(s(&[0]), s(&[1]))]);
        let xml_fds = relational_fds_to_xml(&schema, &fds).unwrap();
        let rendered: Vec<String> = xml_fds.iter().map(|f| f.to_string()).collect();
        assert!(rendered.contains(&"db.G.@A -> db.G.@B".to_string()));
        assert!(rendered.contains(&"db.G.@A, db.G.@B, db.G.@C -> db.G".to_string()));
    }

    #[test]
    fn proposition_4_bcnf_iff_xnf() {
        // Sweep small schemas with one or two FDs and compare the two
        // normal-form tests.
        let schema = RelSchema::new("G", ["A", "B", "C"]).unwrap();
        let all = AttrSet::full(3);
        let singles: Vec<AttrSet> = (0..3).map(|i| s(&[i])).collect();
        let mut cases: Vec<FdSet> = Vec::new();
        for l in &singles {
            for r in &singles {
                if l != r {
                    cases.push(FdSet::from_fds([Fd::new(*l, *r)]));
                    for l2 in &singles {
                        for r2 in &singles {
                            if l2 != r2 {
                                cases.push(FdSet::from_fds([Fd::new(*l, *r), Fd::new(*l2, *r2)]));
                            }
                        }
                    }
                }
            }
        }
        // Also some two-attribute LHS cases.
        cases.push(FdSet::from_fds([Fd::new(s(&[0, 1]), s(&[2]))]));
        cases.push(FdSet::from_fds([
            Fd::new(s(&[0, 1]), s(&[2])),
            Fd::new(s(&[2]), s(&[0])),
        ]));
        let dtd = relational_to_dtd(&schema).unwrap();
        for fds in cases {
            let xml_fds = relational_fds_to_xml(&schema, &fds).unwrap();
            let bcnf = is_bcnf(&fds, all);
            let xnf = is_xnf(&dtd, &xml_fds).unwrap();
            assert_eq!(
                bcnf,
                xnf,
                "Proposition 4 violated for {:?}",
                fds.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn relation_instance_round_trips_fd_satisfaction() {
        let schema = RelSchema::new("G", ["A", "B"]).unwrap();
        let mut rel = Relation::new(["A", "B"]).unwrap();
        rel.insert(vec![
            xnf_relational::Value::str("a1"),
            xnf_relational::Value::str("b1"),
        ])
        .unwrap();
        rel.insert(vec![
            xnf_relational::Value::str("a1"),
            xnf_relational::Value::str("b2"),
        ])
        .unwrap();
        let dtd = relational_to_dtd(&schema).unwrap();
        let tree = relation_to_tree(&schema, &rel).unwrap();
        assert!(xnf_xml::conforms(&tree, &dtd).is_ok());
        // A → B fails on the instance and on the coding alike.
        let ps = dtd.paths().unwrap();
        let fd: XmlFd = "db.G.@A -> db.G.@B".parse().unwrap();
        assert!(!fd.satisfied_by(&tree, &dtd, &ps).unwrap());
        assert!(!rel.satisfies_fd(&["A"], &["B"]).unwrap());
    }

    fn figure3_schema() -> NestedSchema {
        NestedSchema::new(
            "H1",
            ["Country"],
            [NestedSchema::new(
                "H2",
                ["State"],
                [NestedSchema::leaf("H3", ["City"])],
            )],
        )
    }

    #[test]
    fn nested_dtd_matches_paper() {
        let dtd = nested_to_dtd(&figure3_schema()).unwrap();
        // Exactly the DTD printed in Section 5.
        assert_eq!(
            dtd.to_string(),
            "<!ELEMENT db (H1*)>\n<!ELEMENT H1 (H2*)>\n<!ATTLIST H1\n    Country CDATA #REQUIRED>\n<!ELEMENT H2 (H3*)>\n<!ATTLIST H2\n    State CDATA #REQUIRED>\n<!ELEMENT H3 EMPTY>\n<!ATTLIST H3\n    City CDATA #REQUIRED>\n"
        );
    }

    #[test]
    fn nested_paths_match_paper() {
        let schema = figure3_schema();
        assert_eq!(nested_path(&schema, "H2").unwrap().to_string(), "db.H1.H2");
        assert_eq!(
            nested_path(&schema, "City").unwrap().to_string(),
            "db.H1.H2.H3.@City"
        );
        assert!(nested_path(&schema, "Ghost").is_none());
    }

    #[test]
    fn pnf_fds_match_paper() {
        // The three FDs displayed in Section 5 for the Figure 3 schema.
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        let xml_fds = nested_fds_to_xml(&schema, &flat, &FdSet::new()).unwrap();
        let rendered: Vec<String> = xml_fds.iter().map(|f| f.to_string()).collect();
        assert!(rendered.contains(&"db.H1.@Country -> db.H1".to_string()));
        assert!(rendered.contains(&"db.H1, db.H1.H2.@State -> db.H1.H2".to_string()));
        assert!(rendered.contains(&"db.H1.H2, db.H1.H2.H3.@City -> db.H1.H2.H3".to_string()));
        assert_eq!(xml_fds.len(), 3);
    }

    #[test]
    fn proposition_5_nnf_iff_xnf() {
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        let dtd = nested_to_dtd(&schema).unwrap();
        // Sweep all single-FD sets with singleton sides over the three
        // attributes.
        for l in 0..3usize {
            for r in 0..3usize {
                if l == r {
                    continue;
                }
                let fds = FdSet::from_fds([Fd::new(s(&[l]), s(&[r]))]);
                let nnf = is_nnf(&schema, &flat, &fds).unwrap();
                let xml_fds = nested_fds_to_xml(&schema, &flat, &fds).unwrap();
                let xnf = is_xnf(&dtd, &xml_fds).unwrap();
                assert_eq!(
                    nnf,
                    xnf,
                    "Proposition 5 violated for A{l} -> A{r} \
                     ({} -> {})",
                    flat.attrs()[l],
                    flat.attrs()[r]
                );
            }
        }
    }

    #[test]
    fn nested_instance_coding_conforms_and_satisfies_pnf_fds() {
        let schema = figure3_schema();
        let flat = schema.unnested_schema().unwrap();
        let inst = vec![NestedTuple::new(
            ["United States"],
            [vec![
                NestedTuple::new(
                    ["Texas"],
                    [vec![
                        NestedTuple::leaf(["Houston"]),
                        NestedTuple::leaf(["Dallas"]),
                    ]],
                ),
                NestedTuple::new(
                    ["Ohio"],
                    [vec![
                        NestedTuple::leaf(["Columbus"]),
                        NestedTuple::leaf(["Cleveland"]),
                    ]],
                ),
            ]],
        )];
        let dtd = nested_to_dtd(&schema).unwrap();
        let tree = nested_instance_to_tree(&schema, &inst).unwrap();
        assert!(xnf_xml::conforms(&tree, &dtd).is_ok());
        let xml_fds = nested_fds_to_xml(&schema, &flat, &FdSet::new()).unwrap();
        let ps = dtd.paths().unwrap();
        assert!(xml_fds.satisfied_by(&tree, &dtd, &ps).unwrap());
        // The document's tuple relation is the complete unnesting, plus
        // node columns: same cardinality as Figure 3(b).
        let rel = crate::tuples::tuples_relation(&tree, &dtd, &ps).unwrap();
        let unnested = unnest(&schema, &inst).unwrap();
        assert_eq!(rel.len(), unnested.len());
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn state_country_fd_holds_on_coding() {
        let schema = figure3_schema();
        let dtd = nested_to_dtd(&schema).unwrap();
        let ps = dtd.paths().unwrap();
        let inst = vec![NestedTuple::new(
            ["United States"],
            [vec![NestedTuple::new(
                ["Texas"],
                [vec![NestedTuple::leaf(["Houston"])]],
            )]],
        )];
        let tree = nested_instance_to_tree(&schema, &inst).unwrap();
        let fd: XmlFd = "db.H1.H2.@State -> db.H1.@Country".parse().unwrap();
        assert!(fd.satisfied_by(&tree, &dtd, &ps).unwrap());
    }
}
