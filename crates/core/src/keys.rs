//! Keys for XML, as the subclass of FDs the paper points out (Section 4:
//! "keys naturally appear as a subclass of FDs, and relative constraints
//! can also be encoded").
//!
//! * an **absolute key**: `S → p` with `S` a set of value paths — the
//!   values identify the `p`-node document-wide (FD1: `@cno` keys
//!   `course`);
//! * a **relative key**: `{q} ∪ S → p` — the values identify the
//!   `p`-node *per `q`-node* (FD2: `@sno` keys `student` relative to
//!   `course`).
//!
//! Key testing is FD implication; [`find_keys`] additionally *discovers*
//! minimal keys by searching the attribute paths available at the target
//! and its ancestors.

use crate::fd::{ResolvedFd, XmlFdSet};
use crate::implication::{Chase, Implication};
use crate::Result;
use xnf_dtd::{Dtd, Path, PathId};

/// A discovered key for a target element path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    /// The anchor element path for relative keys (`None` = absolute,
    /// i.e. relative to the root).
    pub relative_to: Option<Path>,
    /// The identifying value paths.
    pub paths: Vec<Path>,
    /// The identified element path.
    pub target: Path,
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let attrs = self
            .paths
            .iter()
            .map(Path::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        match &self.relative_to {
            Some(q) => write!(f, "{{{q}, {attrs}}} -> {}", self.target),
            None => write!(f, "{{{attrs}}} -> {}", self.target),
        }
    }
}

/// Whether `S → target` is implied by `(D, Σ)` — the absolute-key test.
pub fn is_key(dtd: &Dtd, sigma: &XmlFdSet, key_paths: &[Path], target: &Path) -> Result<bool> {
    let paths = dtd.paths()?;
    let chase = Chase::new(dtd, &paths);
    let resolved = sigma.resolve(&paths)?;
    let mut lhs = Vec::with_capacity(key_paths.len());
    for p in key_paths {
        lhs.push(
            paths
                .resolve(p)
                .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(p.to_string()))?,
        );
    }
    let t = paths
        .resolve(target)
        .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(target.to_string()))?;
    Ok(chase.implies(&resolved, &ResolvedFd::from_ids(lhs, [t])))
}

/// Discovers all minimal keys of `target` (an element path) with at most
/// `max_size` value paths, drawn from the attribute/text paths of the
/// target and of its ancestors; each ancestor is also tried as the
/// anchor of a relative key.
///
/// Exponential in `max_size` (subset search) — intended for the
/// schema-design workloads of this library, where attribute counts are
/// small.
pub fn find_keys(dtd: &Dtd, sigma: &XmlFdSet, target: &Path, max_size: usize) -> Result<Vec<Key>> {
    let paths = dtd.paths()?;
    let chase = Chase::new(dtd, &paths);
    let resolved = sigma.resolve(&paths)?;
    let t = paths
        .resolve(target)
        .ok_or_else(|| xnf_dtd::DtdError::NoSuchPath(target.to_string()))?;
    if !paths.is_element_path(t) {
        return Err(crate::CoreError::BadFdPath(format!(
            "key target `{target}` must be an element path"
        )));
    }

    // Candidate pool: value paths hanging off the target and its
    // ancestors.
    let mut anchors: Vec<Option<PathId>> = vec![None];
    let mut pool: Vec<PathId> = Vec::new();
    let mut cur = Some(t);
    while let Some(c) = cur {
        for &vp in paths.children_of(c) {
            if !paths.is_element_path(vp) {
                pool.push(vp);
            }
        }
        cur = paths.parent(c);
        if let Some(a) = cur {
            if a != paths.root() {
                anchors.push(Some(a));
            }
        }
    }
    pool.sort();
    pool.dedup();

    let mut found: Vec<(Option<PathId>, Vec<PathId>)> = Vec::new();
    let n = pool.len().min(16);
    for &anchor in &anchors {
        for mask in 1u32..(1u32 << n) {
            if (mask.count_ones() as usize) > max_size {
                continue;
            }
            let subset: Vec<PathId> = (0..n)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| pool[b])
                .collect();
            // Minimality within the same anchor (or a weaker one).
            if found
                .iter()
                .any(|(a, s)| (a.is_none() || *a == anchor) && s.iter().all(|x| subset.contains(x)))
            {
                continue;
            }
            let mut lhs = subset.clone();
            if let Some(a) = anchor {
                lhs.push(a);
            }
            if chase.implies(&resolved, &ResolvedFd::from_ids(lhs, [t])) {
                found.push((anchor, subset));
            }
        }
    }
    Ok(found
        .into_iter()
        .map(|(anchor, subset)| Key {
            relative_to: anchor.map(|a| paths.path(a)),
            paths: subset.into_iter().map(|p| paths.path(p)).collect(),
            target: target.clone(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::UNIVERSITY_FDS;
    use crate::fixtures::university_dtd;

    fn p(s: &str) -> Path {
        s.parse().expect("path parses")
    }

    #[test]
    fn fd1_makes_cno_an_absolute_key() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        assert!(is_key(
            &dtd,
            &sigma,
            &[p("courses.course.@cno")],
            &p("courses.course")
        )
        .unwrap());
        // Without Σ, @cno is not a key.
        assert!(!is_key(
            &dtd,
            &XmlFdSet::new(),
            &[p("courses.course.@cno")],
            &p("courses.course")
        )
        .unwrap());
    }

    #[test]
    fn sno_is_relative_not_absolute() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        // Absolute: @sno alone does not identify the student node.
        assert!(!is_key(
            &dtd,
            &sigma,
            &[p("courses.course.taken_by.student.@sno")],
            &p("courses.course.taken_by.student")
        )
        .unwrap());
        // Relative to the course (FD2), it does.
        assert!(is_key(
            &dtd,
            &sigma,
            &[
                p("courses.course"),
                p("courses.course.taken_by.student.@sno")
            ],
            &p("courses.course.taken_by.student")
        )
        .unwrap());
        // And via FD1, {@cno, @sno} is an absolute key of student.
        assert!(is_key(
            &dtd,
            &sigma,
            &[
                p("courses.course.@cno"),
                p("courses.course.taken_by.student.@sno")
            ],
            &p("courses.course.taken_by.student")
        )
        .unwrap());
    }

    #[test]
    fn discovery_finds_the_published_keys() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let course_keys = find_keys(&dtd, &sigma, &p("courses.course"), 2).unwrap();
        assert!(
            course_keys
                .iter()
                .any(|k| k.relative_to.is_none() && k.paths == vec![p("courses.course.@cno")]),
            "{course_keys:?}"
        );

        let student_keys =
            find_keys(&dtd, &sigma, &p("courses.course.taken_by.student"), 2).unwrap();
        // The absolute {@cno, @sno} key.
        assert!(student_keys.iter().any(|k| k.relative_to.is_none()
            && k.paths
                == vec![
                    p("courses.course.@cno"),
                    p("courses.course.taken_by.student.@sno")
                ]));
        // The relative {course; @sno} key.
        assert!(student_keys
            .iter()
            .any(|k| k.relative_to == Some(p("courses.course"))
                && k.paths == vec![p("courses.course.taken_by.student.@sno")]));
    }

    #[test]
    fn no_spurious_keys_without_sigma() {
        let dtd = university_dtd();
        let keys = find_keys(&dtd, &XmlFdSet::new(), &p("courses.course"), 2).unwrap();
        assert!(keys.is_empty(), "{keys:?}");
    }

    #[test]
    fn key_display() {
        let k = Key {
            relative_to: Some(p("courses.course")),
            paths: vec![p("courses.course.taken_by.student.@sno")],
            target: p("courses.course.taken_by.student"),
        };
        assert_eq!(
            k.to_string(),
            "{courses.course, courses.course.taken_by.student.@sno} -> courses.course.taken_by.student"
        );
    }

    #[test]
    fn non_element_target_rejected() {
        let dtd = university_dtd();
        assert!(find_keys(&dtd, &XmlFdSet::new(), &p("courses.course.@cno"), 1).is_err());
    }
}
