//! # `xnf-core` — XML functional dependencies, XNF, and lossless
//! normalization
//!
//! The primary contribution of Arenas & Libkin, *"A Normal Form for XML
//! Documents"* (PODS 2002), implemented in full:
//!
//! * [`mod@tuple`] — **tree tuples** (Definition 4) and `tree_D(t)`
//!   (Definition 5): the relational representation of XML documents.
//! * [`tuples`] — `tuples_D(T)` (Definition 6) and `trees_D(X)`
//!   (Definition 7), with the Theorem 1 round-trip
//!   `trees_D(tuples_D(T)) = [T]`.
//! * [`fd`] — functional dependencies for XML (Section 4): expressions
//!   `S₁ → S₂` over `paths(D)`, with satisfaction defined on the tree-tuple
//!   relation under the incomplete-relation semantics.
//! * [`implication`] — the implication problem `(D, Σ) ⊢ φ` (Section 7): a
//!   sound two-tuple chase that is fast (near-quadratic) on simple DTDs
//!   (Theorem 3) and handles disjunctive DTDs (Theorem 4), plus an
//!   exhaustive counterexample search realizing the coNP upper bound
//!   (Theorem 5) used for validation.
//! * [`xnf`] — the XML normal form **XNF** (Definition 8), anomalous FDs
//!   and anomalous paths `AP(D, Σ)`, with the Proposition 10 fast path.
//! * [`mod@normalize`] — the XNF decomposition algorithm (Figure 4): *moving
//!   attributes* and *creating new element types*, `(D,Σ)`-minimal
//!   anomalous FD selection, and a machine-checkable step trace.
//! * [`lossless`] — document-level counterparts of the two schema
//!   transformations and the Section 6 losslessness check (round-trip
//!   reconstruction plus the `tuples_D` commuting diagram on Codd tables).
//! * [`encode`] — the codings of Section 5: relational schemas as DTDs
//!   (Proposition 4: BCNF ⇔ XNF) and nested relational schemas as DTDs
//!   (Proposition 5: NNF ⇔ XNF).
//! * [`keys`] — keys as the FD subclass of Section 4 (absolute and
//!   relative), with minimal-key discovery.
//! * [`shred`] — the XML→relational shredding backend: compiling
//!   `(D, Σ)` to tables with Σ-derived FDs, shredding documents into
//!   rows and reconstructing them exactly (the executable side of the
//!   Proposition 4 correspondence: XNF schemas shred to BCNF tables).
//! * [`mod@mvd`] — XML multivalued dependencies with swap semantics over
//!   tree tuples, and the structurally induced MVDs of Section 8.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod encode;
pub mod fd;
pub mod flight;
pub mod implication;
pub mod keys;
pub mod lossless;
pub mod mvd;
pub mod normalize;
pub mod shred;
pub mod tuple;
pub mod tuples;
pub mod xnf;

pub use crate::analyze::{analyze, Analysis, AnalyzeOptions, AnomalyInfo, CostEstimate, FdGraph};
pub use crate::fd::{XmlFd, XmlFdSet};
pub use crate::flight::{spec_cache_key, CacheStats, ShardedCache};
pub use crate::implication::{
    Chase, ChaseConfig, ChaseStats, ChaseStatsSnapshot, CounterexampleSearch, DtdDelta,
    Implication, ImplicationCache, IncrementalCache, InvalidationReport, RunTrace, ShardPlan,
    SigmaDelta,
};
pub use crate::lossless::{
    restore_document, transform_document, verify_lossless, verify_lossless_trace, LosslessReport,
    StepReport,
};
pub use crate::normalize::{normalize, NormalizeOptions, NormalizeResult, NormalizeStats, Step};
pub use crate::shred::{
    compile_schema, shred_document, unshred_document, ShredSchema, FD_ENUMERATION_WIDTH,
};
pub use crate::tuple::TreeTuple;
pub use crate::tuples::{trees_d, tuples_d, tuples_d_recursive, tuples_relation};
pub use crate::xnf::{
    anomalous_fds, anomalous_fds_governed, anomalous_fds_sharded, anomalous_fds_threaded, is_xnf,
    is_xnf_governed,
};

use std::fmt;
use xnf_dtd::DtdError;

/// Errors produced by the core layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying DTD error (unknown path, recursive DTD, …).
    Dtd(DtdError),
    /// The tree is not compatible with the DTD (`paths(T) ⊄ paths(D)`), so
    /// `tuples_D(T)` is undefined.
    NotCompatible,
    /// A set of tree tuples is not `D`-compatible: the tuples cannot be
    /// merged into one tree (conflicting labels, parents, attributes or
    /// text for a shared vertex, or distinct roots).
    InconsistentTuples(String),
    /// An FD has an empty side.
    EmptyFd,
    /// The normalization algorithm only supports non-recursive DTDs (the
    /// paper notes the recursive case "can be handled in a very similar
    /// fashion"; see DESIGN.md).
    RecursiveNormalization,
    /// The normalization step limit was exceeded — this indicates a bug, as
    /// Proposition 6 guarantees the anomalous-path count strictly
    /// decreases.
    TooManySteps,
    /// A document transformation would need a null value where the revised
    /// DTD requires an attribute (the footnote-1 case of Section 6, not
    /// implemented; see DESIGN.md).
    UnrepresentableNull {
        /// The path whose value is null.
        path: String,
    },
    /// An FD path ends in `.S` under an element that is not `#PCDATA`, or a
    /// preprocessing rewrite is impossible (e.g. folding a repeated
    /// element).
    BadFdPath(String),
    /// A resource budget ran out mid-computation (see [`xnf_govern`]). The
    /// answer is unknown — callers must not treat this as a negative
    /// verdict.
    Exhausted(xnf_govern::Exhausted),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dtd(e) => write!(f, "{e}"),
            CoreError::NotCompatible => {
                write!(
                    f,
                    "tree is not compatible with the DTD (paths(T) ⊄ paths(D))"
                )
            }
            CoreError::InconsistentTuples(why) => {
                write!(f, "tree tuples are not D-compatible: {why}")
            }
            CoreError::EmptyFd => write!(f, "functional dependencies need non-empty sides"),
            CoreError::RecursiveNormalization => {
                write!(
                    f,
                    "the normalization algorithm requires a non-recursive DTD"
                )
            }
            CoreError::TooManySteps => {
                write!(
                    f,
                    "normalization exceeded its step limit (internal invariant violated)"
                )
            }
            CoreError::UnrepresentableNull { path } => write!(
                f,
                "document transformation hit a null value of `{path}` that the revised DTD \
                 cannot represent (Section 6, footnote 1)"
            ),
            CoreError::BadFdPath(p) => write!(f, "FD path `{p}` cannot be used here"),
            CoreError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dtd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DtdError> for CoreError {
    fn from(e: DtdError) -> Self {
        CoreError::Dtd(e)
    }
}

impl From<xnf_govern::Exhausted> for CoreError {
    fn from(e: xnf_govern::Exhausted) -> Self {
        CoreError::Exhausted(e)
    }
}

/// The shared ungoverned budget, for infallible wrappers around governed
/// internals (its checkpoints can never fail).
pub(crate) const UNLIMITED: &xnf_govern::Budget = &xnf_govern::Budget::unlimited();

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
pub(crate) mod fixtures {
    //! Shared paper fixtures used across the crate's unit tests.

    use xnf_dtd::{parse_dtd, Dtd};
    use xnf_xml::XmlTree;

    /// The university DTD of Example 1.1(a).
    pub fn university_dtd() -> Dtd {
        parse_dtd(
            "<!ELEMENT courses (course*)>
             <!ELEMENT course (title, taken_by)>
             <!ATTLIST course cno CDATA #REQUIRED>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT taken_by (student*)>
             <!ELEMENT student (name, grade)>
             <!ATTLIST student sno CDATA #REQUIRED>
             <!ELEMENT name (#PCDATA)>
             <!ELEMENT grade (#PCDATA)>",
        )
        .expect("university DTD parses")
    }

    /// The document of Figure 1(a).
    pub fn figure_1a() -> XmlTree {
        xnf_xml::parse(
            r#"<courses>
              <course cno="csc200">
                <title>Automata Theory</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A+</grade></student>
                  <student sno="st2"><name>Smith</name><grade>B-</grade></student>
                </taken_by>
              </course>
              <course cno="mat100">
                <title>Calculus I</title>
                <taken_by>
                  <student sno="st1"><name>Deere</name><grade>A-</grade></student>
                  <student sno="st3"><name>Smith</name><grade>B+</grade></student>
                </taken_by>
              </course>
            </courses>"#,
        )
        .expect("figure 1(a) parses")
    }

    /// The DBLP DTD of Example 1.2.
    pub fn dblp_dtd() -> Dtd {
        parse_dtd(
            "<!ELEMENT db (conf*)>
             <!ELEMENT conf (title, issue+)>
             <!ELEMENT title (#PCDATA)>
             <!ELEMENT issue (inproceedings+)>
             <!ELEMENT inproceedings (author+, title, booktitle)>
             <!ATTLIST inproceedings
                 key CDATA #REQUIRED
                 pages CDATA #REQUIRED
                 year CDATA #REQUIRED>
             <!ELEMENT author (#PCDATA)>
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .expect("DBLP DTD parses")
    }

    /// A small DBLP document conforming to [`dblp_dtd`].
    pub fn dblp_doc() -> XmlTree {
        xnf_xml::parse(
            r#"<db>
              <conf>
                <title>PODS</title>
                <issue>
                  <inproceedings key="p1" pages="1-12" year="2001">
                    <author>Fan</author><author>Libkin</author>
                    <title>On XML integrity constraints</title>
                    <booktitle>PODS 01</booktitle>
                  </inproceedings>
                  <inproceedings key="p2" pages="13-24" year="2001">
                    <author>Buneman</author>
                    <title>Keys for XML</title>
                    <booktitle>PODS 01</booktitle>
                  </inproceedings>
                </issue>
                <issue>
                  <inproceedings key="p3" pages="1-10" year="2002">
                    <author>Arenas</author>
                    <title>A normal form for XML documents</title>
                    <booktitle>PODS 02</booktitle>
                  </inproceedings>
                </issue>
              </conf>
            </db>"#,
        )
        .expect("DBLP document parses")
    }
}
