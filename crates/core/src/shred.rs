//! XML→relational shredding: compiling `(D, Σ)` to a table design,
//! shredding documents into rows, and reconstructing them exactly.
//!
//! The scheme is the hybrid-inlining variant of the Atay et al. recipe
//! (PAPERS.md), specialized to the paper's tree model: one table per
//! element path of `D`, except that a **singleton text child** — a
//! `#PCDATA` element that occurs exactly once under its parent and
//! carries no attributes — is inlined as a column of the parent's
//! table. Each table has a surrogate `xnf_id` (the node's ordinal among
//! the nodes at its path, document order), an `xnf_parent` foreign key
//! into the parent path's table, an `xnf_pos` column (index in the
//! parent's child list, making reconstruction *exact*, not just up to
//! sibling reordering; inlined children record their position too), one
//! column per DTD attribute and one per inlined child / own `#PCDATA`
//! content. The shreddable subset is exactly the non-recursive DTDs —
//! the same class the normalization algorithm accepts — since
//! `paths(D)` must be finite.
//!
//! The Σ-derived FDs on each table are computed through the chase
//! ([`ImplicationCache`]): a column set `X` functionally determines a
//! value column `y` in the table of path `p` iff `(D, Σ) ⊢ X̂ → ŷ` for
//! the corresponding paths, and `X` is a key iff `(D, Σ) ⊢ X̂ → p`.
//! With that dictionary, a BCNF violation in an emitted table *is* an
//! anomalous FD of Definition 8 whose left-hand side lies in the
//! table's columns: for inlined columns `p.c.S` this uses the
//! chase-provable bijection `p ↔ p.c` of singleton children, so the
//! paper's two running anomalies both surface as table-local BCNF
//! defects (`@sno → name.S` in `student`, `issue → @year` in
//! `inproceedings`). This is why every table of an XNF-normalized
//! schema is BCNF — the executable Proposition 4 correspondence; see
//! DESIGN.md §12 for the exact statement and its boundary.

use crate::fd::ResolvedFd;
use crate::implication::{Chase, Implication, ImplicationCache};
use crate::{CoreError, Result};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xnf_dtd::{Dtd, Path, PathId, PathSet, Step};
use xnf_govern::Budget;
use xnf_relational::shred::{Column, ColumnRole, ForeignKey, RelDesign, ShreddedDoc, TableRows};
use xnf_relational::{AttrSet, Fd, FdSet, TableSchema, Value};
use xnf_xml::{nodes_at, NodeId, XmlTree};

/// Above this many chase-representable columns the FD derivation stops
/// enumerating the full powerset of left-hand sides and falls back to
/// singletons, pairs, and the Σ-mapped sets (`xnf-lint`'s wide-table
/// diagnostic surfaces the truncation).
pub const FD_ENUMERATION_WIDTH: usize = 6;

/// Where a column's value comes from when shredding a node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ColSource {
    /// The node ordinal (primary key).
    Id,
    /// The parent node's ordinal in the parent table.
    Parent,
    /// The node's index in its parent's child list.
    Pos,
    /// The value of attribute `@name`.
    Attr(Box<str>),
    /// The node's own `#PCDATA` content.
    Text,
    /// The text of the inlined singleton child element `name`.
    InlineText(Box<str>),
    /// The child-list index of the inlined singleton child `name`.
    InlinePos(Box<str>),
}

/// Per-table mapping back to the DTD: the element path, the parent
/// table, and each column's source.
#[derive(Debug, Clone)]
struct TableMap {
    /// The element path this table stores.
    path: PathId,
    /// Index of the parent path's table (`None` for the root table).
    parent_table: Option<usize>,
    /// Column sources, parallel to the design table's columns.
    sources: Vec<ColSource>,
}

/// A compiled shredding schema: the relational design plus the mapping
/// back to `paths(D)` needed to shred and reconstruct documents.
#[derive(Debug, Clone)]
pub struct ShredSchema {
    /// The relational design: tables (parent-before-child), keys,
    /// foreign keys, and the Σ-derived per-table FDs.
    pub design: RelDesign,
    paths: PathSet,
    maps: Vec<TableMap>,
    root_name: Box<str>,
}

impl ShredSchema {
    /// Number of tables (= element paths of `D` minus inlined ones).
    pub fn num_tables(&self) -> usize {
        self.design.tables.len()
    }

    /// The element path stored by table `ix`.
    pub fn table_path(&self, ix: usize) -> Path {
        self.paths.path(self.maps[ix].path)
    }

    /// The DTD path a column of table `ix` corresponds to: the table's
    /// element path for the id, the parent element path for the parent
    /// column, `p.@l` / `p.S` / `p.c.S` for data columns, and `None`
    /// for the order-only position columns.
    pub fn column_path(&self, ix: usize, col: usize) -> Option<Path> {
        let map = &self.maps[ix];
        let p = self.paths.path(map.path);
        match map.sources.get(col)? {
            ColSource::Id => Some(p),
            ColSource::Parent => p.parent(),
            ColSource::Pos | ColSource::InlinePos(_) => None,
            ColSource::Attr(name) => Some(p.child_attr(name.clone())),
            ColSource::Text => Some(p.child_text()),
            ColSource::InlineText(name) => Some(p.child_elem(name.clone()).child_text()),
        }
    }

    /// Renders a per-table BCNF violation as the XML FD it witnesses
    /// (`None` only if an order-only column is involved, which derived
    /// FDs never are).
    pub fn violation_as_xml_fd(&self, ix: usize, fd: &Fd) -> Option<crate::XmlFd> {
        let lhs: Option<Vec<Path>> = fd.lhs.iter().map(|c| self.column_path(ix, c)).collect();
        let rhs: Option<Vec<Path>> = fd
            .rhs
            .minus(fd.lhs)
            .iter()
            .map(|c| self.column_path(ix, c))
            .collect();
        crate::XmlFd::new(lhs?, rhs?).ok()
    }

    /// The tables (index, name, violation) that are **not** in BCNF
    /// under their Σ-derived FDs. Empty for XNF-normalized specs.
    pub fn non_bcnf_tables(&self) -> Vec<(usize, String, Fd)> {
        self.design
            .tables
            .iter()
            .enumerate()
            .filter_map(|(ix, t)| t.bcnf_violation().map(|fd| (ix, t.name.clone(), fd)))
            .collect()
    }
}

/// Compiles `(D, Σ)` into a [`ShredSchema`]: tables, keys, foreign
/// keys, and the Σ-derived per-table FDs. Fails with
/// [`CoreError::RecursiveNormalization`] on recursive DTDs (the
/// shreddable subset is the non-recursive one) and with
/// [`CoreError::Exhausted`] when `budget` runs out.
pub fn compile_schema(dtd: &Dtd, sigma: &crate::XmlFdSet, budget: &Budget) -> Result<ShredSchema> {
    let _span = budget.recorder().span("shred.compile", "shred");
    if dtd.is_recursive() {
        return Err(CoreError::RecursiveNormalization);
    }
    let paths = dtd.paths()?;
    let resolved = sigma.resolve(&paths)?;
    let chase = Chase::new(dtd, &paths).with_budget(budget.clone());

    // Singleton text children get inlined into their parent's table.
    let inlined: BTreeSet<PathId> = paths
        .epaths()
        .filter(|&p| {
            let elem = paths.last_elem(p).expect("element paths end in elements");
            paths.parent(p).is_some()
                && chase.is_singleton_child(p)
                && dtd.content(elem).is_text()
                && dtd.attrs(elem).next().is_none()
        })
        .collect();

    // Table paths, parents before children (path length, then the
    // rendered path, for determinism).
    let mut epaths: Vec<PathId> = paths.epaths().filter(|p| !inlined.contains(p)).collect();
    epaths.sort_by_key(|&p| (paths.path_len(p), paths.format(p)));
    let table_of: BTreeMap<PathId, usize> =
        epaths.iter().enumerate().map(|(i, &p)| (p, i)).collect();

    // How often each element name occurs as a table path's tail: unique
    // names keep the element name as table name, shared ones get the
    // full path, and residual clashes a numeric suffix.
    let mut name_count: BTreeMap<&str, usize> = BTreeMap::new();
    for &p in &epaths {
        let elem = paths.last_elem(p).expect("element paths end in elements");
        *name_count.entry(dtd.name(elem)).or_default() += 1;
    }
    let mut used_names: BTreeSet<String> = BTreeSet::new();

    let oracle = ImplicationCache::new(&chase, &resolved);
    let mut tables: Vec<TableSchema> = Vec::with_capacity(epaths.len());
    let mut maps = Vec::with_capacity(epaths.len());
    for &p in &epaths {
        budget.checkpoint("shred.table")?;
        let elem = paths.last_elem(p).expect("element paths end in elements");
        let base = if name_count[dtd.name(elem)] == 1 {
            sanitize_ident(dtd.name(elem))
        } else {
            sanitize_ident(&paths.format(p).replace('.', "_"))
        };
        let mut table_name = base.clone();
        let mut n = 1;
        while !used_names.insert(table_name.clone()) {
            n += 1;
            table_name = format!("{base}_{n}");
        }

        let is_root = paths.parent(p).is_none();
        let mut columns = vec![Column {
            name: "xnf_id".to_string(),
            role: ColumnRole::Id,
        }];
        let mut sources = vec![ColSource::Id];
        if !is_root {
            columns.push(Column {
                name: "xnf_parent".to_string(),
                role: ColumnRole::Parent,
            });
            sources.push(ColSource::Parent);
            columns.push(Column {
                name: "xnf_pos".to_string(),
                role: ColumnRole::Pos,
            });
            sources.push(ColSource::Pos);
        }
        for attr in dtd.attrs(elem) {
            let name = unique_column_name(&columns, &sanitize_ident(attr));
            columns.push(Column {
                name,
                role: ColumnRole::Attr,
            });
            sources.push(ColSource::Attr(attr.into()));
        }
        if dtd.content(elem).is_text() {
            let name = unique_column_name(&columns, "xnf_text");
            columns.push(Column {
                name,
                role: ColumnRole::Text,
            });
            sources.push(ColSource::Text);
        }
        for &cp in paths.children_of(p) {
            if !inlined.contains(&cp) {
                continue;
            }
            let Step::Elem(child) = paths.step(cp) else {
                continue;
            };
            let text_name = unique_column_name(&columns, &sanitize_ident(child));
            columns.push(Column {
                name: text_name,
                role: ColumnRole::Text,
            });
            sources.push(ColSource::InlineText(child.clone()));
            let pos_name = unique_column_name(&columns, &format!("{}_pos", sanitize_ident(child)));
            columns.push(Column {
                name: pos_name,
                role: ColumnRole::Pos,
            });
            sources.push(ColSource::InlinePos(child.clone()));
        }

        let mut table = TableSchema::new(table_name, columns);
        let parent_table = paths.parent(p).map(|pp| table_of[&pp]);
        if let Some(pt) = parent_table {
            table.foreign_key = Some(ForeignKey {
                column: "xnf_parent".to_string(),
                parent_table: tables[pt].name.clone(),
                parent_column: "xnf_id".to_string(),
            });
        }
        derive_table_fds(&oracle, &resolved, &paths, p, &mut table, &sources, budget)?;
        tables.push(table);
        maps.push(TableMap {
            path: p,
            parent_table,
            sources,
        });
    }

    let root_name: Box<str> = match paths.step(paths.root()) {
        Step::Elem(name) => name.clone(),
        _ => unreachable!("the root path is an element path"),
    };
    Ok(ShredSchema {
        design: RelDesign { tables },
        paths,
        maps,
        root_name,
    })
}

/// Derives the Σ-implied FDs over one table's columns through the
/// chase, records them in `table.fds`, and distills unique keys.
///
/// Every chase query is anchored at the table's path `p`: for a set `X`
/// of column paths, `X → p` makes `X` a superkey (the surrogate id *is*
/// the node), otherwise each implied, non-trivial `X → y` onto a value
/// column is recorded — precisely an anomalous FD of Definition 8
/// localized to this table. FDs onto the parent column are deliberately
/// not derived: Definition 8 only ranges over attribute and text
/// right-hand sides, so `X → parent(p)` without `X → p` is not an
/// anomaly and must not read as a BCNF defect.
fn derive_table_fds(
    oracle: &ImplicationCache<'_>,
    sigma: &[ResolvedFd],
    paths: &PathSet,
    p: PathId,
    table: &mut TableSchema,
    sources: &[ColSource],
    budget: &Budget,
) -> Result<()> {
    let ncols = table.columns.len();
    let col_path = |i: usize| -> Option<PathId> {
        match &sources[i] {
            ColSource::Id => Some(p),
            ColSource::Parent => paths.parent(p),
            ColSource::Pos | ColSource::InlinePos(_) => None,
            ColSource::Attr(name) => paths.resolve(&paths.path(p).child_attr(name.clone())),
            ColSource::Text => paths.resolve(&paths.path(p).child_text()),
            ColSource::InlineText(name) => {
                paths.resolve(&paths.path(p).child_elem(name.clone()).child_text())
            }
        }
    };
    let id_col = 0usize;
    let (mut parent_col, mut pos_col) = (None, None);
    let mut value_cols: Vec<(usize, PathId)> = Vec::new();
    let mut lhs_candidates: Vec<(usize, PathId)> = Vec::new();
    for (i, source) in sources.iter().enumerate() {
        match source {
            ColSource::Id | ColSource::InlinePos(_) => {}
            ColSource::Parent => {
                parent_col = Some(i);
                if let Some(q) = col_path(i) {
                    lhs_candidates.push((i, q));
                }
            }
            ColSource::Pos => pos_col = Some(i),
            ColSource::Attr(_) | ColSource::Text | ColSource::InlineText(_) => {
                if let Some(q) = col_path(i) {
                    value_cols.push((i, q));
                    lhs_candidates.push((i, q));
                }
            }
        }
    }

    let mut fds = FdSet::new();
    // Structural axioms: the surrogate id is the node, and a node is
    // its parent's child at its position.
    fds.push(Fd::new(AttrSet::singleton(id_col), AttrSet::full(ncols)));
    if let (Some(parent), Some(pos)) = (parent_col, pos_col) {
        let mut lhs = AttrSet::singleton(parent);
        lhs.insert(pos);
        fds.push(Fd::new(lhs, AttrSet::singleton(id_col)));
    }

    // Left-hand sides to probe: the full powerset on narrow tables,
    // singletons + pairs + Σ-mapped sets on wide ones.
    let mut lhs_sets: Vec<Vec<usize>> = Vec::new();
    if lhs_candidates.len() <= FD_ENUMERATION_WIDTH {
        for mask in 1u32..(1 << lhs_candidates.len()) {
            lhs_sets.push(
                (0..lhs_candidates.len())
                    .filter(|b| mask & (1 << b) != 0)
                    .map(|b| lhs_candidates[b].0)
                    .collect(),
            );
        }
    } else {
        for &(i, _) in &lhs_candidates {
            lhs_sets.push(vec![i]);
        }
        for &(a, _) in &lhs_candidates {
            for &(b, _) in &lhs_candidates {
                if a < b {
                    lhs_sets.push(vec![a, b]);
                }
            }
        }
        // Σ FDs whose left-hand side lies entirely in this table keep
        // their exact shape even past the width cap.
        let by_path: BTreeMap<PathId, usize> =
            lhs_candidates.iter().map(|&(i, q)| (q, i)).collect();
        for fd in sigma {
            let cols: Option<Vec<usize>> = fd.lhs.iter().map(|q| by_path.get(q).copied()).collect();
            if let Some(cols) = cols {
                if cols.len() > 2 {
                    lhs_sets.push(cols);
                }
            }
        }
    }

    let mut key_sets: Vec<AttrSet> = Vec::new();
    for cols in lhs_sets {
        budget.checkpoint("shred.fd")?;
        let lhs_ids: Vec<PathId> = cols
            .iter()
            .map(|&i| col_path(i).expect("lhs candidates are chase-representable"))
            .collect();
        let mut lhs = AttrSet::empty();
        for &i in &cols {
            lhs.insert(i);
        }
        let node_fd = ResolvedFd::from_ids(lhs_ids.iter().copied(), [p]);
        if oracle.try_implies(sigma, &node_fd)? {
            fds.push(Fd::new(lhs, AttrSet::singleton(id_col)));
            key_sets.push(lhs);
            continue;
        }
        for &(y, yq) in &value_cols {
            if lhs.contains(y) {
                continue;
            }
            budget.checkpoint("shred.fd")?;
            let fd = ResolvedFd::from_ids(lhs_ids.iter().copied(), [yq]);
            if oracle.try_implies(sigma, &fd)? && !oracle.try_is_trivial(&fd)? {
                fds.push(Fd::new(lhs, AttrSet::singleton(y)));
            }
        }
    }

    // Unique keys: minimal derived keys over data columns only (the
    // structural (parent, pos) pair is added as an integrity key).
    let data_cols: AttrSet = value_cols.iter().fold(AttrSet::empty(), |mut s, &(i, _)| {
        s.insert(i);
        s
    });
    let mut unique: Vec<AttrSet> = key_sets
        .iter()
        .copied()
        .filter(|&k| k.is_subset(data_cols))
        .collect();
    unique.retain(|&k| {
        !key_sets
            .iter()
            .any(|&other| other != k && other.is_subset(k))
    });
    unique.sort();
    unique.dedup();
    for key in unique {
        table
            .unique_keys
            .push(key.iter().map(|i| table.columns[i].name.clone()).collect());
    }
    if let (Some(parent), Some(pos)) = (parent_col, pos_col) {
        table.unique_keys.push(vec![
            table.columns[parent].name.clone(),
            table.columns[pos].name.clone(),
        ]);
    }
    table.fds = fds;
    Ok(())
}

/// Shreds a document into rows for every table of `schema`. The tree
/// must be compatible with the schema's DTD (every node lies at some
/// element path and singleton children are actually singleton); order
/// is captured in the position columns, so [`unshred_document`]
/// reconstructs the document *exactly*.
pub fn shred_document(
    schema: &ShredSchema,
    tree: &XmlTree,
    budget: &Budget,
) -> Result<ShreddedDoc> {
    let _span = budget.recorder().span("shred.rows", "shred");
    if tree.label(tree.root()) != &*schema.root_name {
        return Err(CoreError::NotCompatible);
    }
    // Node → ordinal per table: nodes_at returns document order, which
    // fixes the surrogate ids.
    let mut ordinal: HashMap<NodeId, u64> = HashMap::new();
    let mut per_table: Vec<Vec<NodeId>> = Vec::with_capacity(schema.maps.len());
    let mut covered = 0usize;
    for map in &schema.maps {
        let nodes = nodes_at(tree, &schema.paths.path(map.path));
        for (ord, &v) in nodes.iter().enumerate() {
            ordinal.insert(v, ord as u64);
        }
        covered += nodes.len();
        per_table.push(nodes);
    }

    // Resolves the singleton child `name` of `v`, checking it really is
    // a lone, attribute-free node without element children.
    let singleton_child = |v: NodeId, name: &str| -> Result<NodeId> {
        let found = tree.children_labelled(v, name);
        let [child] = found[..] else {
            return Err(CoreError::NotCompatible);
        };
        if tree.num_attrs(child) > 0 || !tree.children(child).is_empty() {
            return Err(CoreError::NotCompatible);
        }
        Ok(child)
    };
    let child_pos = |v: NodeId| -> u64 {
        let parent = tree.parent(v).expect("non-root nodes have parents");
        tree.children(parent)
            .iter()
            .position(|&c| c == v)
            .expect("children lists contain their members") as u64
    };

    let mut tables = Vec::with_capacity(schema.maps.len());
    for (ix, map) in schema.maps.iter().enumerate() {
        let mut rows = Vec::with_capacity(per_table[ix].len());
        for (ord, &v) in per_table[ix].iter().enumerate() {
            budget.checkpoint("shred.row")?;
            let mut row = Vec::with_capacity(map.sources.len());
            for source in &map.sources {
                row.push(match source {
                    ColSource::Id => Value::Vert(ord as u64),
                    ColSource::Parent => {
                        let parent = tree.parent(v).expect("non-root nodes have parents");
                        Value::Vert(*ordinal.get(&parent).ok_or(CoreError::NotCompatible)?)
                    }
                    ColSource::Pos => Value::Vert(child_pos(v)),
                    ColSource::Attr(name) => tree.attr(v, name).map_or(Value::Null, Value::str),
                    ColSource::Text => tree.text(v).map_or(Value::Null, Value::str),
                    ColSource::InlineText(name) => {
                        let child = singleton_child(v, name)?;
                        covered += 1;
                        tree.text(child).map_or(Value::Null, Value::str)
                    }
                    ColSource::InlinePos(name) => Value::Vert(child_pos(singleton_child(v, name)?)),
                });
            }
            rows.push(row);
        }
        tables.push(TableRows {
            table: schema.design.tables[ix].name.clone(),
            rows,
        });
    }
    if covered != tree.num_nodes() {
        // Some node sits at no element path of D: not shreddable.
        return Err(CoreError::NotCompatible);
    }
    Ok(ShreddedDoc { tables })
}

/// A child slot of a node being rebuilt: a nested row to recurse into
/// or an inlined leaf to materialize directly. Ordered by the recorded
/// position, restoring the exact child sequence.
enum ChildSlot {
    /// `(table, row)` of a child-table row.
    Row(usize, usize),
    /// Inlined singleton: label and optional text.
    Leaf(Box<str>, Option<Box<str>>),
}

/// Reconstructs the document from shredded rows: the exact inverse of
/// [`shred_document`] (child order is restored from the position
/// columns). Fails with a structured [`CoreError::InconsistentTuples`]
/// on tampered rows — dangling parents, duplicated positions, arity
/// mismatches — never panics.
pub fn unshred_document(
    schema: &ShredSchema,
    doc: &ShreddedDoc,
    budget: &Budget,
) -> Result<XmlTree> {
    let _span = budget.recorder().span("shred.rebuild", "shred");
    let shred_err = |msg: String| CoreError::InconsistentTuples(msg);
    if doc.tables.len() != schema.maps.len() {
        return Err(shred_err(format!(
            "expected rows for {} tables, got {}",
            schema.maps.len(),
            doc.tables.len()
        )));
    }
    let vert = |v: &Value, what: &str| -> Result<u64> {
        match v {
            Value::Vert(n) => Ok(*n),
            other => Err(shred_err(format!("{what} must be an ordinal, got {other}"))),
        }
    };

    // Nested-row children of each node, keyed by (table, surrogate id)
    // of the parent; consumed as parents materialize. Each child is its
    // position ordinal plus its own (table, row) coordinates.
    type ChildRef = (u64, usize, usize);
    let mut children: HashMap<(usize, u64), Vec<ChildRef>> = HashMap::new();
    let mut root_row: Option<usize> = None;
    for (ix, (map, rows)) in schema.maps.iter().zip(&doc.tables).enumerate() {
        if rows.table != schema.design.tables[ix].name {
            return Err(shred_err(format!(
                "table `{}` out of place (expected `{}`)",
                rows.table, schema.design.tables[ix].name
            )));
        }
        let (id_col, parent_col, pos_col) = structural_columns(&map.sources);
        for (r, row) in rows.rows.iter().enumerate() {
            budget.checkpoint("shred.rebuild")?;
            if row.len() != map.sources.len() {
                return Err(shred_err(format!(
                    "table `{}` row has {} values, schema has {} columns",
                    rows.table,
                    row.len(),
                    map.sources.len()
                )));
            }
            match map.parent_table {
                None => {
                    if vert(&row[id_col], "xnf_id")? != 0 || root_row.replace(r).is_some() {
                        return Err(shred_err("the root table must hold exactly row 0".into()));
                    }
                }
                Some(pt) => {
                    let parent = vert(
                        &row[parent_col.expect("non-root tables have parents")],
                        "xnf_parent",
                    )?;
                    let pos = vert(
                        &row[pos_col.expect("non-root tables have positions")],
                        "xnf_pos",
                    )?;
                    children.entry((pt, parent)).or_default().push((pos, ix, r));
                }
            }
        }
    }
    let root_row = root_row.ok_or_else(|| shred_err("missing root row".into()))?;

    let mut tree = XmlTree::new(schema.root_name.clone());
    let mut placed = 1usize;
    // Depth-first rebuild: (table, row, node). Parents always
    // materialize before their child rows are consumed, so traversal
    // order is otherwise irrelevant.
    let mut stack: Vec<(usize, usize, NodeId)> = vec![(0, root_row, tree.root())];
    while let Some((ix, r, node)) = stack.pop() {
        budget.checkpoint("shred.rebuild")?;
        let map = &schema.maps[ix];
        let row = &doc.tables[ix].rows[r];

        // Data columns and inlined-child slots of this row.
        let mut inline_text: BTreeMap<&str, Option<Box<str>>> = BTreeMap::new();
        let mut slots: Vec<(u64, ChildSlot)> = Vec::new();
        for (source, value) in map.sources.iter().zip(row) {
            match (source, value) {
                (ColSource::Attr(name), Value::Str(s)) => {
                    tree.set_attr(node, name.clone(), s.clone());
                }
                (ColSource::Text, Value::Str(s)) => tree.set_text(node, s.clone()),
                (ColSource::InlineText(name), v) => {
                    inline_text.insert(
                        name,
                        match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        },
                    );
                }
                (ColSource::InlinePos(name), v) => {
                    let text = inline_text
                        .remove(&**name)
                        .ok_or_else(|| shred_err(format!("stray inlined column `{name}`")))?;
                    slots.push((
                        vert(v, "inlined position")?,
                        ChildSlot::Leaf(name.clone(), text),
                    ));
                }
                _ => {}
            }
        }

        // Nested rows claiming this node as their parent.
        let (id_col, _, _) = structural_columns(&map.sources);
        let id = vert(&row[id_col], "xnf_id")?;
        for (pos, cix, cr) in children.remove(&(ix, id)).unwrap_or_default() {
            slots.push((pos, ChildSlot::Row(cix, cr)));
        }

        // Interleave inlined leaves and nested rows by recorded
        // position; a duplicated position cannot come from a shred.
        slots.sort_by_key(|&(pos, _)| pos);
        if slots.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(shred_err(format!(
                "node {id} of `{}` has two children at one position",
                doc.tables[ix].table
            )));
        }
        if !slots.is_empty() && tree.text(node).is_some() {
            return Err(shred_err(format!(
                "node {id} of `{}` has both text and element children",
                doc.tables[ix].table
            )));
        }
        for (_, slot) in slots {
            match slot {
                ChildSlot::Leaf(label, text) => {
                    let leaf = tree.add_child(node, label);
                    if let Some(text) = text {
                        tree.set_text(leaf, text);
                    }
                }
                ChildSlot::Row(cix, cr) => {
                    let label = match schema.paths.step(schema.maps[cix].path) {
                        Step::Elem(name) => name.clone(),
                        _ => unreachable!("table paths are element paths"),
                    };
                    let child = tree.add_child(node, label);
                    stack.push((cix, cr, child));
                    placed += 1;
                }
            }
        }
    }
    let total: usize = doc.tables.iter().map(|t| t.rows.len()).sum();
    if placed != total {
        return Err(shred_err(format!(
            "{} of {total} rows are orphaned (dangling xnf_parent)",
            total - placed
        )));
    }
    Ok(tree)
}

/// Positions of the id / parent / pos columns in a source list.
fn structural_columns(sources: &[ColSource]) -> (usize, Option<usize>, Option<usize>) {
    let mut id = 0;
    let (mut parent, mut pos) = (None, None);
    for (i, s) in sources.iter().enumerate() {
        match s {
            ColSource::Id => id = i,
            ColSource::Parent => parent = Some(i),
            ColSource::Pos => pos = Some(i),
            _ => {}
        }
    }
    (id, parent, pos)
}

/// Sanitizes a DTD name into a SQL identifier (`[A-Za-z0-9_]`, not
/// starting with a digit).
fn sanitize_ident(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 't');
    }
    out
}

/// Appends numeric suffixes until `base` clashes with no existing
/// column.
fn unique_column_name(columns: &[Column], base: &str) -> String {
    if !columns.iter().any(|c| c.name == base) {
        return base.to_string();
    }
    let mut n = 2;
    loop {
        let candidate = format!("{base}_{n}");
        if !columns.iter().any(|c| c.name == candidate) {
            return candidate;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_doc, dblp_dtd, figure_1a, university_dtd};
    use crate::XmlFdSet;
    use xnf_xml::ordered_eq;

    fn compile(dtd: &Dtd, fds: &str) -> ShredSchema {
        let sigma = XmlFdSet::parse(fds).expect("fixture FDs parse");
        compile_schema(dtd, &sigma, crate::UNLIMITED).expect("fixture compiles")
    }

    #[test]
    fn university_schema_inlines_singleton_text_children() {
        let schema = compile(&university_dtd(), UNIVERSITY_FDS);
        let names: Vec<&str> = schema
            .design
            .tables
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(names, ["courses", "course", "taken_by", "student"]);
        let course = schema.design.table("course").unwrap();
        let cols: Vec<&str> = course.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            cols,
            [
                "xnf_id",
                "xnf_parent",
                "xnf_pos",
                "cno",
                "title",
                "title_pos"
            ]
        );
        // FD1 (@cno → course) makes the attribute a data key.
        assert!(course.unique_keys.contains(&vec!["cno".to_string()]));
        assert_eq!(course.foreign_key.as_ref().unwrap().parent_table, "courses");
        let student = schema.design.table("student").unwrap();
        let cols: Vec<&str> = student.columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            cols,
            [
                "xnf_id",
                "xnf_parent",
                "xnf_pos",
                "sno",
                "name",
                "name_pos",
                "grade",
                "grade_pos"
            ]
        );
    }

    #[test]
    fn university_round_trip_is_exact() {
        let schema = compile(&university_dtd(), UNIVERSITY_FDS);
        let doc = figure_1a();
        let rows = shred_document(&schema, &doc, crate::UNLIMITED).unwrap();
        // 19 nodes; the 10 singleton text leaves are inlined.
        assert_eq!(rows.row_count(), 9);
        let back = unshred_document(&schema, &rows, crate::UNLIMITED).unwrap();
        assert!(ordered_eq(&doc, &back));
    }

    #[test]
    fn dblp_round_trip_is_exact() {
        let schema = compile(&dblp_dtd(), DBLP_FDS);
        let names: Vec<&str> = schema
            .design
            .tables
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(names, ["db", "conf", "issue", "inproceedings", "author"]);
        let doc = dblp_doc();
        let rows = shred_document(&schema, &doc, crate::UNLIMITED).unwrap();
        let back = unshred_document(&schema, &rows, crate::UNLIMITED).unwrap();
        assert!(ordered_eq(&doc, &back));
    }

    #[test]
    fn anomalous_specs_surface_paper_fds_as_bcnf_violations() {
        // University: (FD3) @sno → name.S violates BCNF in `student`.
        let schema = compile(&university_dtd(), UNIVERSITY_FDS);
        let bad = schema.non_bcnf_tables();
        assert_eq!(bad.len(), 1, "only `student` should violate: {bad:?}");
        let (ix, name, fd) = &bad[0];
        assert_eq!(name, "student");
        assert_eq!(
            schema.violation_as_xml_fd(*ix, fd).unwrap().to_string(),
            "courses.course.taken_by.student.@sno -> \
             courses.course.taken_by.student.name.S"
        );

        // DBLP: (FD5) issue → @year violates BCNF in `inproceedings`,
        // while (FD4) title.S → conf is just a key of `conf`.
        let schema = compile(&dblp_dtd(), DBLP_FDS);
        let bad = schema.non_bcnf_tables();
        assert_eq!(bad.len(), 1, "only `inproceedings` should violate: {bad:?}");
        let (ix, name, fd) = &bad[0];
        assert_eq!(name, "inproceedings");
        assert_eq!(
            schema.violation_as_xml_fd(*ix, fd).unwrap().to_string(),
            "db.conf.issue -> db.conf.issue.inproceedings.@year"
        );
        let conf = schema.design.table("conf").unwrap();
        assert!(conf.unique_keys.contains(&vec!["title".to_string()]));
    }

    #[test]
    fn normalized_specs_shred_to_all_bcnf_tables() {
        for (dtd, fds) in [(university_dtd(), UNIVERSITY_FDS), (dblp_dtd(), DBLP_FDS)] {
            let sigma = XmlFdSet::parse(fds).unwrap();
            let norm = crate::normalize(&dtd, &sigma, &crate::NormalizeOptions::default()).unwrap();
            let schema = compile_schema(&norm.dtd, &norm.sigma, crate::UNLIMITED).unwrap();
            assert!(
                schema.non_bcnf_tables().is_empty(),
                "XNF output must shred to BCNF tables, got {:?}",
                schema.non_bcnf_tables()
            );
        }
    }

    #[test]
    fn colliding_leaf_names_fall_back_to_path_names() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT r (a*, b*)>
             <!ELEMENT a (x*)>
             <!ELEMENT b (x*)>
             <!ELEMENT x (#PCDATA)>",
        )
        .unwrap();
        let schema = compile_schema(&dtd, &XmlFdSet::new(), crate::UNLIMITED).unwrap();
        let names: Vec<&str> = schema
            .design
            .tables
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(names, ["r", "a", "b", "r_a_x", "r_b_x"]);
    }

    #[test]
    fn recursive_dtds_are_rejected() {
        let dtd = xnf_dtd::parse_dtd(
            "<!ELEMENT r (part)>
             <!ELEMENT part (part*)>",
        )
        .unwrap();
        assert!(matches!(
            compile_schema(&dtd, &XmlFdSet::new(), crate::UNLIMITED),
            Err(CoreError::RecursiveNormalization)
        ));
    }

    #[test]
    fn incompatible_documents_are_refused() {
        let schema = compile(&university_dtd(), UNIVERSITY_FDS);
        for doc in [
            // Wrong root.
            "<wrong/>",
            // A node at no path of D.
            "<courses><foo/></courses>",
            // A duplicated singleton-text child.
            r#"<courses><course cno="c"><title>a</title><title>b</title>
               <taken_by/></course></courses>"#,
        ] {
            let t = xnf_xml::parse(doc).unwrap();
            assert!(
                matches!(
                    shred_document(&schema, &t, crate::UNLIMITED),
                    Err(CoreError::NotCompatible)
                ),
                "{doc} must be refused"
            );
        }
    }

    #[test]
    fn tampered_rows_surface_structured_errors() {
        let schema = compile(&university_dtd(), UNIVERSITY_FDS);
        let good = shred_document(&schema, &figure_1a(), crate::UNLIMITED).unwrap();
        let rebuild = |doc: &ShreddedDoc| unshred_document(&schema, doc, crate::UNLIMITED);
        assert!(rebuild(&good).is_ok());

        // Dangling parent pointer.
        let mut bad = good.clone();
        bad.tables.last_mut().unwrap().rows[0][1] = Value::Vert(99);
        assert!(matches!(
            rebuild(&bad),
            Err(CoreError::InconsistentTuples(_))
        ));

        // Two children at one position.
        let mut bad = good.clone();
        let student = bad.tables.last_mut().unwrap();
        student.rows[1][1] = student.rows[0][1].clone();
        student.rows[1][2] = student.rows[0][2].clone();
        assert!(matches!(
            rebuild(&bad),
            Err(CoreError::InconsistentTuples(_))
        ));

        // Arity mismatch.
        let mut bad = good.clone();
        bad.tables[0].rows[0].push(Value::Null);
        assert!(matches!(
            rebuild(&bad),
            Err(CoreError::InconsistentTuples(_))
        ));

        // A string where an ordinal belongs.
        let mut bad = good.clone();
        bad.tables.last_mut().unwrap().rows[0][2] = Value::str("zero");
        assert!(matches!(
            rebuild(&bad),
            Err(CoreError::InconsistentTuples(_))
        ));
    }

    #[test]
    fn governed_shred_exhausts_cleanly_and_never_lies() {
        let dtd = university_dtd();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS).unwrap();
        let doc = figure_1a();
        let tiny = Budget::builder().fuel(1).build();
        assert!(matches!(
            compile_schema(&dtd, &sigma, &tiny),
            Err(CoreError::Exhausted(_))
        ));

        let mut fuel = 1u64;
        loop {
            assert!(fuel < 1 << 30, "pipeline never fit in the fuel sweep");
            let budget = Budget::builder().fuel(fuel).build();
            let result = compile_schema(&dtd, &sigma, &budget)
                .and_then(|s| shred_document(&s, &doc, &budget).map(|rows| (s, rows)))
                .and_then(|(s, rows)| unshred_document(&s, &rows, &budget));
            match result {
                Ok(back) => {
                    assert!(ordered_eq(&doc, &back));
                    break;
                }
                Err(CoreError::Exhausted(_)) => fuel *= 2,
                Err(e) => panic!("governed shred must exhaust or succeed, got {e}"),
            }
        }
    }
}
