//! A memoizing wrapper around the chase-based implication oracle.
//!
//! One normalization run asks the same implication queries many times
//! over: the anomalous-FD search tests `S → parent(q)` for every FD and
//! value path, the guard-materialization pass re-asks exactly those
//! queries, minimization re-tests subsets, and the XNF checker repeats
//! the search verbatim on the final design. [`ImplicationCache`] interns
//! every [`ResolvedFd`] it sees, identifies each Σ by the id sequence of
//! its FDs, and memoizes `(Σ, φ) → bool` verdicts so each distinct query
//! costs exactly one chase run.
//!
//! Correctness rests on the chase being a *pure function* of
//! `(D, Σ, φ)`: verdicts are deterministic, so serving a memoized answer
//! is observationally identical to re-running the chase (the
//! `differential_cache` integration tests check this verdict-for-verdict
//! over randomized corpora). The cache is `Sync` — interior state sits
//! behind a [`Mutex`] — so one instance can serve all workers of the
//! parallel anomalous-FD search.

use super::chase::Chase;
use super::Implication;
use crate::fd::ResolvedFd;
use std::collections::HashMap;
use std::sync::Mutex;
use xnf_govern::Exhausted;

/// Interned-key memo tables; all lookups are exact (no fingerprint
/// collisions possible).
#[derive(Debug, Default)]
struct Tables {
    /// Each distinct FD (by value) gets a dense id.
    fds: HashMap<ResolvedFd, u32>,
    /// Each distinct Σ, as the sequence of its FDs' ids, gets a dense id.
    sigmas: HashMap<Box<[u32]>, u32>,
    /// Memoized verdicts `(σ-id, φ-id) → (D, Σ) ⊢ φ`.
    verdicts: HashMap<(u32, u32), bool>,
}

impl Tables {
    fn intern_fd(&mut self, fd: &ResolvedFd) -> u32 {
        if let Some(&id) = self.fds.get(fd) {
            return id;
        }
        let id = u32::try_from(self.fds.len()).expect("fewer than 2^32 distinct FDs");
        self.fds.insert(fd.clone(), id);
        id
    }

    fn intern_sigma(&mut self, sigma: &[ResolvedFd]) -> u32 {
        let key: Box<[u32]> = sigma.iter().map(|fd| self.intern_fd(fd)).collect();
        if let Some(&id) = self.sigmas.get(&key) {
            return id;
        }
        let id = u32::try_from(self.sigmas.len()).expect("fewer than 2^32 distinct sigmas");
        self.sigmas.insert(key, id);
        id
    }
}

/// A memoizing, thread-shareable [`Implication`] oracle wrapping a
/// [`Chase`].
///
/// Construct one per `(D, Σ)` working set with [`ImplicationCache::new`],
/// passing the Σ slice the hot loop will query with; that slice is
/// interned once up front and recognized by address afterwards, so the
/// per-call overhead on the hot path is two hash lookups. Queries against
/// *other* Σ slices (notably the empty Σ behind
/// [`Implication::is_trivial`], which is also pre-interned) are still
/// memoized, just keyed by value.
///
/// Cache traffic is reported on the wrapped chase's
/// [`ChaseStats`](super::chase::ChaseStats) (`cache_hits` /
/// `cache_misses`).
#[derive(Debug)]
pub struct ImplicationCache<'a> {
    chase: &'a Chase<'a>,
    /// The working Σ, kept borrowed so its address stays valid for the
    /// fast-path identity check in [`Self::sigma_id`].
    primary: &'a [ResolvedFd],
    primary_id: u32,
    empty_id: u32,
    tables: Mutex<Tables>,
}

impl<'a> ImplicationCache<'a> {
    /// Wraps `chase`, pre-interning `sigma` (the working Σ) and the
    /// empty Σ.
    pub fn new(chase: &'a Chase<'a>, sigma: &'a [ResolvedFd]) -> ImplicationCache<'a> {
        let mut tables = Tables::default();
        let primary_id = tables.intern_sigma(sigma);
        let empty_id = tables.intern_sigma(&[]);
        ImplicationCache {
            chase,
            primary: sigma,
            primary_id,
            empty_id,
            tables: Mutex::new(tables),
        }
    }

    /// The wrapped chase (for its stats or direct queries).
    pub fn chase(&self) -> &'a Chase<'a> {
        self.chase
    }

    /// Number of memoized verdicts so far.
    pub fn len(&self) -> usize {
        self.tables.lock().expect("cache lock").verdicts.len()
    }

    /// Whether no verdict has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn sigma_id(&self, tables: &mut Tables, sigma: &[ResolvedFd]) -> u32 {
        if std::ptr::eq(sigma, self.primary) {
            self.primary_id
        } else if sigma.is_empty() {
            self.empty_id
        } else {
            tables.intern_sigma(sigma)
        }
    }
}

impl Implication for ImplicationCache<'_> {
    fn implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> bool {
        let key = {
            let mut tables = self.tables.lock().expect("cache lock");
            let sid = self.sigma_id(&mut tables, sigma);
            let fid = tables.intern_fd(fd);
            if let Some(&verdict) = tables.verdicts.get(&(sid, fid)) {
                self.chase.stats().cache_hits.bump();
                return verdict;
            }
            (sid, fid)
        };
        // Chase outside the lock: concurrent workers may race on the same
        // key, but the chase is deterministic, so both compute the same
        // verdict and the duplicated work is bounded by the worker count.
        self.chase.stats().cache_misses.bump();
        let verdict = self.chase.implies(sigma, fd);
        self.tables
            .lock()
            .expect("cache lock")
            .verdicts
            .insert(key, verdict);
        verdict
    }

    fn try_implies(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> Result<bool, Exhausted> {
        self.chase.budget().checkpoint("cache.lookup")?;
        let key = {
            let mut tables = self.tables.lock().expect("cache lock");
            let sid = self.sigma_id(&mut tables, sigma);
            let fid = tables.intern_fd(fd);
            if let Some(&verdict) = tables.verdicts.get(&(sid, fid)) {
                self.chase.stats().cache_hits.bump();
                return Ok(verdict);
            }
            (sid, fid)
        };
        self.chase.stats().cache_misses.bump();
        // Only completed verdicts are memoized: an exhausted chase run
        // returns here via `?` without touching the tables, so a rerun
        // with a larger budget starts from trustworthy entries only.
        let verdict = self.chase.try_implies(sigma, fd)?;
        self.tables
            .lock()
            .expect("cache lock")
            .verdicts
            .insert(key, verdict);
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{XmlFdSet, UNIVERSITY_FDS};
    use crate::fixtures::university_dtd;

    fn is_sync<T: Sync>() {}

    #[test]
    fn cache_is_sync() {
        is_sync::<ImplicationCache<'_>>();
    }

    #[test]
    fn agrees_with_chase_and_counts_traffic() {
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let chase = Chase::new(&dtd, &paths);
        let cache = ImplicationCache::new(&chase, &sigma);
        for fd in &sigma {
            for &q in &fd.rhs {
                let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
                let raw = chase.implies(&sigma, &single);
                // First ask misses, second hits, both agree with the chase.
                assert_eq!(cache.implies(&sigma, &single), raw);
                assert_eq!(cache.implies(&sigma, &single), raw);
                assert_eq!(cache.is_trivial(&single), chase.is_trivial(&single));
            }
        }
        let stats = chase.stats().snapshot();
        assert!(stats.get("cache.hits") > 0, "repeat queries must hit");
        assert!(stats.get("cache.misses") > 0, "first queries must miss");
        assert_eq!(cache.len() as u64, stats.get("cache.misses"));
    }

    #[test]
    fn trivial_and_sigma_verdicts_do_not_collide() {
        // The same φ asked under Σ and under ∅ must occupy distinct cache
        // slots — a regression guard for the Σ-identification scheme.
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let chase = Chase::new(&dtd, &paths);
        let cache = ImplicationCache::new(&chase, &sigma);
        // FD1: courses.course.@cno -> courses.course is implied under Σ
        // (it is *in* Σ) but not trivial.
        let fd = sigma[0].clone();
        assert!(cache.implies(&sigma, &fd));
        assert!(!cache.is_trivial(&fd));
        assert!(cache.implies(&sigma, &fd), "memo survives the ∅ query");
    }
}
