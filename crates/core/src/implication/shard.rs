//! Sharded execution of the implication hot path.
//!
//! The anomalous-FD search — the inner loop of both `is_xnf` and the
//! Figure 4 normalization algorithm — is an embarrassingly parallel sweep
//! over the `(FD, value path)` candidates of Σ: each candidate is an
//! independent pure implication query. This module partitions that
//! candidate space along the DTD's element hierarchy and runs the shards
//! on a small work-stealing pool, with a merge that is *deterministic by
//! construction*: results carry their original enumeration index and are
//! restored to enumeration order before any downstream processing, so the
//! output is byte-identical for every shard count and thread count —
//! including the sequential run.
//!
//! # Why shard by root-child fragment
//!
//! Two candidates whose paths live under different children of the DTD
//! root touch (mostly) disjoint regions of `paths(D)`: the chase states
//! they saturate overlap only near the root. Grouping such candidates
//! into one shard keeps each worker's cache footprint coherent and gives
//! the shards a semantic identity (`chase.shard` spans are labeled with
//! the fragment), which the fault-injection and observability harnesses
//! exploit. Candidates that straddle fragments — an LHS path under one
//! root child, the value path under another, or a path of depth < 2 —
//! go to a single trailing *frontier* shard.
//!
//! Correctness never depends on the partition: any grouping of the index
//! set yields the same merged output, because the queries are independent
//! and the merge restores enumeration order. The partition is purely a
//! locality/scheduling choice, which is what makes `coalesced` safe.

use crate::fd::ResolvedFd;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use xnf_dtd::{PathId, PathSet};
use xnf_govern::{Budget, Exhausted};

/// A partition of candidate indices `0..n` into shards.
///
/// Shards are ordered: element-fragment shards first (by the fragment's
/// [`PathId`], i.e. BFS order), then the frontier shard of cross-fragment
/// candidates. Within a shard, indices stay in enumeration order. The
/// identity `plan.shards().concat().sorted() == 0..n` always holds.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

/// One shard of a [`ShardPlan`]: a label (for spans and reports) plus the
/// candidate indices it owns, in enumeration order.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The root-child fragment anchoring this shard, or `None` for the
    /// frontier shard of cross-fragment candidates.
    pub fragment: Option<PathId>,
    /// Candidate indices (into the caller's enumeration), ascending.
    pub items: Vec<usize>,
}

impl ShardPlan {
    /// Builds the natural plan from per-candidate fragment keys:
    /// `keys[i]` is the root-child fragment of candidate `i`, or `None`
    /// for frontier candidates (see [`candidate_fragment`]).
    pub fn new(keys: &[Option<PathId>]) -> ShardPlan {
        let mut by_fragment: BTreeMap<PathId, Vec<usize>> = BTreeMap::new();
        let mut frontier = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match key {
                Some(f) => by_fragment.entry(*f).or_default().push(i),
                None => frontier.push(i),
            }
        }
        let mut shards: Vec<Shard> = by_fragment
            .into_iter()
            .map(|(fragment, items)| Shard {
                fragment: Some(fragment),
                items,
            })
            .collect();
        if !frontier.is_empty() {
            shards.push(Shard {
                fragment: None,
                items: frontier,
            });
        }
        ShardPlan { shards }
    }

    /// The shards, in execution order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Coalesces the plan into at most `n` shards by round-robin
    /// assignment (shard `k` joins bucket `k mod n`), preserving shard
    /// order inside each bucket. Used by the differential suite to pin
    /// shard counts 1/2/4 and by callers that want coarser scheduling
    /// units than the DTD's fragment count. `n == 0` is treated as 1.
    pub fn coalesced(&self, n: usize) -> ShardPlan {
        let n = n.max(1).min(self.shards.len().max(1));
        let mut buckets: Vec<Shard> = (0..n)
            .map(|_| Shard {
                fragment: None,
                items: Vec::new(),
            })
            .collect();
        for (k, shard) in self.shards.iter().enumerate() {
            let b = &mut buckets[k % n];
            if b.items.is_empty() {
                b.fragment = shard.fragment;
            }
            b.items.extend_from_slice(&shard.items);
        }
        buckets.retain(|b| !b.items.is_empty());
        ShardPlan { shards: buckets }
    }
}

/// The root-child fragment of one `(FD, value path)` candidate, the
/// [`ShardPlan::new`] key: `Some(f)` iff the value path `q` *and* every
/// LHS path of `fd` lie under the same root-child element `f`; `None`
/// (frontier) otherwise — including root-level paths, which have no
/// root-child ancestor.
pub fn candidate_fragment(paths: &PathSet, fd: &ResolvedFd, q: PathId) -> Option<PathId> {
    let fragment = paths.ancestor_at(q, 2)?;
    fd.lhs
        .iter()
        .all(|&l| paths.ancestor_at(l, 2) == Some(fragment))
        .then_some(fragment)
}

/// Runs `test` over every candidate of `plan` and returns the hits tagged
/// with their original enumeration index, **in enumeration order**.
///
/// Scheduling: shards are the work units. With `threads <= 1` they run
/// in order on the calling thread; otherwise `threads` scoped workers
/// pull shard indices from a shared cursor (work stealing — a worker
/// that drew a cheap shard immediately takes the next one, so skewed
/// fragment sizes do not serialize the sweep). `threads == 0` asks
/// [`std::thread::available_parallelism`].
///
/// Determinism: each worker evaluates its shard's candidates in order
/// and records `(index, hit)` pairs; after the pool joins, the merge
/// concatenates per-shard results in shard order and sorts by original
/// index. The schedule therefore cannot influence the output — only the
/// *set* of hits matters, and that is fixed by `test` being pure.
///
/// Governance: every shard start charges `budget` at `chase.shard` and
/// the merge charges `chase.merge`, each under a matching recorder span.
/// On exhaustion the first error in shard order is returned; with a
/// shared cancelling budget the sibling workers wind down at their next
/// checkpoint.
pub fn run_sharded<T, F>(
    plan: &ShardPlan,
    threads: usize,
    budget: &Budget,
    test: F,
) -> Result<Vec<(usize, T)>, Exhausted>
where
    T: Send,
    F: Fn(usize) -> Result<Option<T>, Exhausted> + Sync,
{
    let shards = plan.shards();
    let threads = match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(shards.len().max(1));

    let run_shard = |shard: &Shard| -> Result<Vec<(usize, T)>, Exhausted> {
        budget.checkpoint("chase.shard")?;
        let _span = budget.recorder().span("chase.shard", "implication");
        let mut hits = Vec::new();
        for &i in &shard.items {
            if let Some(hit) = test(i)? {
                hits.push((i, hit));
            }
        }
        Ok(hits)
    };

    let mut per_shard: Vec<Result<Vec<(usize, T)>, Exhausted>> = if threads <= 1 {
        shards.iter().map(run_shard).collect()
    } else {
        type ShardResult<T> = Result<Vec<(usize, T)>, Exhausted>;
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<ShardResult<T>>> = (0..shards.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for _ in 0..threads {
                let cursor = &cursor;
                let run_shard = &run_shard;
                handles.push(scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(shard) = shards.get(k) else {
                            return mine;
                        };
                        mine.push((k, run_shard(shard)));
                    }
                }));
            }
            for h in handles {
                for (k, r) in h.join().expect("chase shard worker panicked") {
                    slots[k] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every shard index was drawn exactly once"))
            .collect()
    };

    budget.checkpoint("chase.merge")?;
    let _span = budget.recorder().span("chase.merge", "implication");
    let mut out = Vec::new();
    for r in per_shard.drain(..) {
        out.extend(r?);
    }
    // Shards partition the index range but interleave it (the frontier
    // shard collects indices from everywhere), so concatenation in shard
    // order is not enumeration order; the sort restores it. Indices are
    // unique, hence the order is total and schedule-independent.
    out.sort_unstable_by_key(|&(i, _)| i);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::XmlFdSet;
    use crate::fixtures::university_dtd;

    fn university_plan() -> (ShardPlan, usize) {
        let dtd = university_dtd();
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(crate::fd::UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let paths = &paths;
        let keys: Vec<Option<PathId>> = sigma
            .iter()
            .flat_map(|fd| {
                fd.rhs
                    .iter()
                    .map(move |&q| candidate_fragment(paths, fd, q))
            })
            .collect();
        let n = keys.len();
        (ShardPlan::new(&keys), n)
    }

    #[test]
    fn plan_partitions_the_index_range() {
        let (plan, n) = university_plan();
        for coalesce in [1, 2, 4, usize::MAX] {
            let plan = plan.coalesced(coalesce.min(n.max(1)));
            let mut all: Vec<usize> = plan
                .shards()
                .iter()
                .flat_map(|s| s.items.iter().copied())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
            assert!(plan.shards().iter().all(|s| !s.items.is_empty()));
        }
    }

    #[test]
    fn frontier_shard_is_last() {
        let (plan, _) = university_plan();
        let frontier: Vec<usize> = plan
            .shards()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.fragment.is_none())
            .map(|(i, _)| i)
            .collect();
        assert!(frontier.len() <= 1);
        if let Some(&i) = frontier.first() {
            assert_eq!(i, plan.shards().len() - 1);
        }
    }

    #[test]
    fn sharded_run_is_schedule_independent() {
        let (plan, n) = university_plan();
        let test = |i: usize| -> Result<Option<usize>, Exhausted> {
            // An arbitrary pure predicate with a non-trivial hit pattern.
            Ok((i % 3 != 1).then_some(i * i))
        };
        let budget = Budget::unlimited();
        let baseline = run_sharded(&plan.coalesced(1), 1, &budget, test).unwrap();
        assert!(baseline.len() < n.max(1) && !baseline.is_empty());
        for shards in [1, 2, 4] {
            for threads in [1, 2, 4] {
                let got = run_sharded(&plan.coalesced(shards), threads, &budget, test).unwrap();
                assert_eq!(got, baseline, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn exhaustion_surfaces_from_any_shard() {
        let (plan, _) = university_plan();
        // A budget so small the first shard checkpoint trips it.
        let budget = Budget::builder().fuel(0).build();
        let test = |_i: usize| -> Result<Option<usize>, Exhausted> { Ok(None) };
        for threads in [1, 2] {
            assert!(run_sharded(&plan, threads, &budget, test).is_err());
        }
    }
}
