//! Counterexample construction and search.
//!
//! When the chase reaches a consistent fixpoint, this module turns the
//! symbolic state into an *actual* witness document and verifies it
//! end-to-end: the document conforms to the DTD, satisfies `Σ`, and
//! violates the candidate FD. A verified witness is a machine-checked
//! proof of non-implication, so together with the chase's sound
//! contradiction proofs we get certified answers in both directions —
//! this is what the crate's validation tests and `EXPERIMENTS.md` measure.
//!
//! [`CounterexampleSearch::find_exhaustive`] additionally enumerates all
//! combinations of exclusive-disjunction choices (the source of
//! coNP-hardness, Theorem 5): its running time grows with `N_D`, which the
//! `exp10` bench demonstrates against the polynomial chase.

use crate::fd::ResolvedFd;
use crate::implication::chase::{Chase, ChaseOutcome, Ternary};
use crate::tuple::TreeTuple;
use crate::tuples::{trees_d, tuples_d};
use xnf_dtd::{Dtd, PathId, PathSet};
use xnf_relational::Value;
use xnf_xml::XmlTree;

/// A verified witness of non-implication.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The witness document: `T ⊨ D`, `T ⊨ Σ`, `T ⊭ φ`.
    pub tree: XmlTree,
}

/// Builds and verifies counterexamples for non-implied FDs.
#[derive(Debug)]
pub struct CounterexampleSearch<'a> {
    dtd: &'a Dtd,
    paths: &'a PathSet,
    chase: Chase<'a>,
}

impl<'a> CounterexampleSearch<'a> {
    /// Creates a search engine over `(D, paths(D))`.
    pub fn new(dtd: &'a Dtd, paths: &'a PathSet) -> CounterexampleSearch<'a> {
        CounterexampleSearch {
            dtd,
            paths,
            chase: Chase::new(dtd, paths),
        }
    }

    /// Creates a search engine with an ablated chase configuration — used
    /// by the Theorem 5 experiment: with the completeness rules disabled,
    /// certifying an implication degenerates into exhausting the
    /// counterexample space, whose size `N_D` measures.
    pub fn with_config(
        dtd: &'a Dtd,
        paths: &'a PathSet,
        config: crate::implication::ChaseConfig,
    ) -> CounterexampleSearch<'a> {
        CounterexampleSearch {
            dtd,
            paths,
            chase: Chase::with_config(dtd, paths, config),
        }
    }

    /// The underlying chase engine.
    pub fn chase(&self) -> &Chase<'a> {
        &self.chase
    }

    /// Runs the chase; on a consistent fixpoint, constructs a witness
    /// document and verifies it. Returns `Some` only for a fully verified
    /// counterexample.
    pub fn find(&self, sigma: &[ResolvedFd], fd: &ResolvedFd) -> Option<Counterexample> {
        // A counterexample must refute some single RHS path.
        for &q in &fd.rhs {
            let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
            if let ChaseOutcome::NotImplied(_) = self.chase.run(sigma, &single) {
                // Try a *minimal* witness first (only the spine of the
                // premise and goal is materialized): it triggers the
                // fewest Σ-FDs. Fall back to the maximal witness.
                for maximal in [false, true] {
                    if let Some(tree) = self.construct(sigma, &single.lhs, q, &|_, _| None, maximal)
                    {
                        if self.verify(&tree, sigma, &single) {
                            return Some(Counterexample { tree });
                        }
                    }
                }
            }
        }
        None
    }

    /// Exhaustively enumerates exclusive-disjunction member choices (per
    /// group and side) on top of the chase-guided construction, verifying
    /// each candidate; `max_candidates` bounds the enumeration. This is
    /// the coNP-style search of Theorem 5 — exponential in the number of
    /// unrestricted disjunctions (which `N_D` measures).
    pub fn find_exhaustive(
        &self,
        sigma: &[ResolvedFd],
        fd: &ResolvedFd,
        max_candidates: usize,
    ) -> Option<Counterexample> {
        for &q in &fd.rhs {
            let single = ResolvedFd::from_ids(fd.lhs.iter().copied(), [q]);
            if matches!(self.chase.run(sigma, &single), ChaseOutcome::Implied) {
                continue;
            }
            // Choice points: one per (group instance, side).
            let mut group_points: Vec<(PathId, usize)> = Vec::new();
            for p in self.paths.iter() {
                if let Some(members) = self.chase.path_group(p) {
                    if members[0] == p {
                        group_points.push((p, members.len()));
                        group_points.push((p, members.len()));
                    }
                }
            }
            let mut counter = vec![0usize; group_points.len()];
            for _ in 0..max_candidates {
                let choices = counter.clone();
                let points = group_points.clone();
                let overrides = move |side: usize, member: PathId| -> Option<usize> {
                    let mut seen = 0usize;
                    for ((key, _), choice) in points.iter().zip(&choices) {
                        if *key == member {
                            if seen == side {
                                return Some(*choice);
                            }
                            seen += 1;
                        }
                    }
                    None
                };
                for maximal in [false, true] {
                    if let Some(tree) = self.construct(sigma, &single.lhs, q, &overrides, maximal) {
                        if self.verify(&tree, sigma, &single) {
                            return Some(Counterexample { tree });
                        }
                    }
                }
                // Mixed-radix increment; stop after a full cycle.
                let mut i = 0;
                loop {
                    if i == counter.len() {
                        counter.clear();
                        break;
                    }
                    counter[i] += 1;
                    if counter[i] < group_points[i].1 {
                        break;
                    }
                    counter[i] = 0;
                    i += 1;
                }
                if counter.is_empty() {
                    break;
                }
            }
        }
        None
    }

    /// Chase-guided witness construction.
    ///
    /// Opens an incremental [`crate::implication::chase::Session`], installs
    /// the refutation goal, then walks `paths(D)` top-down deciding, for
    /// each side, whether each path is materialized. Every decision is an
    /// *assumption* fed back into the chase, so its consequences (FDs
    /// firing on newly non-null premises, forced sharing of functional
    /// children, disjunction exclusions) propagate before values are
    /// assigned. Decisions that contradict are undone (the path is left
    /// null); required structure that contradicts aborts the construction.
    ///
    /// `group_override(side, first_member)` pins the member chosen for an
    /// exclusive disjunction group, for the exhaustive search.
    fn construct(
        &self,
        sigma: &[ResolvedFd],
        lhs: &[PathId],
        q: PathId,
        group_override: &dyn Fn(usize, PathId) -> Option<usize>,
        maximal: bool,
    ) -> Option<XmlTree> {
        let paths = self.paths;
        let mut sess = self.chase.session();
        if !sess.assume_goal(sigma, lhs, q) {
            return None;
        }
        // The *spine*: prefixes of the premise and goal paths. In minimal
        // mode only the spine is materialized among optional structure —
        // every other Σ-FD premise then stays null, so cross-tuple
        // interactions the two-tuple chase cannot see do not arise.
        let mut spine = vec![false; paths.len()];
        for &sp in lhs.iter().chain([&q]) {
            let mut cur = Some(sp);
            while let Some(c) = cur {
                spine[c.index()] = true;
                cur = paths.parent(c);
            }
        }

        // Decide materialization top-down. Paths are BFS-ordered, so a
        // path's parent is decided before the path itself.
        for p in paths.iter() {
            if !paths.is_element_path(p) {
                continue; // attribute/text nulls follow their parent via rules
            }
            for side in 0..2 {
                if sess.get(p).n(side) != Ternary::False {
                    continue; // p is not (known) materialized on this side
                }
                // Decide this node's children.
                let mut groups_done: Vec<PathId> = Vec::new();
                for &cp in paths.children_of(p).to_vec().iter() {
                    match sess.get(cp).n(side) {
                        Ternary::True | Ternary::False => continue, // already decided
                        Ternary::Unknown => {}
                    }
                    if let Some(members) = self.chase.path_group(cp) {
                        let key = members[0];
                        if groups_done.contains(&key) {
                            continue;
                        }
                        groups_done.push(key);
                        let members = members.to_vec();
                        // Choose one member to materialize: an override, a
                        // member the chase already forced, or the first
                        // that can be assumed non-null without
                        // contradiction.
                        let pinned =
                            group_override(side, key).and_then(|ix| members.get(ix).copied());
                        let forced = members
                            .iter()
                            .copied()
                            .find(|&m| sess.get(m).n(side) == Ternary::False);
                        let spine_member = members.iter().copied().find(|&m| spine[m.index()]);
                        let mut chosen: Option<PathId> = None;
                        let mut candidates: Vec<PathId> = match (pinned, forced) {
                            (_, Some(f)) => vec![f],
                            (Some(pin), None) => vec![pin],
                            (None, None) => match spine_member {
                                Some(m) => vec![m],
                                None if maximal => members.clone(),
                                // Minimal mode: leave the group out
                                // entirely if the DTD allows it (the
                                // exclude-all branch below); otherwise
                                // fall back to any member.
                                None => Vec::new(),
                            },
                        };
                        if candidates.is_empty() {
                            // Probe whether excluding everything works.
                            let snapshot = sess.clone();
                            let mut ok = true;
                            for m in &members {
                                if sess.get(*m).n(side) == Ternary::Unknown
                                    && !sess.assume_null(sigma, side, *m, true)
                                {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                continue;
                            }
                            sess = snapshot;
                            candidates = members.clone();
                        }
                        for m in candidates {
                            if sess.get(m).n(side) == Ternary::True {
                                continue;
                            }
                            let snapshot = sess.clone();
                            if sess.assume_null(sigma, side, m, false) {
                                chosen = Some(m);
                                break;
                            }
                            sess = snapshot;
                        }
                        if chosen.is_none() {
                            // Exclude the whole group (allowed only for
                            // nullable groups; a required group would
                            // have forced a member or contradicted).
                            for m in &members {
                                if sess.get(*m).n(side) == Ternary::Unknown
                                    && !sess.assume_null(sigma, side, *m, true)
                                {
                                    return None;
                                }
                            }
                        }
                        continue;
                    }
                    // Plain optional child: materialize spine paths (and
                    // everything, in maximal mode); otherwise leave the
                    // subtree out. Back off on contradiction either way.
                    let prefer_include = maximal || spine[cp.index()];
                    let snapshot = sess.clone();
                    if !sess.assume_null(sigma, side, cp, !prefer_include) {
                        sess = snapshot;
                        if !sess.assume_null(sigma, side, cp, prefer_include) {
                            return None;
                        }
                    }
                }
            }
        }
        // Sharing pass: an element path whose `eq` is still unknown can
        // usually be *merged* into one node — merging collapses cross
        // tuples (the pairs the two-tuple abstraction cannot see), so it
        // is always the safer choice; the session rejects the merge
        // whenever some derived fact forces a difference. String values
        // are left distinct unless a rule forces them equal: shared
        // values would only enlarge the set of firing FD premises.
        for p in paths.iter() {
            if !paths.is_element_path(p) {
                continue;
            }
            let st = sess.get(p);
            if st.eq != Ternary::Unknown || st.n1 != Ternary::False || st.n2 != Ternary::False {
                continue;
            }
            let snapshot = sess.clone();
            if !sess.assume_eq(sigma, p, true) {
                sess = snapshot;
                if !sess.assume_eq(sigma, p, false) {
                    return None;
                }
            }
        }

        // Close out: any still-unknown null status means the subtree was
        // never reached (excluded ancestor); mark null for value
        // assignment symmetry.
        for p in paths.iter() {
            for side in 0..2 {
                if sess.get(p).n(side) == Ternary::Unknown {
                    let snapshot = sess.clone();
                    if !sess.assume_null(sigma, side, p, true) {
                        sess = snapshot;
                        if !sess.assume_null(sigma, side, p, false) {
                            return None;
                        }
                    }
                }
            }
        }
        if sess.contradiction() {
            return None;
        }

        // Assign values from the refined state: eq = True shares a
        // vertex/string, anything else gets fresh distinct values.
        let mut t1 = TreeTuple::empty(paths.len());
        let mut t2 = TreeTuple::empty(paths.len());
        let mut next_vert: u64 = 0;
        let mut next_str: u64 = 0;
        for p in paths.iter() {
            let st = sess.get(p);
            let inc0 = st.n1 == Ternary::False;
            let inc1 = st.n2 == Ternary::False;
            if !inc0 && !inc1 {
                continue;
            }
            if paths.is_element_path(p) {
                if st.eq == Ternary::True && inc0 && inc1 {
                    let v = Value::Vert(next_vert);
                    next_vert += 1;
                    t1.set(p, v.clone());
                    t2.set(p, v);
                } else {
                    if inc0 {
                        t1.set(p, Value::Vert(next_vert));
                        next_vert += 1;
                    }
                    if inc1 {
                        t2.set(p, Value::Vert(next_vert));
                        next_vert += 1;
                    }
                }
            } else if st.eq == Ternary::True && inc0 && inc1 {
                let v = Value::str(format!("s{next_str}"));
                next_str += 1;
                t1.set(p, v.clone());
                t2.set(p, v);
            } else {
                if inc0 {
                    t1.set(p, Value::str(format!("s{next_str}")));
                    next_str += 1;
                }
                if inc1 {
                    t2.set(p, Value::str(format!("s{next_str}")));
                    next_str += 1;
                }
            }
        }
        trees_d(&[t1, t2], paths).ok()
    }

    /// Full end-to-end verification of a candidate witness.
    fn verify(&self, tree: &XmlTree, sigma: &[ResolvedFd], fd: &ResolvedFd) -> bool {
        if xnf_xml::conforms(tree, self.dtd).is_err() {
            return false;
        }
        let Ok(tuples) = tuples_d(tree, self.dtd, self.paths) else {
            return false;
        };
        sigma.iter().all(|s| s.check_tuples(&tuples)) && !fd.check_tuples(&tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::{XmlFd, XmlFdSet, DBLP_FDS, UNIVERSITY_FDS};
    use crate::fixtures::{dblp_dtd, university_dtd};
    use crate::implication::Implication;

    /// For every non-implied FD the chase reports, `find` must produce a
    /// verified witness; for every implied FD it must not.
    fn check(dtd: &Dtd, sigma_text: &str, fd_text: &str, expect_implied: bool) {
        let paths = dtd.paths().unwrap();
        let sigma = XmlFdSet::parse(sigma_text)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let fd = XmlFd::parse(fd_text).unwrap().resolve(&paths).unwrap();
        let search = CounterexampleSearch::new(dtd, &paths);
        let implied = search.chase().implies(&sigma, &fd);
        assert_eq!(implied, expect_implied, "chase verdict for {fd_text}");
        let witness = search.find(&sigma, &fd);
        if implied {
            assert!(witness.is_none(), "witness for an implied FD {fd_text}");
        } else {
            assert!(
                witness.is_some(),
                "no verified counterexample for non-implied {fd_text}"
            );
        }
    }

    #[test]
    fn university_witnesses() {
        let d = university_dtd();
        check(
            &d,
            UNIVERSITY_FDS,
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
            false,
        );
        check(
            &d,
            UNIVERSITY_FDS,
            "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S",
            true,
        );
        check(&d, "", "courses.course.@cno -> courses.course", false);
        check(
            &d,
            "courses.course.@cno -> courses.course",
            "courses.course.@cno -> courses.course.title.S",
            true,
        );
        check(&d, "", "courses -> courses.course", false);
        check(&d, "", "courses.course -> courses.course.title.S", true);
    }

    #[test]
    fn dblp_witnesses() {
        let d = dblp_dtd();
        check(
            &d,
            DBLP_FDS,
            "db.conf.issue -> db.conf.issue.inproceedings",
            false,
        );
        check(
            &d,
            DBLP_FDS,
            "db.conf.issue -> db.conf.issue.inproceedings.@year",
            true,
        );
        check(&d, "", "db.conf.title.S -> db.conf", false);
        check(&d, DBLP_FDS, "db.conf.title.S -> db.conf", true);
    }

    #[test]
    fn disjunction_witnesses() {
        // The disjunction sits under a starred parent, so distinct e nodes
        // choose (a | b) independently.
        let d = xnf_dtd::parse_dtd(
            "<!ELEMENT r (e*)>
             <!ELEMENT e (x, (a | b))>
             <!ELEMENT x EMPTY> <!ATTLIST x v CDATA #REQUIRED>
             <!ELEMENT a EMPTY> <!ATTLIST a w CDATA #REQUIRED>
             <!ELEMENT b EMPTY>",
        )
        .unwrap();
        check(&d, "", "r.e.a -> r.e.b", true); // same e ⇒ b absent
        check(&d, "", "r.e.x.@v -> r.e.a.@w", false);
        check(&d, "", "r.e -> r.e.x.@v", true);
        check(&d, "", "r.e.x.@v -> r.e.x", false);
        // Declaring @v a key of e makes the branch choice shared too.
        check(&d, "r.e.x.@v -> r.e", "r.e.x.@v -> r.e.a.@w", true);
    }

    #[test]
    fn exhaustive_agrees_with_fast_path() {
        let d = university_dtd();
        let paths = d.paths().unwrap();
        let sigma = XmlFdSet::parse(UNIVERSITY_FDS)
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let fd =
            XmlFd::parse("courses.course.taken_by.student.@sno -> courses.course.taken_by.student")
                .unwrap()
                .resolve(&paths)
                .unwrap();
        let search = CounterexampleSearch::new(&d, &paths);
        assert!(search.find(&sigma, &fd).is_some());
        assert!(search.find_exhaustive(&sigma, &fd, 10_000).is_some());
    }

    #[test]
    fn witness_documents_are_small_and_valid() {
        let d = university_dtd();
        let paths = d.paths().unwrap();
        let fd = XmlFd::parse("courses.course.@cno -> courses.course")
            .unwrap()
            .resolve(&paths)
            .unwrap();
        let search = CounterexampleSearch::new(&d, &paths);
        let w = search.find(&[], &fd).unwrap();
        // Two courses with the same cno but different nodes.
        assert!(xnf_xml::conforms(&w.tree, &d).is_ok());
        assert!(w.tree.num_nodes() <= 24, "witness should be small");
    }
}
